"""Search-algorithm registry: build any paper variant by name."""

from __future__ import annotations

from typing import Callable

from repro.errors import SearchError
from repro.search.base import SearchAlgorithm
from repro.search.beam_search import BeamSearch
from repro.search.best_of_n import BestOfN
from repro.search.dvts import DVTS
from repro.search.dynamic_branching import DynamicBranching
from repro.search.varying_granularity import VaryingGranularity

__all__ = ["build_algorithm", "list_algorithms"]

_BUILDERS: dict[str, Callable[..., SearchAlgorithm]] = {
    BestOfN.name: lambda n, **kw: BestOfN(n=n),
    BeamSearch.name: lambda n, **kw: BeamSearch(n=n, **kw),
    DVTS.name: lambda n, **kw: DVTS(n=n, **kw),
    DynamicBranching.name: lambda n, **kw: DynamicBranching(n=n, **kw),
    VaryingGranularity.name: lambda n, **kw: VaryingGranularity(n=n, **kw),
}


def list_algorithms() -> list[str]:
    """Names of all registered TTS search variants."""
    return sorted(_BUILDERS)


def build_algorithm(name: str, n: int, **kwargs) -> SearchAlgorithm:
    """Instantiate a search algorithm by registry name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(list_algorithms())
        raise SearchError(f"unknown search algorithm {name!r}; known: {known}") from None
    return builder(n, **kwargs)
