"""Varying Granularity (VG-Search): adaptive verification step budgets.

Instead of changing selection, this variant changes the *generation* stage:
the per-step token budget starts small (fine-grained verification while the
search is uncertain) and widens later (coarse once trajectories commit).
Fig. 11 evaluates it with a 64-token cap for the first three steps and 2048
afterwards, which is the default schedule here.
"""

from __future__ import annotations

from repro.search.beam_search import BeamSearch

__all__ = ["VaryingGranularity"]


class VaryingGranularity(BeamSearch):
    """Beam search whose step caps follow a granularity schedule."""

    name = "varying_granularity"

    def __init__(
        self,
        n: int,
        branching_factor: int = 4,
        fine_cap: int = 64,
        coarse_cap: int = 2048,
        fine_rounds: int = 3,
    ) -> None:
        super().__init__(n=n, branching_factor=branching_factor)
        if fine_cap < 1 or coarse_cap < fine_cap:
            raise ValueError("need 1 <= fine_cap <= coarse_cap")
        if fine_rounds < 0:
            raise ValueError("fine_rounds must be non-negative")
        self._fine_cap = fine_cap
        self._coarse_cap = coarse_cap
        self._fine_rounds = fine_rounds

    def step_cap(self, round_idx: int) -> int | None:
        """64-token steps early, 2048 afterwards (Fig. 11 caption)."""
        if round_idx < self._fine_rounds:
            return self._fine_cap
        return self._coarse_cap
