"""Best-of-N sampling (outcome-reward selection).

The earliest TTS recipe: ``n`` independent chains run to completion, then an
Outcome Reward Model picks the best full solution. There is no intermediate
pruning, so the "selection" stage simply continues every chain, and the
verifier is consulted only on terminal paths (``verifies_steps`` is False —
the serving system skips per-step verification rounds entirely).
"""

from __future__ import annotations

from repro.search.base import Expansion, SearchAlgorithm, SelectionDecision
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng

__all__ = ["BestOfN"]


class BestOfN(SearchAlgorithm):
    """``n`` independent chains, outcome-scored at the end."""

    name = "best_of_n"

    def __init__(self, n: int) -> None:
        # Branching factor 1: chains never fork after the root.
        super().__init__(n=n, branching_factor=1)

    @property
    def verifies_steps(self) -> bool:
        return False

    def select(
        self,
        active: list[ReasoningPath],
        round_idx: int,
        rng: KeyedRng,
    ) -> SelectionDecision:
        """Every chain survives with exactly one continuation."""
        return SelectionDecision(
            expansions=tuple(Expansion(path=p, n_children=1) for p in active)
        )
