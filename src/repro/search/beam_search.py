"""Verifier-guided beam search, the paper's representative method.

Standard beam search with beam budget ``n`` and static branching factor
``M``: after each verification, the top ``n / M`` beams *globally* are kept
and each spawns ``M`` children (paper Fig. 2-II). This is the algorithm the
main evaluation (Fig. 12-14) runs.
"""

from __future__ import annotations

from repro.search.base import Expansion, SearchAlgorithm, SelectionDecision
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng

__all__ = ["BeamSearch"]


class BeamSearch(SearchAlgorithm):
    """Global top-K selection with a static branching factor."""

    name = "beam_search"

    def __init__(self, n: int, branching_factor: int = 4) -> None:
        super().__init__(n=n, branching_factor=branching_factor)

    def select(
        self,
        active: list[ReasoningPath],
        round_idx: int,
        rng: KeyedRng,
    ) -> SelectionDecision:
        """Keep the global top ``n / M`` beams; each branches ``M`` ways."""
        if not active:
            return SelectionDecision(expansions=())
        keep = self.keep_count(len(active))
        survivors = self.ranked(active)[:keep]
        # Spread the full budget over survivors so the active width returns
        # to n even when fewer beams than n/M remain alive.
        per_beam = max(1, self.n // max(1, len(survivors)))
        per_beam = min(per_beam, self.branching_factor)
        return SelectionDecision(
            expansions=tuple(Expansion(path=p, n_children=per_beam) for p in survivors)
        )
