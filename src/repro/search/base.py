"""The abstract verifier-guided search pattern (paper Sec. 3.1).

Every mainstream TTS method is a two-stage loop — *generate* a step for
each active beam, *verify* and select which beams continue — differing only
in the selection heuristic and per-step generation budget. This module
fixes that contract so serving backends (baseline vLLM-style or FastTTS)
are interchangeable underneath any algorithm, which is also how the
library's algorithmic-equivalence tests are built.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng

__all__ = ["Expansion", "SelectionDecision", "SearchAlgorithm"]


@dataclass(frozen=True, slots=True)
class Expansion:
    """One surviving beam and how many children it spawns."""

    path: ReasoningPath
    n_children: int

    def __post_init__(self) -> None:
        if self.n_children < 1:
            raise ValueError("a kept beam spawns at least one child")


@dataclass(frozen=True, slots=True)
class SelectionDecision:
    """The verification stage's output: who survives, who branches."""

    expansions: tuple[Expansion, ...]

    @property
    def total_children(self) -> int:
        return sum(e.n_children for e in self.expansions)


class SearchAlgorithm(ABC):
    """A TTS method, expressed inside the common two-stage loop.

    Subclasses must be pure: selection may depend only on the supplied
    paths/scores and the keyed RNG, never on wall time or iteration order,
    so that two serving backends drive identical searches.
    """

    name: str = "abstract"

    def __init__(self, n: int, branching_factor: int = 4) -> None:
        if n < 1:
            raise ValueError("n (total beam budget) must be positive")
        if branching_factor < 1:
            raise ValueError("branching_factor must be positive")
        self._n = n
        self._branching = branching_factor

    @property
    def n(self) -> int:
        """Total beam budget (the paper's x-axis ``n``)."""
        return self._n

    @property
    def branching_factor(self) -> int:
        """``B`` — also the bin count for SelectSPEC (Sec. 4.1.1)."""
        return self._branching

    @property
    def verifies_steps(self) -> bool:
        """Whether the PRM scores every intermediate step (False for BoN)."""
        return True

    def initial_width(self) -> int:
        """How many root beams the search starts with."""
        return self._n

    def step_cap(self, round_idx: int) -> int | None:
        """Per-step token budget for this round (None = dataset default)."""
        return None

    @abstractmethod
    def select(
        self,
        active: list[ReasoningPath],
        round_idx: int,
        rng: KeyedRng,
    ) -> SelectionDecision:
        """Choose survivors and branch counts from scored active paths.

        ``active`` contains only non-terminal, freshly scored paths.
        """

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def ranked(paths: list[ReasoningPath]) -> list[ReasoningPath]:
        """Paths sorted by score descending with deterministic tie-break."""
        return sorted(paths, key=lambda p: p.sort_key())

    def keep_count(self, n_active: int) -> int:
        """Default survivor count: budget / branching factor (at least 1)."""
        return max(1, min(n_active, self._n // self._branching))
