"""DVTS — Diverse Verifier Tree Search (paper Fig. 2 "Diverse Selection").

The beam budget is split into ``n / M`` independent subtrees; within each
subtree only the top-scoring beam survives and branches ``M`` ways. The
forced per-subtree survival hedges against the verifier's correlated
subtree bias, which is why DVTS buys accuracy over global beam search at
equal budget (Fig. 3 left) at some latency cost.
"""

from __future__ import annotations

from repro.search.base import Expansion, SearchAlgorithm, SelectionDecision
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng

__all__ = ["DVTS"]


class DVTS(SearchAlgorithm):
    """Per-subtree top-1 selection with static branching."""

    name = "dvts"

    def __init__(self, n: int, branching_factor: int = 4) -> None:
        super().__init__(n=n, branching_factor=branching_factor)
        if n % branching_factor != 0:
            raise ValueError("DVTS requires n divisible by the branching factor")

    def subtree_of(self, path: ReasoningPath) -> int:
        """Subtree index: fixed by the root beam the path descends from."""
        if not path.lineage:
            raise ValueError("paths must have a root lineage element")
        return path.lineage[0] % (self.n // self.branching_factor)

    def select(
        self,
        active: list[ReasoningPath],
        round_idx: int,
        rng: KeyedRng,
    ) -> SelectionDecision:
        """Keep the best beam of every live subtree; branch ``M`` ways."""
        if not active:
            return SelectionDecision(expansions=())
        by_subtree: dict[int, list[ReasoningPath]] = {}
        for path in active:
            by_subtree.setdefault(self.subtree_of(path), []).append(path)
        expansions = []
        for subtree in sorted(by_subtree):
            best = self.ranked(by_subtree[subtree])[0]
            expansions.append(Expansion(path=best, n_children=self.branching_factor))
        return SelectionDecision(expansions=tuple(expansions))
