"""Dynamic Branching: score-proportional branch factors (paper Fig. 2-VI).

Following the inference-scaling-laws line of work, the branching factor
adapts to verifier confidence: each surviving beam branches proportionally
to its score, subject to the total budget ``n`` (Fig. 11 runs this variant
with "each beam branches proportionally to its verifier score"). Budget
apportionment uses the largest-remainder method so results are
deterministic and exactly sum to ``n``.
"""

from __future__ import annotations

from repro.search.base import Expansion, SearchAlgorithm, SelectionDecision
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng

__all__ = ["DynamicBranching", "proportional_allocation"]


def proportional_allocation(weights: list[float], total: int) -> list[int]:
    """Integer allocation proportional to weights, each share >= 1.

    Largest-remainder (Hamilton) apportionment with the floor raised to 1
    so every survivor continues. Deterministic: ties resolve by index.
    """
    if total < len(weights):
        raise ValueError("total must cover at least one child per survivor")
    if not weights:
        return []
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    mass = sum(weights)
    if mass == 0:
        weights = [1.0] * len(weights)
        mass = float(len(weights))
    spare = total - len(weights)
    raw = [w / mass * spare for w in weights]
    shares = [1 + int(r) for r in raw]
    remainders = [(r - int(r), -i) for i, r in enumerate(raw)]
    leftover = total - sum(shares)
    for _, neg_index in sorted(remainders, reverse=True)[:leftover]:
        shares[-neg_index] += 1
    return shares


class DynamicBranching(SearchAlgorithm):
    """Top-K survival with verifier-score-proportional branching."""

    name = "dynamic_branching"

    def __init__(self, n: int, branching_factor: int = 4) -> None:
        super().__init__(n=n, branching_factor=branching_factor)

    def select(
        self,
        active: list[ReasoningPath],
        round_idx: int,
        rng: KeyedRng,
    ) -> SelectionDecision:
        """Keep top ``n / M``; split the budget ``n`` by score."""
        if not active:
            return SelectionDecision(expansions=())
        keep = self.keep_count(len(active))
        survivors = self.ranked(active)[:keep]
        budget = min(self.n, max(len(survivors), self.n))
        shares = proportional_allocation(
            [s.last_score or 0.0 for s in survivors], budget
        )
        return SelectionDecision(
            expansions=tuple(
                Expansion(path=p, n_children=c) for p, c in zip(survivors, shares)
            )
        )
