"""TTS search algorithms over the common generation-verification loop."""

from repro.search.base import Expansion, SearchAlgorithm, SelectionDecision
from repro.search.beam_search import BeamSearch
from repro.search.best_of_n import BestOfN
from repro.search.dvts import DVTS
from repro.search.dynamic_branching import DynamicBranching, proportional_allocation
from repro.search.registry import build_algorithm, list_algorithms
from repro.search.tree import ReasoningPath, prompt_segment_id, step_segment_id
from repro.search.varying_granularity import VaryingGranularity

__all__ = [
    "SearchAlgorithm",
    "SelectionDecision",
    "Expansion",
    "ReasoningPath",
    "prompt_segment_id",
    "step_segment_id",
    "BestOfN",
    "BeamSearch",
    "DVTS",
    "DynamicBranching",
    "proportional_allocation",
    "VaryingGranularity",
    "build_algorithm",
    "list_algorithms",
]
