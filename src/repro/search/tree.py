"""Reasoning paths and the segment-id convention.

A path's identity is its *lineage*: the tuple of branch indices taken at
each selection round. Conventions used throughout the library:

* at round ``r`` every active path has ``len(lineage) == r + 1`` and is
  generating step ``r``;
* step ``i`` of a path with lineage ``L`` was generated when the lineage
  was ``L[: i + 1]``, so its RNG key and KV segment id derive from
  ``(problem, L[: i + 1], i)`` — ancestors and descendants share prefix
  segments for free;
* the prompt occupies a root segment keyed by the problem alone.

This makes the reasoning tree and the KV radix tree two views of the same
structure, which is precisely the property Dynamic Prefix-Aware Scheduling
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.rng import stable_hash64
from repro.workloads.problem import Problem

__all__ = ["ReasoningPath", "prompt_segment_id", "step_segment_id"]


def prompt_segment_id(problem: Problem) -> int:
    """Segment id of the shared prompt root."""
    return stable_hash64("segment", problem.problem_id, "prompt")


def step_segment_id(problem: Problem, lineage: tuple[int, ...], step_idx: int) -> int:
    """Segment id for step ``step_idx`` generated under ``lineage`` prefix."""
    if step_idx < 0:
        raise ValueError("step_idx must be non-negative")
    if len(lineage) < step_idx + 1:
        raise ValueError("lineage too short for step index")
    return stable_hash64("segment", problem.problem_id, lineage[: step_idx + 1], step_idx)


@dataclass(slots=True)
class ReasoningPath:
    """One beam: its lineage, per-step history, and terminal outcome."""

    lineage: tuple[int, ...]
    step_tokens: list[int] = field(default_factory=list)
    soundness: list[float] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)
    terminal: bool = False
    answer: int | None = None
    answer_correct: bool | None = None
    completion_time: float | None = None

    @property
    def steps_done(self) -> int:
        return len(self.step_tokens)

    @property
    def total_tokens(self) -> int:
        """Generated tokens along this path (prompt excluded)."""
        return sum(self.step_tokens)

    @property
    def mean_soundness(self) -> float:
        """Running mean of latent step soundness (the PRM's target)."""
        if not self.soundness:
            return 0.0
        return sum(self.soundness) / len(self.soundness)

    @property
    def last_score(self) -> float | None:
        return self.scores[-1] if self.scores else None

    @property
    def final_score(self) -> float:
        """Ranking score for pass@N: the last verifier score, else 0."""
        return self.scores[-1] if self.scores else 0.0

    def record_step(self, n_tokens: int, soundness: float) -> None:
        """Append one generated step's outcome."""
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        self.step_tokens.append(n_tokens)
        self.soundness.append(soundness)

    def record_score(self, score: float) -> None:
        """Append the verifier's score for the newest step."""
        if not 0.0 <= score <= 1.0:
            raise ValueError("PRM scores live in [0, 1]")
        if len(self.scores) >= len(self.step_tokens):
            raise ValueError("cannot score more steps than were generated")
        self.scores.append(score)

    def make_child(self, branch_index: int) -> "ReasoningPath":
        """Fork a child that inherits the full history."""
        if self.terminal:
            raise ValueError("terminal paths cannot branch")
        if branch_index < 0:
            raise ValueError("branch_index must be non-negative")
        return ReasoningPath(
            lineage=self.lineage + (branch_index,),
            step_tokens=list(self.step_tokens),
            soundness=list(self.soundness),
            scores=list(self.scores),
        )

    def segment_ids(self, problem: Problem) -> tuple[int, ...]:
        """KV segments root->leaf: prompt plus one per generated step."""
        segments = [prompt_segment_id(problem)]
        segments.extend(
            step_segment_id(problem, self.lineage, i) for i in range(self.steps_done)
        )
        return tuple(segments)

    def sort_key(self) -> tuple[float, int]:
        """Deterministic ordering key: score descending, then lineage hash."""
        return (-(self.last_score or 0.0), stable_hash64("tie", self.lineage))
