"""Deployment reports: where a configuration lands on the roofline.

Answers the questions an operator asks before deploying a generator +
verifier pair on an edge GPU: do the weights fit, how much KV is left,
which stages are compute- vs bandwidth-bound at which batch sizes, and
what the allocator would decide. Used by the examples and handy from the
CLI (``python -m repro report``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocator import RooflineAllocator, WorkloadProfile
from repro.hardware.device import DeviceSpec, get_device
from repro.hardware.offload import OffloadLink
from repro.hardware.roofline import Roofline
from repro.models.costs import decode_step_cost, prefill_cost
from repro.models.spec import ModelSpec
from repro.models.zoo import model_pair
from repro.utils.tables import format_bytes, render_table
from repro.workloads.datasets import build_dataset

__all__ = ["OperatingPoint", "operating_points", "deployment_report"]


@dataclass(frozen=True, slots=True)
class OperatingPoint:
    """One (stage, batch) point on the device roofline."""

    stage: str
    batch_size: int
    flops: float
    bytes: float
    latency_s: float
    compute_bound: bool
    tokens_per_s: float


def operating_points(
    model: ModelSpec,
    device: DeviceSpec,
    batch_sizes: tuple[int, ...] = (1, 8, 64),
    seq_len: int = 512,
    efficiency: float = 0.6,
) -> list[OperatingPoint]:
    """Prefill and decode operating points for one model on one device."""
    roofline = Roofline(device, efficiency)
    points = []
    for batch in batch_sizes:
        cost = prefill_cost(model, batch, seq_len)
        point = roofline.point(cost.flops, cost.bytes)
        points.append(
            OperatingPoint(
                stage="prefill",
                batch_size=batch,
                flops=cost.flops,
                bytes=cost.bytes,
                latency_s=point.latency,
                compute_bound=point.compute_bound,
                tokens_per_s=batch * seq_len / point.latency,
            )
        )
        cost = decode_step_cost(model, batch, seq_len / 2)
        point = roofline.point(cost.flops, cost.bytes)
        points.append(
            OperatingPoint(
                stage="decode",
                batch_size=batch,
                flops=cost.flops,
                bytes=cost.bytes,
                latency_s=point.latency,
                compute_bound=point.compute_bound,
                tokens_per_s=batch / point.latency,
            )
        )
    return points


def deployment_report(
    model_config: str = "1.5B+1.5B",
    device_name: str = "rtx4090",
    memory_fraction: float = 0.9,
    dataset_name: str = "aime24",
    n: int = 64,
) -> str:
    """Human-readable feasibility + allocation report for a deployment."""
    device = get_device(device_name)
    generator, verifier = model_pair(model_config)
    budget = int(device.usable_bytes * memory_fraction)
    weights = generator.weight_bytes + verifier.weight_bytes
    kv_budget = budget - weights

    lines = [
        f"deployment: {model_config} on {device.name} "
        f"({format_bytes(device.vram_bytes)} VRAM, {memory_fraction:.0%} budget)",
        f"  weights: generator {format_bytes(generator.weight_bytes)} + "
        f"verifier {format_bytes(verifier.weight_bytes)} = {format_bytes(weights)}",
    ]
    if kv_budget <= 0:
        lines.append("  INFEASIBLE: weights exceed the memory budget")
        return "\n".join(lines)
    lines.append(f"  KV budget: {format_bytes(kv_budget)}")
    lines.append(
        f"  KV per token: generator {generator.kv_bytes_per_token} B, "
        f"verifier {verifier.kv_bytes_per_token} B"
    )

    dataset = build_dataset(dataset_name, seed=0, size=1)
    profile = WorkloadProfile.from_dataset(dataset, n)
    allocator = RooflineAllocator(
        verifier, generator, Roofline(device), OffloadLink(device)
    )
    plan = allocator.best_plan(profile, kv_budget, allow_offload=True)
    strategy = "offload" if plan.offload else "partition"
    lines.append(
        f"  allocator plan (n={n}, {dataset_name}): {strategy}, "
        f"B_pre={plan.b_pre}, B_dec={plan.b_dec}, "
        f"verifier KV {format_bytes(plan.kv_pre_bytes)}, "
        f"generator KV {format_bytes(plan.kv_dec_bytes)}"
    )

    rows = []
    for point in operating_points(generator, device):
        rows.append([
            f"generator {point.stage}", point.batch_size,
            "compute" if point.compute_bound else "memory",
            round(point.latency_s * 1e3, 2),
            round(point.tokens_per_s, 1),
        ])
    table = render_table(
        ["stage", "batch", "bound by", "latency ms", "tokens/s"],
        rows,
        title="generator operating points (seq 512)",
    )
    return "\n".join(lines) + "\n" + table
