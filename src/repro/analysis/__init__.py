"""Analysis helpers: straggler order statistics and deployment reports."""

from repro.analysis.reports import (
    OperatingPoint,
    deployment_report,
    operating_points,
)
from repro.analysis.straggler import (
    expected_max_step_tokens,
    expected_step_tokens,
    idle_fraction,
    lognormal_cdf,
    sampled_max_step_tokens,
)

__all__ = [
    "lognormal_cdf",
    "expected_step_tokens",
    "expected_max_step_tokens",
    "idle_fraction",
    "sampled_max_step_tokens",
    "OperatingPoint",
    "operating_points",
    "deployment_report",
]
