"""Analytical straggler model: how much GPU a synchronous batch wastes.

The paper's Challenge-1 (Sec. 3.2.1) is that a generation batch must wait
for its longest member. With per-beam step lengths ~ capped lognormal, the
expected idle fraction of a k-beam batch is computable from order
statistics:

    E[idle] = 1 - E[L] / E[max(L_1..L_k)]

where ``E[max]`` comes from the tail-integral identity
``E[max] = ∫ (1 - F(x)^k) dx`` over the support. This module evaluates
that integral numerically, which gives the serving simulator an
independent cross-check (tested against sampled maxima) and quantifies why
speculation has so much idle capacity to harvest as ``k`` grows.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import KeyedRng
from repro.workloads.traces import StepLengthModel

__all__ = [
    "lognormal_cdf",
    "expected_step_tokens",
    "expected_max_step_tokens",
    "idle_fraction",
    "sampled_max_step_tokens",
]


def lognormal_cdf(x: float, median: float, sigma: float) -> float:
    """CDF of a lognormal parameterized by its median and log-space sigma."""
    if x <= 0:
        return 0.0
    if sigma == 0:
        return 1.0 if x >= median else 0.0
    z = (math.log(x) - math.log(median)) / sigma
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _capped_cdf(x: float, model: StepLengthModel) -> float:
    """CDF of the model's actual (floored and capped) step length."""
    if x < model.min_tokens:
        return 0.0
    if x >= model.max_tokens:
        return 1.0
    return lognormal_cdf(x, model.median_tokens, model.sigma)


def expected_step_tokens(model: StepLengthModel, grid_points: int = 4096) -> float:
    """E[L] under the floor/cap, by numerical tail integration."""
    xs = np.linspace(0.0, float(model.max_tokens), grid_points)
    survival = np.array([1.0 - _capped_cdf(float(x), model) for x in xs])
    return float(np.trapezoid(survival, xs))


def expected_max_step_tokens(
    model: StepLengthModel, batch_size: int, grid_points: int = 4096
) -> float:
    """E[max of ``batch_size`` i.i.d. step lengths], tail-integrated."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    xs = np.linspace(0.0, float(model.max_tokens), grid_points)
    # F(x)^k with F the capped CDF: survival function of the maximum.
    survival = np.array(
        [1.0 - _capped_cdf(float(x), model) ** batch_size for x in xs]
    )
    return float(np.trapezoid(survival, xs))


def idle_fraction(model: StepLengthModel, batch_size: int) -> float:
    """Expected fraction of batch slot-time idle while awaiting stragglers.

    0 for a single beam; grows toward ``1 - E[L]/cap`` as the batch widens.
    This is exactly the capacity Speculative Beam Extension harvests.
    """
    if batch_size == 1:
        return 0.0
    mean = expected_step_tokens(model)
    longest = expected_max_step_tokens(model, batch_size)
    return max(0.0, 1.0 - mean / longest)


def sampled_max_step_tokens(
    model: StepLengthModel, batch_size: int, samples: int = 512, seed: int = 0
) -> float:
    """Monte-Carlo estimate of E[max], for validating the integral."""
    rng = KeyedRng(seed)
    maxima = []
    for s in range(samples):
        lengths = [model.sample(rng, "straggler", s, i) for i in range(batch_size)]
        maxima.append(max(lengths))
    return float(np.mean(maxima))
