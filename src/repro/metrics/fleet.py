"""Fleet-level serving metrics: request throughput and queueing delay.

Single-request metrics (goodput, latency) describe how fast one solve is;
a serving system is judged by how it behaves under *load*. This module
aggregates a fleet run — many queued solve requests multiplexed over one
device — into the quantities a serving evaluation reports: completed
request throughput, the p50/p95 queueing delay distribution, and the
device's busy fraction over the run's makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrics.latency import LatencyBreakdown
from repro.utils.stats import percentile
from repro.utils.tables import render_table

__all__ = ["FleetRequestRecord", "FleetMetrics"]


@dataclass(frozen=True, slots=True)
class FleetRequestRecord:
    """One request's life cycle on the fleet's shared clock.

    ``arrival_s``/``start_s``/``finish_s`` are times on the fleet's
    :class:`~repro.engine.clock.SimClock`. Rejected requests (admission
    control) carry ``accepted=False`` and a ``reject_reason``; their
    ``start_s``/``finish_s`` equal the arrival time and they contribute to
    no latency statistic.
    """

    request_id: str
    arrival_s: float
    start_s: float
    finish_s: float
    accepted: bool = True
    reject_reason: str | None = None
    latency: LatencyBreakdown | None = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.accepted and self.start_s < self.arrival_s:
            raise ValueError("service cannot start before arrival")
        if self.accepted and self.finish_s < self.start_s:
            raise ValueError("service cannot finish before it starts")

    @property
    def queue_delay_s(self) -> float:
        """Seconds spent waiting for the device after arriving."""
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Seconds of device time the request consumed."""
        return self.finish_s - self.start_s


@dataclass(frozen=True, slots=True)
class FleetMetrics:
    """Aggregate serving behaviour of one fleet run."""

    requests: int
    completed: int
    rejected: int
    makespan_s: float
    throughput_rps: float
    queue_delay_mean_s: float
    queue_delay_p50_s: float
    queue_delay_p95_s: float
    service_mean_s: float
    busy_fraction: float

    @classmethod
    def aggregate(cls, records: Sequence[FleetRequestRecord]) -> "FleetMetrics":
        """Pool per-request records into the fleet-level quantities."""
        if not records:
            raise ValueError("cannot aggregate an empty fleet run")
        accepted = [r for r in records if r.accepted]
        rejected = len(records) - len(accepted)
        makespan = max((r.finish_s for r in accepted), default=0.0)
        delays = [r.queue_delay_s for r in accepted]
        services = [r.service_s for r in accepted]
        busy = sum(services)
        return cls(
            requests=len(records),
            completed=len(accepted),
            rejected=rejected,
            makespan_s=makespan,
            throughput_rps=(len(accepted) / makespan) if makespan > 0 else 0.0,
            queue_delay_mean_s=(sum(delays) / len(delays)) if delays else 0.0,
            queue_delay_p50_s=percentile(delays, 50.0) if delays else 0.0,
            queue_delay_p95_s=percentile(delays, 95.0) if delays else 0.0,
            service_mean_s=(sum(services) / len(services)) if services else 0.0,
            busy_fraction=(busy / makespan) if makespan > 0 else 0.0,
        )

    def summary_rows(self) -> list[list[object]]:
        return [
            ["requests", self.requests],
            ["completed", self.completed],
            ["rejected", self.rejected],
            ["makespan s", round(self.makespan_s, 2)],
            ["throughput req/s", round(self.throughput_rps, 4)],
            ["queue delay mean s", round(self.queue_delay_mean_s, 2)],
            ["queue delay p50 s", round(self.queue_delay_p50_s, 2)],
            ["queue delay p95 s", round(self.queue_delay_p95_s, 2)],
            ["service mean s", round(self.service_mean_s, 2)],
            ["busy fraction", round(self.busy_fraction, 3)],
        ]

    def table(self, title: str | None = None) -> str:
        return render_table(["metric", "value"], self.summary_rows(), title=title)
