"""Fleet-level serving metrics: request throughput and queueing delay.

Single-request metrics (goodput, latency) describe how fast one solve is;
a serving system is judged by how it behaves under *load*. This module
aggregates a fleet run — many queued solve requests multiplexed over a
:class:`~repro.core.pool.DevicePool` — into the quantities a serving
evaluation reports: completed request throughput, the p50/p95 queueing
delay and sojourn distributions, the pool's busy fraction over the run's
makespan, cross-session KV contention (swap) time, and (for
redundancy-based schedulers such as ``first_finish``) how much device time
went into sessions whose results were cancelled or discarded.

:class:`DeviceUtilization` rolls the same run up per device lane —
requests served, busy fraction, migrations in/out, KV swap traffic, and
the lane ledger's cross-session sharing stats (peak bytes saved by
prefix dedup, peak-logical-over-peak-physical ``kv_dedup_ratio``) — so a
heterogeneous pool's imbalance is visible at a glance
(:func:`device_table`).

:func:`compare_policies` renders several fleet runs of the same workload
under different :mod:`~repro.core.scheduler` policies side by side.

Open-loop trace runs add the latency-bounded view ("Are We Scaling the
Right Thing?"): requests carry deadlines and TTFT targets, so the same
records aggregate into **SLO attainment** (fraction of requests meeting
their targets — dropped and rejected requests count as misses),
**goodput under deadline** (:class:`SLOSummary`, :class:`TenantSLO`:
correct answers per second counting only in-deadline completions), and a
:func:`queue_depth_series` of how many admitted requests were waiting at
every instant — the overload picture a closed-loop run can never show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.metrics.latency import LatencyBreakdown
from repro.utils.stats import percentile
from repro.utils.tables import render_table

__all__ = [
    "FleetRequestRecord",
    "FleetMetrics",
    "DeviceUtilization",
    "TenantSLO",
    "SLOSummary",
    "LaneClassStats",
    "FrontierPoint",
    "device_table",
    "compare_policies",
    "tenant_slo_rollup",
    "tenant_table",
    "queue_depth_series",
    "ttft_p95",
    "latency_p95",
    "lane_class_rollup",
    "lane_class_table",
    "router_decisions",
    "frontier_point",
    "frontier_table",
]


@dataclass(frozen=True, slots=True)
class FleetRequestRecord:
    """One request's life cycle on the fleet's shared clock.

    ``arrival_s``/``start_s``/``finish_s`` are times on the serving
    device's :class:`~repro.engine.clock.SimClock` lane (all lanes of a
    pool share one time origin). ``device_id`` names that lane (None for
    rejected requests, which never reach a device). ``kv_swap_s`` is the
    cross-session KV contention and migration time charged to this
    request's sessions. Rejected requests (admission control) carry
    ``accepted=False`` and a ``reject_reason``; their
    ``start_s``/``finish_s`` equal the arrival time and they contribute to
    no latency statistic.
    """

    request_id: str
    arrival_s: float
    start_s: float
    finish_s: float
    accepted: bool = True
    reject_reason: str | None = None
    latency: LatencyBreakdown | None = None
    replicas: int = 1
    cancelled_work_s: float = 0.0
    device_time_s: float | None = None
    device_id: str | None = None
    kv_swap_s: float = 0.0
    #: Time to first token: arrival → first generated token on the fleet
    #: timeline (None for rejected requests, or records predating TTFT).
    ttft_s: float | None = None
    #: Time per output token: mean generation-phase seconds per committed
    #: token of the winning session (None when nothing was decoded).
    tpot_s: float | None = None
    #: Traffic provenance and latency contract (open-loop trace runs):
    #: the tenant stream the request belongs to, its SLO class label, and
    #: the deadline / TTFT targets relative to ``arrival_s`` (None when
    #: the request carries no such target — closed-loop runs).
    tenant: str | None = None
    slo_class: str | None = None
    deadline_s: float | None = None
    ttft_slo_s: float | None = None
    #: True when the open-loop driver shed this request because its
    #: deadline expired while it was still queued (``late_policy="drop"``);
    #: dropped requests also carry ``accepted=False``.
    dropped: bool = False
    #: Fault accounting. ``retries`` counts crash-triggered re-queues
    #: (recovery="retry"); ``redone_work_s`` is device time a crash voided
    #: that had to be re-run; ``failed_over`` marks a checkpoint-free
    #: re-placement onto a surviving lane; ``lost`` marks a request a
    #: fault removed from the system unserved (lost requests also carry
    #: ``accepted=False`` and a ``reject_reason`` naming the fault).
    retries: int = 0
    redone_work_s: float = 0.0
    failed_over: bool = False
    lost: bool = False
    #: Heterogeneous-pool routing. ``routed_class`` is the lane class the
    #: router's *initial* decision sent the request to (unchanged by
    #: crashes or escalations — it is the decision being audited);
    #: ``lane_class`` is the class of the lane that finally served it;
    #: ``escalations`` counts cascade re-placements onto bigger-model
    #: lanes, and ``escalated_work_s`` is the device time of the
    #: abandoned cheaper attempts (already included in
    #: ``device_time_s`` — the honest bill).
    routed_class: str | None = None
    lane_class: str | None = None
    escalations: int = 0
    escalated_work_s: float = 0.0

    def __post_init__(self) -> None:
        if self.escalations < 0:
            raise ValueError("escalations must be non-negative")
        if self.escalated_work_s < 0:
            raise ValueError("escalated_work_s must be non-negative")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive when set")
        if self.dropped and self.accepted:
            raise ValueError("a dropped request cannot also be accepted")
        if self.lost and self.accepted:
            raise ValueError("a lost request cannot also be accepted")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.redone_work_s < 0:
            raise ValueError("redone_work_s must be non-negative")
        if self.accepted and self.start_s < self.arrival_s:
            raise ValueError("service cannot start before arrival")
        if self.accepted and self.finish_s < self.start_s:
            raise ValueError("service cannot finish before it starts")
        if self.replicas < 1:
            raise ValueError("a request is served by at least one session")
        if self.cancelled_work_s < 0:
            raise ValueError("cancelled_work_s must be non-negative")
        if self.device_time_s is not None and self.device_time_s < 0:
            raise ValueError("device_time_s must be non-negative")
        if self.kv_swap_s < 0:
            raise ValueError("kv_swap_s must be non-negative")
        if self.ttft_s is not None and self.ttft_s < 0:
            raise ValueError("ttft_s must be non-negative")
        if self.tpot_s is not None and self.tpot_s < 0:
            raise ValueError("tpot_s must be non-negative")

    @property
    def queue_delay_s(self) -> float:
        """Seconds spent waiting for the device after arriving."""
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        """Wall-clock seconds between service start and finish.

        Under run-to-completion scheduling this equals device time; under
        an interleaving scheduler the window also contains other requests'
        rounds — use :attr:`device_seconds` for device-time accounting.
        """
        return self.finish_s - self.start_s

    @property
    def device_seconds(self) -> float:
        """Simulated device seconds this request actually consumed.

        Recorded by the fleet as the sum of all its sessions' private
        clocks (winner plus cancelled/discarded replicas). Falls back to
        the start→finish window for records predating the session
        redesign, where the two were the same thing.
        """
        if self.device_time_s is not None:
            return self.device_time_s
        return self.service_s

    @property
    def sojourn_s(self) -> float:
        """Arrival → finish on the fleet timeline (what the user feels)."""
        return self.finish_s - self.arrival_s

    @property
    def deadline_met(self) -> bool | None:
        """Did the request finish inside its deadline?

        ``None`` when no deadline was set (closed-loop requests stay out
        of SLO statistics). Dropped and rejected requests with a deadline
        count as misses — an overloaded fleet does not get credit for the
        work it shed.
        """
        if self.deadline_s is None:
            return None
        if not self.accepted:
            return False
        return self.sojourn_s <= self.deadline_s

    @property
    def ttft_slo_met(self) -> bool | None:
        """Did the first token arrive inside the TTFT target?

        ``None`` when no target was set; misses include dropped/rejected
        requests and completions that never produced a token.
        """
        if self.ttft_slo_s is None:
            return None
        if not self.accepted or self.ttft_s is None:
            return False
        return self.ttft_s <= self.ttft_slo_s


@dataclass(frozen=True, slots=True)
class FleetMetrics:
    """Aggregate serving behaviour of one fleet run."""

    requests: int
    completed: int
    rejected: int
    makespan_s: float
    throughput_rps: float
    queue_delay_mean_s: float
    queue_delay_p50_s: float
    queue_delay_p95_s: float
    service_mean_s: float
    latency_mean_s: float
    busy_fraction: float
    sessions: int = 0
    cancelled_work_s: float = 0.0
    latency_p95_s: float = 0.0
    kv_swap_s: float = 0.0
    devices: int = 1
    kv_shared_bytes: int = 0
    kv_dedup_ratio: float = 1.0
    #: SLO metrics: arrival → first generated token, and mean
    #: generation seconds per committed output token.
    ttft_mean_s: float = 0.0
    ttft_p95_s: float = 0.0
    tpot_mean_s: float = 0.0
    #: Mean members per batched generation iteration across the pool
    #: (1.0 when no lane ran the round batcher).
    batch_occupancy_mean: float = 1.0
    batch_occupancy_peak: int = 1
    #: Availability under faults. ``availability`` is served over offered
    #: (completed / requests — rejections, drops and losses all count
    #: against it); ``mttr_s`` is mean lane downtime per completed repair
    #: (None when no lane recovered); the rest total the per-request and
    #: per-lane fault accounting.
    requests_lost: int = 0
    availability: float = 1.0
    mttr_s: float | None = None
    retries_total: int = 0
    redone_work_s: float = 0.0
    failed_over: int = 0
    lane_failures: int = 0
    #: Cascade routing: total escalations to bigger-model lanes and the
    #: device time of the abandoned cheaper attempts they billed.
    escalations: int = 0
    escalated_work_s: float = 0.0
    #: Sharing-aware fleet quantities. ``affinity_hit_ratio`` is the
    #: fraction of primary placements that landed on a lane already
    #: holding (or planning) part of the request's KV prefix; the
    #: planned/unique pair contrasts full planned footprints with what
    #: dedup-aware admission actually billed; ``kv_migration_bytes_saved``
    #: totals PCIe bytes delta-migration avoided shipping.
    affinity_hit_ratio: float = 0.0
    kv_planned_admitted_bytes: int = 0
    kv_unique_admitted_bytes: int = 0
    kv_migration_bytes_saved: int = 0

    @classmethod
    def aggregate(
        cls,
        records: Sequence[FleetRequestRecord],
        pool_size: int | None = None,
        devices: "Sequence[DeviceUtilization] | None" = None,
    ) -> "FleetMetrics":
        """Pool per-request records into the fleet-level quantities.

        ``pool_size`` is the number of device lanes the run had available;
        when omitted it is inferred from the records' device ids — which
        undercounts lanes a placement policy left idle, so callers that
        know the pool (``FleetReport.metrics``) pass it explicitly.
        ``devices`` (the per-lane rollup rows) supplies the cross-session
        KV sharing quantities, which live on the lane ledgers rather than
        the request records; without it ``kv_shared_bytes``/
        ``kv_dedup_ratio`` report the no-sharing defaults.
        """
        if not records:
            raise ValueError("cannot aggregate an empty fleet run")
        if pool_size is not None and pool_size < 1:
            raise ValueError("pool_size must be >= 1 when set")
        shared_bytes = 0
        dedup_ratio = 1.0
        occupancy_mean = 1.0
        occupancy_peak = 1
        lane_failures = 0
        mttr: float | None = None
        affinity_ratio = 0.0
        planned_admitted = unique_admitted = migration_saved = 0
        if devices:
            placements = sum(d.placements for d in devices)
            hits = sum(d.affinity_hits for d in devices)
            affinity_ratio = (hits / placements) if placements > 0 else 0.0
            planned_admitted = sum(d.planned_admitted_bytes for d in devices)
            unique_admitted = sum(d.unique_admitted_bytes for d in devices)
            migration_saved = sum(d.migration_bytes_saved for d in devices)
        if devices:
            lane_failures = sum(d.failures for d in devices)
            repairs = sum(d.recoveries for d in devices)
            if repairs > 0:
                mttr = sum(d.downtime_s for d in devices) / repairs
        if devices:
            shared_bytes = sum(d.kv_shared_bytes for d in devices)
            peak_resident = sum(d.kv_peak_resident_bytes for d in devices)
            if peak_resident > 0:
                # Weighted per-lane ratio: total peak logical bytes over
                # total peak physical bytes across the pool.
                logical = sum(
                    d.kv_dedup_ratio * d.kv_peak_resident_bytes for d in devices
                )
                dedup_ratio = logical / peak_resident
            iterations = sum(d.batch_iterations for d in devices)
            if iterations > 0:
                occupancy_mean = (
                    sum(d.batch_occupancy_mean * d.batch_iterations
                        for d in devices)
                    / iterations
                )
                occupancy_peak = max(d.batch_occupancy_peak for d in devices)
        accepted = [r for r in records if r.accepted]
        rejected = len(records) - len(accepted)
        makespan = max((r.finish_s for r in accepted), default=0.0)
        delays = [r.queue_delay_s for r in accepted]
        # Device time, not the start→finish window: interleaved requests'
        # windows overlap, and summing them would report busy fractions
        # beyond 1.0 on a single device.
        services = [r.device_seconds for r in accepted]
        # Sojourn time: arrival → finish, what an interactive user feels.
        sojourns = [r.finish_s - r.arrival_s for r in accepted]
        ttfts = [r.ttft_s for r in accepted if r.ttft_s is not None]
        tpots = [r.tpot_s for r in accepted if r.tpot_s is not None]
        busy = sum(services)
        # Busy fraction is normalized by pool size: N lanes offer N
        # device-seconds per wall second, so the ratio stays physical
        # (<= 1) on multi-device fleets, comparable across placement
        # policies (idle lanes still count), and unchanged on
        # single-device runs.
        pool_devices = pool_size or len(
            {r.device_id for r in accepted if r.device_id}
        ) or 1
        return cls(
            requests=len(records),
            completed=len(accepted),
            rejected=rejected,
            makespan_s=makespan,
            throughput_rps=(len(accepted) / makespan) if makespan > 0 else 0.0,
            queue_delay_mean_s=(sum(delays) / len(delays)) if delays else 0.0,
            queue_delay_p50_s=percentile(delays, 50.0) if delays else 0.0,
            queue_delay_p95_s=percentile(delays, 95.0) if delays else 0.0,
            service_mean_s=(sum(services) / len(services)) if services else 0.0,
            latency_mean_s=(sum(sojourns) / len(sojourns)) if sojourns else 0.0,
            busy_fraction=(busy / (makespan * pool_devices)) if makespan > 0 else 0.0,
            sessions=sum(r.replicas for r in accepted),
            cancelled_work_s=sum(r.cancelled_work_s for r in accepted),
            latency_p95_s=percentile(sojourns, 95.0) if sojourns else 0.0,
            kv_swap_s=sum(r.kv_swap_s for r in accepted),
            devices=pool_devices,
            kv_shared_bytes=shared_bytes,
            kv_dedup_ratio=dedup_ratio,
            ttft_mean_s=(sum(ttfts) / len(ttfts)) if ttfts else 0.0,
            ttft_p95_s=percentile(ttfts, 95.0) if ttfts else 0.0,
            tpot_mean_s=(sum(tpots) / len(tpots)) if tpots else 0.0,
            batch_occupancy_mean=occupancy_mean,
            batch_occupancy_peak=occupancy_peak,
            requests_lost=sum(r.lost for r in records),
            availability=len(accepted) / len(records),
            mttr_s=mttr,
            retries_total=sum(r.retries for r in records),
            redone_work_s=sum(r.redone_work_s for r in records),
            failed_over=sum(r.failed_over for r in records),
            lane_failures=lane_failures,
            escalations=sum(r.escalations for r in records),
            escalated_work_s=sum(r.escalated_work_s for r in records),
            affinity_hit_ratio=affinity_ratio,
            kv_planned_admitted_bytes=planned_admitted,
            kv_unique_admitted_bytes=unique_admitted,
            kv_migration_bytes_saved=migration_saved,
        )

    def summary_rows(self) -> list[list[object]]:
        return [
            ["requests", self.requests],
            ["completed", self.completed],
            ["rejected", self.rejected],
            ["makespan s", round(self.makespan_s, 2)],
            ["throughput req/s", round(self.throughput_rps, 4)],
            ["queue delay mean s", round(self.queue_delay_mean_s, 2)],
            ["queue delay p50 s", round(self.queue_delay_p50_s, 2)],
            ["queue delay p95 s", round(self.queue_delay_p95_s, 2)],
            ["service mean s", round(self.service_mean_s, 2)],
            ["latency mean s", round(self.latency_mean_s, 2)],
            ["latency p95 s", round(self.latency_p95_s, 2)],
            ["busy fraction", round(self.busy_fraction, 3)],
            ["devices", self.devices],
            ["sessions", self.sessions],
            ["cancelled work s", round(self.cancelled_work_s, 2)],
            ["kv swap s", round(self.kv_swap_s, 2)],
            ["kv shared MB", round(self.kv_shared_bytes / 1024**2, 2)],
            ["kv dedup ratio", round(self.kv_dedup_ratio, 3)],
            ["ttft mean s", round(self.ttft_mean_s, 2)],
            ["ttft p95 s", round(self.ttft_p95_s, 2)],
            ["tpot s", round(self.tpot_mean_s, 4)],
            ["batch occupancy", round(self.batch_occupancy_mean, 2)],
            ["availability", round(self.availability, 3)],
            ["requests lost", self.requests_lost],
            ["lane failures", self.lane_failures],
            ["mttr s", _opt(self.mttr_s)],
            ["retries", self.retries_total],
            ["redone work s", round(self.redone_work_s, 2)],
            ["failed over", self.failed_over],
            ["escalations", self.escalations],
            ["escalated work s", round(self.escalated_work_s, 2)],
            ["affinity hit ratio", round(self.affinity_hit_ratio, 3)],
            ["kv planned admitted MB",
             round(self.kv_planned_admitted_bytes / 1024**2, 2)],
            ["kv unique admitted MB",
             round(self.kv_unique_admitted_bytes / 1024**2, 2)],
            ["kv migration saved MB",
             round(self.kv_migration_bytes_saved / 1024**2, 2)],
        ]

    def table(self, title: str | None = None) -> str:
        return render_table(["metric", "value"], self.summary_rows(), title=title)


@dataclass(frozen=True, slots=True)
class DeviceUtilization:
    """One pool lane's share of a fleet run.

    Built by the fleet at drain time from its lane counters plus the
    per-request records; ``busy_fraction`` is this lane's device-seconds
    over the whole run's makespan, so an idle lane in a badly placed
    heterogeneous pool shows up as a near-zero row.
    """

    device_id: str
    device: str
    requests: int
    busy_s: float
    busy_fraction: float
    migrations_in: int = 0
    migrations_out: int = 0
    kv_swap_s: float = 0.0
    kv_swapped_out_bytes: int = 0
    kv_swapped_in_bytes: int = 0
    #: Peak bytes the lane ledger saved through cross-session prefix
    #: sharing (0 on a whole-session ledger).
    kv_shared_bytes: int = 0
    #: Peak logical over peak physical resident bytes (1.0 without sharing).
    kv_dedup_ratio: float = 1.0
    #: Peak physically resident KV bytes on the lane.
    kv_peak_resident_bytes: int = 0
    #: Batched generation iterations the lane's round batcher launched
    #: (0 with batching off).
    batch_iterations: int = 0
    #: Mean member sessions per batched generation iteration (1.0 when
    #: the lane never batched).
    batch_occupancy_mean: float = 1.0
    #: Widest generation batch the lane ran.
    batch_occupancy_peak: int = 1
    #: Fault lifecycle counters: the lane's health at drain end
    #: ("up"/"degraded"/"down"), crash and repair counts, total seconds
    #: spent dead, and injected transient-stall seconds.
    health: str = "up"
    failures: int = 0
    recoveries: int = 0
    downtime_s: float = 0.0
    stall_s: float = 0.0
    #: Sharing-aware placement/admission counters: primary placements the
    #: lane won, how many landed on already-resident prefix bytes, the
    #: full-vs-unique planned bytes admission billed here, and PCIe bytes
    #: delta-migration spared this lane's link.
    placements: int = 0
    affinity_hits: int = 0
    planned_admitted_bytes: int = 0
    unique_admitted_bytes: int = 0
    migration_bytes_saved: int = 0

    @classmethod
    def rollup(
        cls,
        records: Sequence[FleetRequestRecord],
        lanes: Sequence,
    ) -> tuple["DeviceUtilization", ...]:
        """Per-lane utilization from request records + pool lane counters.

        ``lanes`` are :class:`~repro.core.pool.PooledDevice` objects (typed
        loosely to keep metrics free of core imports).
        """
        makespan = max((r.finish_s for r in records if r.accepted), default=0.0)
        rows = []
        for lane in lanes:
            mine = [
                r for r in records if r.accepted and r.device_id == lane.device_id
            ]
            busy = sum(r.device_seconds for r in mine)
            rows.append(
                cls(
                    device_id=lane.device_id,
                    device=lane.spec.name,
                    requests=len(mine),
                    busy_s=busy,
                    busy_fraction=(busy / makespan) if makespan > 0 else 0.0,
                    migrations_in=lane.migrations_in,
                    migrations_out=lane.migrations_out,
                    kv_swap_s=lane.kv_swap_s,
                    kv_swapped_out_bytes=lane.ledger.swapped_out_bytes,
                    kv_swapped_in_bytes=lane.ledger.swapped_in_bytes,
                    kv_shared_bytes=lane.ledger.peak_shared_bytes,
                    kv_dedup_ratio=lane.ledger.dedup_ratio,
                    kv_peak_resident_bytes=lane.ledger.peak_resident_bytes,
                    batch_iterations=lane.batch_iterations,
                    batch_occupancy_mean=(
                        lane.batch_member_rounds / lane.batch_iterations
                        if lane.batch_iterations > 0
                        else 1.0
                    ),
                    batch_occupancy_peak=max(lane.batch_peak_occupancy, 1),
                    health=getattr(
                        getattr(lane, "health", None), "value", "up"
                    ),
                    failures=getattr(lane, "failures", 0),
                    recoveries=getattr(lane, "recoveries", 0),
                    downtime_s=getattr(lane, "downtime_s", 0.0),
                    stall_s=getattr(lane, "stall_s", 0.0),
                    placements=getattr(lane, "placements", 0),
                    affinity_hits=getattr(lane, "affinity_hits", 0),
                    planned_admitted_bytes=getattr(
                        lane, "planned_admitted_bytes", 0
                    ),
                    unique_admitted_bytes=getattr(
                        lane, "unique_admitted_bytes", 0
                    ),
                    migration_bytes_saved=getattr(
                        lane, "migration_bytes_saved", 0
                    ),
                )
            )
        return tuple(rows)


def device_table(
    devices: Sequence[DeviceUtilization], title: str | None = None
) -> str:
    """Render the per-device rollup of one fleet run."""
    if not devices:
        raise ValueError("need at least one device to tabulate")
    rows = [
        [
            d.device_id,
            d.requests,
            round(d.busy_s, 2),
            round(d.busy_fraction, 3),
            d.migrations_in,
            d.migrations_out,
            round(d.kv_swap_s, 2),
            round(d.kv_shared_bytes / 1024**2, 2),
            round(d.kv_dedup_ratio, 3),
            round(d.batch_occupancy_mean, 2),
            d.batch_occupancy_peak,
            d.health,
            d.failures,
            round(d.downtime_s, 2),
        ]
        for d in devices
    ]
    return render_table(
        ["device", "requests", "busy s", "busy frac",
         "migr in", "migr out", "kv swap s", "kv shared MB", "dedup",
         "occ mean", "occ peak", "health", "fail", "down s"],
        rows,
        title=title,
    )


def compare_policies(
    metrics_by_policy: Mapping[str, FleetMetrics], title: str | None = None
) -> str:
    """Side-by-side table of one workload served under several schedulers.

    ``metrics_by_policy`` maps a scheduler policy name to the
    :class:`FleetMetrics` of the run it produced (same submitted requests,
    same seed). Rows keep the mapping's insertion order, so callers
    control which policy is the baseline on top.
    """
    if not metrics_by_policy:
        raise ValueError("need at least one policy to compare")
    rows = [
        [
            policy,
            m.completed,
            m.rejected,
            round(m.queue_delay_mean_s, 2),
            round(m.queue_delay_p95_s, 2),
            round(m.latency_mean_s, 2),
            round(m.latency_p95_s, 2),
            round(m.makespan_s, 2),
            round(m.cancelled_work_s, 2),
            round(m.kv_swap_s, 2),
            round(m.kv_dedup_ratio, 3),
            round(m.ttft_mean_s, 2),
        ]
        for policy, m in metrics_by_policy.items()
    ]
    return render_table(
        ["scheduler", "done", "rej", "queue mean s", "queue p95 s",
         "latency mean s", "p95 sojourn s", "makespan s", "cancelled s",
         "kv swap s", "kv dedup", "ttft s"],
        rows,
        title=title,
    )


# -- guarded percentile helpers -----------------------------------------


def _guarded_p95(values: Sequence[float]) -> float | None:
    """p95 of a sample that may be empty (None) or a singleton (itself).

    An overloaded open-loop trace can legitimately drop *every* request,
    leaving no latency samples at all — report ``None`` rather than
    raising, and skip the interpolation machinery for one sample.
    """
    if not values:
        return None
    if len(values) == 1:
        return float(values[0])
    return percentile(values, 95.0)


def ttft_p95(records: Sequence[FleetRequestRecord]) -> float | None:
    """p95 TTFT over the records that produced a first token, else None."""
    return _guarded_p95(
        [r.ttft_s for r in records if r.accepted and r.ttft_s is not None]
    )


def latency_p95(records: Sequence[FleetRequestRecord]) -> float | None:
    """p95 sojourn over the completed records, else None."""
    return _guarded_p95([r.sojourn_s for r in records if r.accepted])


# -- SLO attainment and goodput under deadline ---------------------------


def _attainment(flags: Sequence[bool | None]) -> float | None:
    """Fraction of non-None flags that are True; None without any target."""
    judged = [f for f in flags if f is not None]
    if not judged:
        return None
    return sum(judged) / len(judged)


@dataclass(frozen=True, slots=True)
class TenantSLO:
    """One tenant's share of an open-loop run, judged against its SLOs.

    ``slo_attainment`` / ``ttft_attainment`` are the fractions of the
    tenant's requests that met their deadline / TTFT target (misses
    include drops and rejections; ``None`` when the tenant set no such
    target). ``goodput_ud_rps`` is goodput under deadline — *correct*
    answers per second of the run's makespan, counting only completions
    that beat their deadline (requests without a deadline count when
    correct) — the latency-bounded metric test-time scaling systems
    should be judged on.
    """

    tenant: str
    requests: int
    completed: int
    dropped: int
    rejected: int
    slo_attainment: float | None
    ttft_attainment: float | None
    goodput_ud_rps: float
    queue_delay_mean_s: float
    ttft_p95_s: float | None
    latency_p95_s: float | None

    @classmethod
    def aggregate(
        cls,
        tenant: str,
        records: Sequence[FleetRequestRecord],
        correct_by_request: Mapping[str, bool],
        makespan_s: float,
    ) -> "TenantSLO":
        accepted = [r for r in records if r.accepted]
        delays = [r.queue_delay_s for r in accepted]
        in_deadline_correct = sum(
            1
            for r in accepted
            if r.deadline_met is not False
            and correct_by_request.get(r.request_id, False)
        )
        return cls(
            tenant=tenant,
            requests=len(records),
            completed=len(accepted),
            dropped=sum(r.dropped for r in records),
            rejected=sum(not r.accepted and not r.dropped for r in records),
            slo_attainment=_attainment([r.deadline_met for r in records]),
            ttft_attainment=_attainment([r.ttft_slo_met for r in records]),
            goodput_ud_rps=(
                in_deadline_correct / makespan_s if makespan_s > 0 else 0.0
            ),
            queue_delay_mean_s=(sum(delays) / len(delays)) if delays else 0.0,
            ttft_p95_s=ttft_p95(records),
            latency_p95_s=latency_p95(records),
        )


def tenant_slo_rollup(
    records: Sequence[FleetRequestRecord],
    correct_by_request: Mapping[str, bool],
) -> tuple[TenantSLO, ...]:
    """Per-tenant SLO rows over one run's records, sorted by tenant name.

    Records without a tenant label (closed-loop submissions) group under
    ``"-"``. Every tenant's goodput is normalized by the same fleet-wide
    makespan, so the rows add up to the fleet's goodput under deadline.
    """
    makespan = max((r.finish_s for r in records if r.accepted), default=0.0)
    by_tenant: dict[str, list[FleetRequestRecord]] = {}
    for record in records:
        by_tenant.setdefault(record.tenant or "-", []).append(record)
    return tuple(
        TenantSLO.aggregate(tenant, rows, correct_by_request, makespan)
        for tenant, rows in sorted(by_tenant.items())
    )


def _pct(value: float | None) -> object:
    return "-" if value is None else f"{100.0 * value:.1f}%"


def _opt(value: float | None, digits: int = 2) -> object:
    return "-" if value is None else round(value, digits)


def tenant_table(
    slos: Sequence[TenantSLO], title: str | None = None
) -> str:
    """Side-by-side per-tenant SLO table (compare_policies-style)."""
    if not slos:
        raise ValueError("need at least one tenant to tabulate")
    rows = [
        [
            s.tenant,
            s.requests,
            s.completed,
            s.dropped,
            s.rejected,
            _pct(s.slo_attainment),
            _pct(s.ttft_attainment),
            round(s.goodput_ud_rps, 4),
            round(s.queue_delay_mean_s, 2),
            _opt(s.ttft_p95_s),
            _opt(s.latency_p95_s),
        ]
        for s in slos
    ]
    return render_table(
        ["tenant", "req", "done", "drop", "rej", "slo att", "ttft att",
         "goodput/ddl", "queue mean s", "ttft p95 s", "p95 sojourn s"],
        rows,
        title=title,
    )


def queue_depth_series(
    records: Sequence[FleetRequestRecord],
) -> tuple[tuple[float, int], ...]:
    """Step series ``(time, waiting)`` of admitted-but-unserved requests.

    A request waits from its arrival until service starts (or until it is
    dropped at deadline expiry); admission-rejected requests never enter
    the queue. Ties resolve departures before arrivals, so the depth at a
    shared timestamp is the post-transition value. The series is the
    overload picture of an open-loop run: closed-loop drains keep it at
    ~pool size, a 2x-oversubscribed trace grows it without bound.
    """
    events: list[tuple[float, int]] = []
    for record in records:
        if record.dropped:
            events.append((record.arrival_s, +1))
            events.append((record.finish_s, -1))
        elif record.accepted:
            events.append((record.arrival_s, +1))
            events.append((record.start_s, -1))
    events.sort()
    series: list[tuple[float, int]] = []
    depth = 0
    for time, delta in events:
        depth += delta
        if series and series[-1][0] == time:
            series[-1] = (time, depth)
        else:
            series.append((time, depth))
    return tuple(series)


def _depth_stats(
    series: Sequence[tuple[float, int]], horizon_s: float, threshold: int
) -> tuple[int, float, float]:
    """(peak, time-weighted mean, fraction of horizon at >= threshold)."""
    if not series or horizon_s <= 0:
        return 0, 0.0, 0.0
    peak = max(depth for _, depth in series)
    weighted = 0.0
    above = 0.0
    for (t0, depth), (t1, _) in zip(series, series[1:]):
        weighted += depth * (t1 - t0)
        if depth >= threshold:
            above += t1 - t0
    tail = horizon_s - series[-1][0]
    if tail > 0:
        weighted += series[-1][1] * tail
        if series[-1][1] >= threshold:
            above += tail
    return peak, weighted / horizon_s, above / horizon_s


@dataclass(frozen=True, slots=True)
class SLOSummary:
    """Fleet-wide SLO view of one (typically open-loop) run.

    ``overload_fraction`` is the fraction of the makespan with at least
    ``devices`` requests waiting — sustained demand beyond what the pool
    can start, the signature of an open-loop trace above the sustainable
    rate.
    """

    requests: int
    completed: int
    dropped: int
    rejected: int
    slo_attainment: float | None
    ttft_attainment: float | None
    goodput_ud_rps: float
    queue_depth_peak: int
    queue_depth_mean: float
    overload_fraction: float
    makespan_s: float
    #: Fault-induced losses and the served-over-offered ratio — the
    #: availability the SLO view is judged against under fault injection.
    requests_lost: int = 0
    availability: float = 1.0

    @classmethod
    def aggregate(
        cls,
        records: Sequence[FleetRequestRecord],
        correct_by_request: Mapping[str, bool],
        pool_size: int | None = None,
    ) -> "SLOSummary":
        if not records:
            raise ValueError("cannot aggregate an empty fleet run")
        accepted = [r for r in records if r.accepted]
        makespan = max((r.finish_s for r in accepted), default=0.0)
        if makespan == 0.0 and records:
            # Every request shed: the run still spans until the last drop.
            makespan = max(r.finish_s for r in records)
        in_deadline_correct = sum(
            1
            for r in accepted
            if r.deadline_met is not False
            and correct_by_request.get(r.request_id, False)
        )
        series = queue_depth_series(records)
        peak, mean, overload = _depth_stats(
            series, makespan, max(1, pool_size or 1)
        )
        return cls(
            requests=len(records),
            completed=len(accepted),
            dropped=sum(r.dropped for r in records),
            rejected=sum(not r.accepted and not r.dropped for r in records),
            slo_attainment=_attainment([r.deadline_met for r in records]),
            ttft_attainment=_attainment([r.ttft_slo_met for r in records]),
            goodput_ud_rps=(
                in_deadline_correct / makespan if makespan > 0 else 0.0
            ),
            queue_depth_peak=peak,
            queue_depth_mean=mean,
            overload_fraction=overload,
            makespan_s=makespan,
            requests_lost=sum(r.lost for r in records),
            availability=len(accepted) / len(records),
        )

    def summary_rows(self) -> list[list[object]]:
        return [
            ["requests", self.requests],
            ["completed", self.completed],
            ["dropped", self.dropped],
            ["rejected", self.rejected],
            ["lost", self.requests_lost],
            ["availability", _pct(self.availability)],
            ["slo attainment", _pct(self.slo_attainment)],
            ["ttft attainment", _pct(self.ttft_attainment)],
            ["goodput under deadline /s", round(self.goodput_ud_rps, 4)],
            ["queue depth peak", self.queue_depth_peak],
            ["queue depth mean", round(self.queue_depth_mean, 2)],
            ["overload fraction", round(self.overload_fraction, 3)],
            ["makespan s", round(self.makespan_s, 2)],
        ]

    def table(self, title: str | None = None) -> str:
        return render_table(["metric", "value"], self.summary_rows(), title=title)


# -- heterogeneous routing: per-lane-class rollups and the frontier -------


@dataclass(frozen=True, slots=True)
class LaneClassStats:
    """One lane class's share of a heterogeneous fleet run.

    ``routed`` counts requests the router's initial decision sent to the
    class; ``completed``/``escalated_in`` count requests that *settled*
    on it (an escalated request settles on a bigger class than it was
    routed to). ``accuracy`` is judged over the class's settled requests
    (None when the class settled nothing).
    """

    lane_class: str
    routed: int
    completed: int
    escalated_in: int
    correct: int
    accuracy: float | None
    latency_mean_s: float
    latency_p95_s: float | None
    device_time_mean_s: float

    @classmethod
    def aggregate(
        cls,
        lane_class: str,
        routed: int,
        records: Sequence[FleetRequestRecord],
        correct_by_request: Mapping[str, bool],
    ) -> "LaneClassStats":
        sojourns = [r.sojourn_s for r in records]
        correct = sum(
            1 for r in records if correct_by_request.get(r.request_id, False)
        )
        return cls(
            lane_class=lane_class,
            routed=routed,
            completed=len(records),
            escalated_in=sum(1 for r in records if r.escalations > 0),
            correct=correct,
            accuracy=(correct / len(records)) if records else None,
            latency_mean_s=(
                sum(sojourns) / len(sojourns) if sojourns else 0.0
            ),
            latency_p95_s=_guarded_p95(sojourns),
            device_time_mean_s=(
                sum(r.device_seconds for r in records) / len(records)
                if records else 0.0
            ),
        )


def lane_class_rollup(
    records: Sequence[FleetRequestRecord],
    correct_by_request: Mapping[str, bool],
) -> tuple[LaneClassStats, ...]:
    """Per-lane-class accuracy/latency rows, sorted by class name.

    Records that never reached a lane (rejected, dropped before service)
    contribute to their routed class's ``routed`` count but to no class's
    completion statistics.
    """
    classes = sorted(
        {r.lane_class for r in records if r.lane_class is not None}
        | {r.routed_class for r in records if r.routed_class is not None}
    )
    return tuple(
        LaneClassStats.aggregate(
            cls_name,
            sum(1 for r in records if r.routed_class == cls_name),
            [r for r in records if r.accepted and r.lane_class == cls_name],
            correct_by_request,
        )
        for cls_name in classes
    )


def lane_class_table(
    stats: Sequence[LaneClassStats], title: str | None = None
) -> str:
    """Render the per-lane-class rollup of one heterogeneous fleet run."""
    if not stats:
        raise ValueError("need at least one lane class to tabulate")
    rows = [
        [
            s.lane_class,
            s.routed,
            s.completed,
            s.escalated_in,
            _pct(s.accuracy),
            round(s.latency_mean_s, 2),
            _opt(s.latency_p95_s),
            round(s.device_time_mean_s, 2),
        ]
        for s in stats
    ]
    return render_table(
        ["lane class", "routed", "done", "escal in", "accuracy",
         "latency mean s", "latency p95 s", "device s"],
        rows,
        title=title,
    )


def router_decisions(
    records: Sequence[FleetRequestRecord],
) -> dict[str, int]:
    """Initial routing decisions: lane class → requests sent there.

    Escalations and crash failovers do not move a request between keys —
    the map audits what the router decided at admission, sorted by class
    name for stable rendering.
    """
    counts: dict[str, int] = {}
    for record in records:
        if record.routed_class is not None:
            counts[record.routed_class] = counts.get(record.routed_class, 0) + 1
    return dict(sorted(counts.items()))


@dataclass(frozen=True, slots=True)
class FrontierPoint:
    """One serving configuration's position on the accuracy-cost plane.

    ``accuracy`` is correct answers over *all* offered requests (shed or
    rejected work scores zero — a pool does not get accuracy credit for
    requests it refused); the cost axes are mean sojourn latency and mean
    device seconds per completed request.
    """

    label: str
    requests: int
    accuracy: float
    latency_mean_s: float
    device_time_mean_s: float

    def dominates(
        self, other: "FrontierPoint", accuracy_tolerance: float = 0.0
    ) -> bool:
        """Pareto dominance with an accuracy tolerance.

        True when this point is at least as accurate as ``other`` (within
        ``accuracy_tolerance``), no slower on mean latency, and strictly
        better on at least one of the two axes.
        """
        at_least_as_accurate = (
            self.accuracy >= other.accuracy - accuracy_tolerance
        )
        no_slower = self.latency_mean_s <= other.latency_mean_s
        strictly_better = (
            self.accuracy > other.accuracy
            or self.latency_mean_s < other.latency_mean_s
        )
        return at_least_as_accurate and no_slower and strictly_better


def frontier_point(
    label: str,
    records: Sequence[FleetRequestRecord],
    correct_by_request: Mapping[str, bool],
) -> FrontierPoint:
    """Collapse one run into its accuracy-vs-cost frontier point."""
    if not records:
        raise ValueError("cannot place an empty run on the frontier")
    accepted = [r for r in records if r.accepted]
    correct = sum(
        1 for r in accepted if correct_by_request.get(r.request_id, False)
    )
    sojourns = [r.sojourn_s for r in accepted]
    return FrontierPoint(
        label=label,
        requests=len(records),
        accuracy=correct / len(records),
        latency_mean_s=(sum(sojourns) / len(sojourns)) if sojourns else 0.0,
        device_time_mean_s=(
            sum(r.device_seconds for r in accepted) / len(accepted)
            if accepted else 0.0
        ),
    )


def frontier_table(
    points: Sequence[FrontierPoint], title: str | None = None
) -> str:
    """Accuracy-vs-cost frontier across serving configurations."""
    if not points:
        raise ValueError("need at least one frontier point to tabulate")
    rows = [
        [
            p.label,
            p.requests,
            _pct(p.accuracy),
            round(p.latency_mean_s, 2),
            round(p.device_time_mean_s, 2),
        ]
        for p in points
    ]
    return render_table(
        ["pool", "req", "accuracy", "latency mean s", "device s"],
        rows,
        title=title,
    )
