"""Utilization summaries over telemetry spans (Fig. 4, Fig. 17 left)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.telemetry import Phase, UtilSpan

__all__ = ["mean_phase_utilization", "utilization_timeline", "decay_ratio"]


def mean_phase_utilization(spans: Sequence[UtilSpan], phase: Phase) -> float:
    """Time-weighted mean occupancy for one phase."""
    selected = [s for s in spans if s.phase is phase]
    total = sum(s.duration for s in selected)
    if total == 0:
        return 0.0
    return sum(s.utilization * s.duration for s in selected) / total


def utilization_timeline(
    spans: Sequence[UtilSpan], phase: Phase, n_points: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """Piecewise-constant occupancy resampled on a uniform grid."""
    selected = sorted((s for s in spans if s.phase is phase), key=lambda s: s.t_start)
    if not selected:
        return np.zeros(0), np.zeros(0)
    t0 = selected[0].t_start
    t1 = max(s.t_end for s in selected)
    grid = np.linspace(t0, t1, n_points)
    values = np.zeros(n_points)
    for span in selected:
        mask = (grid >= span.t_start) & (grid < span.t_end)
        values[mask] = span.utilization
    return grid, values


def decay_ratio(spans: Sequence[UtilSpan], phase: Phase) -> float:
    """Occupancy at the end of the phase relative to its start.

    The baseline's generation phase decays toward ~1/capacity as stragglers
    drain (Fig. 4 left); speculation keeps this ratio near 1 (Fig. 17).
    """
    selected = sorted((s for s in spans if s.phase is phase), key=lambda s: s.t_start)
    if not selected:
        return 0.0
    first = selected[0].utilization
    last = selected[-1].utilization
    if first == 0:
        return 0.0
    return last / first
