"""Answer-quality metrics: Top-1 majority voting and Pass@N (Sec. 6.3).

Top-1 selects the final answer by majority vote over collected candidates
(ties broken by total verifier score, then smaller answer for determinism).
Pass@N asks whether at least one correct answer appears among the top N
candidates ranked by verifier score.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.metrics.goodput import BeamRecord

__all__ = ["majority_answer", "answer_confidence", "top1_correct", "pass_at_n"]


def majority_answer(beams: Sequence[BeamRecord]) -> int:
    """The majority-voted answer over all collected beams."""
    if not beams:
        raise ValueError("majority vote needs at least one beam")
    votes: dict[int, int] = defaultdict(int)
    score_mass: dict[int, float] = defaultdict(float)
    for beam in beams:
        votes[beam.answer] += 1
        score_mass[beam.answer] += beam.score
    return max(votes, key=lambda a: (votes[a], score_mass[a], -a))


def answer_confidence(beams: Sequence[BeamRecord]) -> float:
    """Verifier-score mass behind the majority answer, in [0, 1].

    Unlike :func:`top1_correct` this is *observable at serving time*: it
    reads only the PRM scores and the vote distribution, never the ground
    truth. A high value means the search's strongest-scored beams agree on
    one answer — the signal a deployed system has for "this finish looks
    verified" (the First-Finish scheduler's cancellation gate).
    """
    if not beams:
        return 0.0
    total = sum(max(b.score, 0.0) for b in beams)
    if total <= 0.0:
        return 0.0
    winner = majority_answer(beams)
    mass = sum(max(b.score, 0.0) for b in beams if b.answer == winner)
    return mass / total


def top1_correct(beams: Sequence[BeamRecord]) -> bool:
    """Whether majority voting lands on the ground truth.

    Correctness is read off the records: an answer value is the ground
    truth iff a beam carrying it is marked correct (wrong answers never
    collide with the truth by construction of the oracle).
    """
    if not beams:
        return False
    winner = majority_answer(beams)
    return any(b.correct and b.answer == winner for b in beams)


def pass_at_n(beams: Sequence[BeamRecord], n: int) -> bool:
    """At least one correct answer among the top ``n`` by verifier score."""
    if n < 1:
        raise ValueError("n must be positive")
    ranked = sorted(beams, key=lambda b: (-b.score, b.lineage))
    return any(b.correct for b in ranked[:n])
