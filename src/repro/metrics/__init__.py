"""Evaluation metrics: precise goodput, latency, accuracy, utilization."""

from repro.metrics.accuracy import majority_answer, pass_at_n, top1_correct
from repro.metrics.goodput import BeamRecord, precise_goodput
from repro.metrics.latency import LatencyBreakdown, mean_breakdown
from repro.metrics.report import ProblemRunResult, RunMetrics
from repro.metrics.utilization import (
    decay_ratio,
    mean_phase_utilization,
    utilization_timeline,
)

__all__ = [
    "BeamRecord",
    "precise_goodput",
    "LatencyBreakdown",
    "mean_breakdown",
    "majority_answer",
    "top1_correct",
    "pass_at_n",
    "ProblemRunResult",
    "RunMetrics",
    "mean_phase_utilization",
    "utilization_timeline",
    "decay_ratio",
]
