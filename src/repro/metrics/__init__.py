"""Evaluation metrics: goodput, latency, accuracy, utilization, fleet load."""

from repro.metrics.accuracy import majority_answer, pass_at_n, top1_correct
from repro.metrics.fleet import FleetMetrics, FleetRequestRecord
from repro.metrics.goodput import (
    BeamRecord,
    format_gain,
    precise_goodput,
    throughput_gain,
)
from repro.metrics.latency import LatencyBreakdown, mean_breakdown
from repro.metrics.report import ProblemRunResult, RunMetrics
from repro.metrics.utilization import (
    decay_ratio,
    mean_phase_utilization,
    utilization_timeline,
)

__all__ = [
    "BeamRecord",
    "precise_goodput",
    "throughput_gain",
    "format_gain",
    "FleetMetrics",
    "FleetRequestRecord",
    "LatencyBreakdown",
    "mean_breakdown",
    "majority_answer",
    "top1_correct",
    "pass_at_n",
    "ProblemRunResult",
    "RunMetrics",
    "mean_phase_utilization",
    "utilization_timeline",
    "decay_ratio",
]
