"""Completion latency and its generator/verifier breakdown (Fig. 13)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["LatencyBreakdown", "mean_breakdown"]


@dataclass(frozen=True, slots=True)
class LatencyBreakdown:
    """End-to-end seconds for one request, split by phase."""

    total: float
    generation: float
    verification: float
    swap: float = 0.0

    def __post_init__(self) -> None:
        for name in ("total", "generation", "verification", "swap"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def accounted(self) -> float:
        return self.generation + self.verification + self.swap

    @property
    def generator_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.generation / self.total

    @property
    def verifier_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.verification / self.total

    def to_json_dict(self) -> dict:
        """Plain-data form for the on-disk result cache (exact floats)."""
        return {
            "total": self.total,
            "generation": self.generation,
            "verification": self.verification,
            "swap": self.swap,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "LatencyBreakdown":
        return cls(
            total=payload["total"],
            generation=payload["generation"],
            verification=payload["verification"],
            swap=payload.get("swap", 0.0),
        )


def mean_breakdown(breakdowns: Iterable[LatencyBreakdown]) -> LatencyBreakdown:
    """Arithmetic mean per component over a non-empty collection."""
    items = list(breakdowns)
    if not items:
        raise ValueError("cannot average an empty collection of breakdowns")
    n = len(items)
    return LatencyBreakdown(
        total=sum(b.total for b in items) / n,
        generation=sum(b.generation for b in items) / n,
        verification=sum(b.verification for b in items) / n,
        swap=sum(b.swap for b in items) / n,
    )
