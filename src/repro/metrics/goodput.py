"""Precise Goodput (paper Sec. 6.1, Metrics).

Standard goodput misleads for TTS because most generated tokens are never
selected. The paper defines::

    Precise Goodput := (average token length per beam)
                     / (average beam completion time)

averaging over all *collected* beams, which makes the metric robust to a
single slow path and to text copied during branching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["BeamRecord", "precise_goodput", "throughput_gain", "format_gain"]


@dataclass(frozen=True, slots=True)
class BeamRecord:
    """Everything the metrics need about one collected beam."""

    lineage: tuple[int, ...]
    tokens: int
    completion_time: float
    answer: int
    correct: bool
    score: float

    def __post_init__(self) -> None:
        if self.tokens <= 0:
            raise ValueError("a collected beam has at least one token")
        if self.completion_time <= 0:
            raise ValueError("completion_time must be positive")


def precise_goodput(beams: Sequence[BeamRecord] | Iterable[BeamRecord]) -> float:
    """Tokens/s by the paper's definition; 0.0 for an empty collection."""
    beam_list = list(beams)
    if not beam_list:
        return 0.0
    avg_tokens = sum(b.tokens for b in beam_list) / len(beam_list)
    avg_time = sum(b.completion_time for b in beam_list) / len(beam_list)
    return avg_tokens / avg_time


def throughput_gain(new: float, baseline: float) -> float:
    """Ratio ``new / baseline`` with the degenerate zero cases pinned down.

    The single place defining what a gain means when a run collected no
    tokens: both sides zero is a wash (1.0); a zero baseline against real
    throughput is an unbounded gain (``inf``). Callers render the infinite
    case through :func:`format_gain` so ``round()`` never propagates ``inf``
    into tables.
    """
    if baseline == 0.0:
        return 1.0 if new == 0.0 else float("inf")
    return new / baseline


def format_gain(gain: float, digits: int = 2) -> float | str:
    """Table-ready rendering of a gain ratio: finite → rounded, else ``"inf"``."""
    if math.isinf(gain):
        return "inf"
    if math.isnan(gain):
        return "nan"
    return round(gain, digits)
