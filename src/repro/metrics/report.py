"""Result containers and dataset-level aggregation.

``ProblemRunResult`` is what the server emits per problem;
``RunMetrics.aggregate`` pools a dataset run into the quantities the
paper's figures report (precise goodput, mean latency + breakdown, Top-1
accuracy, Pass@N, utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.telemetry import Phase, TokenCounters, UtilSpan
from repro.metrics.accuracy import pass_at_n, top1_correct
from repro.metrics.goodput import BeamRecord, precise_goodput
from repro.metrics.latency import LatencyBreakdown, mean_breakdown
from repro.metrics.utilization import mean_phase_utilization
from repro.utils.tables import render_table

__all__ = ["ProblemRunResult", "RunMetrics"]


@dataclass(frozen=True, slots=True)
class ProblemRunResult:
    """One problem solved by one server configuration."""

    problem_id: str
    algorithm: str
    n: int
    beams: tuple[BeamRecord, ...]
    latency: LatencyBreakdown
    tokens: TokenCounters
    util_spans: tuple[UtilSpan, ...] = ()
    gen_cache_hit_rate: float = 0.0
    ver_cache_hit_rate: float = 0.0
    gen_evicted_segments: int = 0
    ver_evicted_segments: int = 0

    @property
    def goodput(self) -> float:
        return precise_goodput(self.beams)

    @property
    def top1_correct(self) -> bool:
        return top1_correct(self.beams)

    def to_json_dict(self) -> dict:
        """Plain-data form for the on-disk result cache.

        Floats survive the JSON round trip exactly (``repr`` round-tripping),
        so a cached result is byte-identical to a fresh run when re-rendered.
        """
        return {
            "problem_id": self.problem_id,
            "algorithm": self.algorithm,
            "n": self.n,
            "beams": [
                {
                    "lineage": list(b.lineage),
                    "tokens": b.tokens,
                    "completion_time": b.completion_time,
                    "answer": b.answer,
                    "correct": b.correct,
                    "score": b.score,
                }
                for b in self.beams
            ],
            "latency": self.latency.to_json_dict(),
            "tokens": {
                "committed": self.tokens.committed,
                "speculative_used": self.tokens.speculative_used,
                "speculative_wasted": self.tokens.speculative_wasted,
                "recomputed": self.tokens.recomputed,
            },
            "util_spans": [
                {
                    "t_start": s.t_start,
                    "t_end": s.t_end,
                    "busy_slots": s.busy_slots,
                    "capacity_slots": s.capacity_slots,
                    "phase": s.phase.value,
                    "speculative_slots": s.speculative_slots,
                }
                for s in self.util_spans
            ],
            "gen_cache_hit_rate": self.gen_cache_hit_rate,
            "ver_cache_hit_rate": self.ver_cache_hit_rate,
            "gen_evicted_segments": self.gen_evicted_segments,
            "ver_evicted_segments": self.ver_evicted_segments,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ProblemRunResult":
        return cls(
            problem_id=payload["problem_id"],
            algorithm=payload["algorithm"],
            n=payload["n"],
            beams=tuple(
                BeamRecord(
                    lineage=tuple(b["lineage"]),
                    tokens=b["tokens"],
                    completion_time=b["completion_time"],
                    answer=b["answer"],
                    correct=b["correct"],
                    score=b["score"],
                )
                for b in payload["beams"]
            ),
            latency=LatencyBreakdown.from_json_dict(payload["latency"]),
            tokens=TokenCounters(**payload["tokens"]),
            util_spans=tuple(
                UtilSpan(
                    t_start=s["t_start"],
                    t_end=s["t_end"],
                    busy_slots=s["busy_slots"],
                    capacity_slots=s["capacity_slots"],
                    phase=Phase(s["phase"]),
                    speculative_slots=s["speculative_slots"],
                )
                for s in payload["util_spans"]
            ),
            gen_cache_hit_rate=payload["gen_cache_hit_rate"],
            ver_cache_hit_rate=payload["ver_cache_hit_rate"],
            gen_evicted_segments=payload["gen_evicted_segments"],
            ver_evicted_segments=payload["ver_evicted_segments"],
        )


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Dataset-level aggregate of many problem runs."""

    algorithm: str
    n: int
    problem_count: int
    goodput: float
    latency: LatencyBreakdown
    top1_accuracy: float
    pass_at: dict[int, float] = field(default_factory=dict)
    generation_utilization: float = 0.0
    speculation_efficiency: float = 0.0
    gen_cache_hit_rate: float = 0.0
    ver_cache_hit_rate: float = 0.0

    @classmethod
    def aggregate(
        cls,
        results: Sequence[ProblemRunResult],
        pass_ns: Sequence[int] = (1, 4, 16, 64),
    ) -> "RunMetrics":
        """Pool per-problem results into the paper's reported quantities."""
        if not results:
            raise ValueError("cannot aggregate an empty result list")
        all_beams = [b for r in results for b in r.beams]
        all_spans = [s for r in results for s in r.util_spans]
        spec_used = sum(r.tokens.speculative_used for r in results)
        spec_total = spec_used + sum(r.tokens.speculative_wasted for r in results)
        pass_rates = {
            k: sum(pass_at_n(r.beams, k) for r in results) / len(results)
            for k in pass_ns
        }
        return cls(
            algorithm=results[0].algorithm,
            n=results[0].n,
            problem_count=len(results),
            goodput=precise_goodput(all_beams),
            latency=mean_breakdown([r.latency for r in results]),
            top1_accuracy=sum(r.top1_correct for r in results) / len(results),
            pass_at=pass_rates,
            generation_utilization=mean_phase_utilization(all_spans, Phase.GENERATION),
            speculation_efficiency=(spec_used / spec_total) if spec_total else 0.0,
            gen_cache_hit_rate=(
                sum(r.gen_cache_hit_rate for r in results) / len(results)
            ),
            ver_cache_hit_rate=(
                sum(r.ver_cache_hit_rate for r in results) / len(results)
            ),
        )

    def to_json_dict(self) -> dict:
        """Plain-data form for the on-disk result cache (exact floats)."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "problem_count": self.problem_count,
            "goodput": self.goodput,
            "latency": self.latency.to_json_dict(),
            "top1_accuracy": self.top1_accuracy,
            "pass_at": {str(k): v for k, v in self.pass_at.items()},
            "generation_utilization": self.generation_utilization,
            "speculation_efficiency": self.speculation_efficiency,
            "gen_cache_hit_rate": self.gen_cache_hit_rate,
            "ver_cache_hit_rate": self.ver_cache_hit_rate,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "RunMetrics":
        return cls(
            algorithm=payload["algorithm"],
            n=payload["n"],
            problem_count=payload["problem_count"],
            goodput=payload["goodput"],
            latency=LatencyBreakdown.from_json_dict(payload["latency"]),
            top1_accuracy=payload["top1_accuracy"],
            pass_at={int(k): v for k, v in payload["pass_at"].items()},
            generation_utilization=payload["generation_utilization"],
            speculation_efficiency=payload["speculation_efficiency"],
            gen_cache_hit_rate=payload["gen_cache_hit_rate"],
            ver_cache_hit_rate=payload["ver_cache_hit_rate"],
        )

    def summary_row(self) -> list[object]:
        """One table row: the columns most figures compare."""
        return [
            self.algorithm,
            self.n,
            round(self.goodput, 2),
            round(self.latency.total, 2),
            round(self.latency.generation, 2),
            round(self.latency.verification, 2),
            round(self.top1_accuracy, 3),
        ]

    @staticmethod
    def table(rows: Sequence["RunMetrics"], title: str | None = None) -> str:
        """Render a comparison table over multiple runs."""
        return render_table(
            ["algorithm", "n", "goodput tok/s", "latency s",
             "gen s", "verify s", "top1 acc"],
            [r.summary_row() for r in rows],
            title=title,
        )
