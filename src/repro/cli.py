"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List registered devices, models, datasets, and search algorithms.
``solve``
    Serve one problem and print the FastTTS-vs-baseline comparison.
``report``
    Deployment feasibility + roofline report for a config on a device.
``straggler``
    Analytical idle-fraction table (why speculation has room to work).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.reports import deployment_report
from repro.analysis.straggler import idle_fraction
from repro.core.config import baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.hardware.device import list_devices
from repro.models.zoo import list_models
from repro.search.registry import build_algorithm, list_algorithms
from repro.utils.tables import render_table
from repro.workloads.datasets import DATASET_PROFILES, build_dataset, list_datasets

__all__ = ["main", "build_parser"]


def _cmd_info(args: argparse.Namespace) -> int:
    print("devices:   " + ", ".join(list_devices()))
    print("models:    " + ", ".join(list_models()))
    print("datasets:  " + ", ".join(list_datasets()))
    print("algorithms:" + " " + ", ".join(list_algorithms()))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    dataset = build_dataset(args.dataset, seed=args.seed, size=max(1, args.problem + 1))
    problem = list(dataset)[args.problem]
    algorithm = build_algorithm(args.algorithm, args.n)
    rows = []
    for label, factory in (("baseline", baseline_config), ("fasttts", fasttts_config)):
        config = factory(
            device_name=args.device,
            model_config=args.config,
            memory_fraction=args.memory_fraction,
            seed=args.seed,
        )
        result = TTSServer(config, dataset).solve(problem, algorithm)
        rows.append([
            label,
            round(result.goodput, 1),
            round(result.latency.total, 1),
            round(result.latency.generation, 1),
            round(result.latency.verification, 1),
            result.top1_correct,
        ])
    print(render_table(
        ["system", "goodput tok/s", "latency s", "gen s", "verify s", "top1"],
        rows,
        title=(f"{problem.problem_id} | {args.config} on {args.device} "
               f"| {args.algorithm} n={args.n}"),
    ))
    gain = rows[1][1] / rows[0][1] if rows[0][1] else float("inf")
    print(f"goodput gain: {gain:.2f}x")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(deployment_report(
        model_config=args.config,
        device_name=args.device,
        memory_fraction=args.memory_fraction,
        dataset_name=args.dataset,
        n=args.n,
    ))
    return 0


def _cmd_straggler(args: argparse.Namespace) -> int:
    profile = DATASET_PROFILES[args.dataset]
    rows = [
        [batch, round(idle_fraction(profile.step_model, batch) * 100, 1)]
        for batch in (1, 4, 16, 64, 256)
    ]
    print(render_table(
        ["batch size", "expected idle slot-time %"],
        rows,
        title=f"straggler idle fraction ({args.dataset} step lengths)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FastTTS reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list devices/models/datasets/algorithms")

    solve = sub.add_parser("solve", help="serve one problem on both systems")
    solve.add_argument("--dataset", default="aime24", choices=list_datasets())
    solve.add_argument("--problem", type=int, default=0)
    solve.add_argument("--config", default="1.5B+1.5B")
    solve.add_argument("--device", default="rtx4090", choices=list_devices())
    solve.add_argument("--algorithm", default="beam_search",
                       choices=list_algorithms())
    solve.add_argument("-n", type=int, default=16)
    solve.add_argument("--memory-fraction", type=float, default=0.4)
    solve.add_argument("--seed", type=int, default=0)

    report = sub.add_parser("report", help="deployment feasibility report")
    report.add_argument("--config", default="1.5B+1.5B")
    report.add_argument("--device", default="rtx4090", choices=list_devices())
    report.add_argument("--dataset", default="aime24", choices=list_datasets())
    report.add_argument("-n", type=int, default=64)
    report.add_argument("--memory-fraction", type=float, default=0.9)

    straggler = sub.add_parser("straggler", help="idle-fraction analysis")
    straggler.add_argument("--dataset", default="aime24", choices=list_datasets())

    return parser


_HANDLERS = {
    "info": _cmd_info,
    "solve": _cmd_solve,
    "report": _cmd_report,
    "straggler": _cmd_straggler,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
