"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List registered devices, models, datasets, and search algorithms.
``solve``
    Serve one problem and print the FastTTS-vs-baseline comparison.
``sweep``
    Baseline-vs-FastTTS beam sweep through the parallel orchestrator:
    ``--jobs N`` shards cells over worker processes, and completed cells
    are memoized in the on-disk result cache (default
    ``benchmarks/benchmark_results/cache/``; ``--cache-dir`` /
    ``$REPRO_CACHE_DIR`` override, ``--no-cache`` disables).
``fleet``
    Multi-request serving: queue a stream of solve requests with simulated
    arrival times onto a device pool and report fleet metrics (request
    throughput, p50/p95 queueing delay and sojourn, busy fraction, KV swap
    time). ``--scheduler`` picks the request-scheduling policy (``fifo``,
    ``sjf``, ``round_robin``, ``first_finish``, ``prefix_affinity``) or
    compares them all (``--scheduler all``); ``--devices
    rtx4090,rtx4070ti`` spans a heterogeneous pool and ``--placement``
    picks how requests spread across it (``first_fit``, ``least_loaded``,
    ``kv_balanced``); ``--kv-sharing prefix`` dedups KV prefix segments
    shared by co-resident sessions in each lane's ledger (``off`` keeps
    whole-session accounting, byte-identical to the goldens);
    ``--batching continuous`` coalesces co-resident sessions' rounds into
    jointly-costed batches per lane — weight reads amortize across the
    batch and the report gains TTFT/TPOT and occupancy rows (``off``
    time-slices one session per round, byte-identical to the goldens);
    ``--lane MODEL@DEVICE[:DTYPE][:mem=FRACTION],...`` deploys a
    *different* model pairing (optionally quantized) per lane and
    ``--router {static,predicted,cascade}`` picks which lane class serves
    each request — ``cascade`` escalates verifier-rejected cheap attempts
    to the bigger class, billing the abandoned work honestly.
``trace``
    Open-loop trace-driven serving. ``trace generate`` synthesizes a
    multi-tenant arrival trace (``--tenant
    "chat:arrival=poisson,rate=0.05,deadline=300,ttft=60"`` — arrival
    processes ``poisson``/``diurnal``/``bursty``, per-tenant dataset,
    difficulty mix, search budget and SLO targets) and writes replayable
    JSONL; ``trace run`` generates and serves it in one step; ``trace
    replay`` serves a trace file byte-identically to the run that wrote
    it. Requests arrive at their trace timestamps regardless of capacity
    — queues build and deadlines expire; ``--late-policy drop`` sheds
    queued requests at deadline expiry, ``serve_late`` (default) serves
    them anyway and lets SLO attainment take the hit. Reports add SLO
    attainment, goodput-under-deadline, queue-depth/overload stats, and
    a per-tenant table; all ``fleet`` axes (scheduler, devices,
    placement, kv-sharing, batching, oversubscription) apply.
``schedulers``
    List the registered request-scheduling and placement policies.
``devices``
    List the registered device specs (VRAM, peak FLOPs, bandwidths).
``report``
    Deployment feasibility + roofline report for a config on a device.
``straggler``
    Analytical idle-fraction table (why speculation has room to work).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.reports import deployment_report
from repro.analysis.straggler import idle_fraction
from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals, run_trace
from repro.core.pool import list_placements, placement_descriptions
from repro.core.scheduler import list_schedulers, scheduler_descriptions
from repro.core.server import TTSServer
from repro.errors import ConfigError
from repro.faults import fault_descriptions, parse_fault_spec
from repro.metrics.fleet import compare_policies
from repro.routing import (
    build_router,
    list_routers,
    parse_lane_list,
    router_descriptions,
)
from repro.utils.suggest import did_you_mean
from repro.workloads.arrivals import arrival_descriptions
from repro.workloads.tenants import TenantSpec, generate_trace
from repro.workloads.trace import Trace
from repro.experiments.parallel import (
    ParallelOrchestrator,
    ResultCache,
    use_orchestrator,
)
from repro.experiments.runner import ExperimentSpec, sweep_n
from repro.hardware.device import get_device, list_devices
from repro.metrics.goodput import format_gain, throughput_gain
from repro.models.zoo import list_models
from repro.search.registry import build_algorithm, list_algorithms
from repro.utils.tables import render_table
from repro.workloads.datasets import DATASET_PROFILES, build_dataset, list_datasets

__all__ = ["main", "build_parser"]


def _cmd_info(args: argparse.Namespace) -> int:
    print("devices:   " + ", ".join(list_devices()))
    print("models:    " + ", ".join(list_models()))
    print("datasets:  " + ", ".join(list_datasets()))
    print("algorithms:" + " " + ", ".join(list_algorithms()))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.problem < 0:
        print(
            f"error: --problem must be a non-negative index, got {args.problem}",
            file=sys.stderr,
        )
        return 2
    dataset = build_dataset(args.dataset, seed=args.seed, size=args.problem + 1)
    problem = list(dataset)[args.problem]
    algorithm = build_algorithm(args.algorithm, args.n)
    rows = []
    for label, factory in (("baseline", baseline_config), ("fasttts", fasttts_config)):
        config = factory(
            device_name=args.device,
            model_config=args.config,
            memory_fraction=args.memory_fraction,
            seed=args.seed,
        )
        result = TTSServer(config, dataset).solve(problem, algorithm)
        rows.append([
            label,
            round(result.goodput, 1),
            round(result.latency.total, 1),
            round(result.latency.generation, 1),
            round(result.latency.verification, 1),
            result.top1_correct,
        ])
    print(render_table(
        ["system", "goodput tok/s", "latency s", "gen s", "verify s", "top1"],
        rows,
        title=(f"{problem.problem_id} | {args.config} on {args.device} "
               f"| {args.algorithm} n={args.n}"),
    ))
    gain = throughput_gain(rows[1][1], rows[0][1])
    print(f"goodput gain: {format_gain(gain)}x")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.problems < 1:
        print(f"error: --problems must be >= 1, got {args.problems}", file=sys.stderr)
        return 2
    spec = ExperimentSpec(
        dataset_name=args.dataset,
        dataset_size=args.problems,
        model_config=args.config,
        device_name=args.device,
        algorithm=args.algorithm,
        seed=args.seed,
        memory_fraction=args.memory_fraction,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    with ParallelOrchestrator(jobs=args.jobs, cache=cache) as orchestrator:
        with use_orchestrator(orchestrator):
            pairs = sweep_n(spec, list(args.n_values))
    print(render_table(
        ["config", "dataset", "algorithm", "n", "baseline tok/s",
         "fasttts tok/s", "gain x", "latency -%"],
        [pair.summary_row() for pair in pairs],
        title=(f"sweep: {args.config} on {args.device} | {args.algorithm} "
               f"| {args.problems} problems | jobs={args.jobs}"),
    ))
    if cache is not None:
        print(
            f"result cache: {cache.hits} hits, {cache.misses} misses "
            f"under {cache.directory}/"
        )
    return 0


def _parse_device_list(spec: str | None) -> tuple[list[str] | None, str | None]:
    """Parse/validate ``--devices``; returns ``(names, error)``.

    ``None`` spec means the flag was not given — the single ``--device``
    default applies. An empty list, blank entries, or unknown device names
    are errors (exit-2 convention, with a nearest-name suggestion).

    Duplicate names are deliberately legal: ``--devices
    rtx4090,rtx4090`` builds a two-lane pool of identical cards, and the
    pool suffixes each lane id with its index (``dev0:rtx4090``,
    ``dev1:rtx4090``) so ids never collide.
    """
    if spec is None:
        return None, None
    names = [name.strip() for name in spec.split(",")]
    if not any(names):
        return None, "--devices must name at least one device"
    if any(not name for name in names):
        return None, f"--devices has an empty entry in {spec!r}"
    known = list_devices()
    for name in names:
        if name not in known:
            return None, (
                f"--devices: unknown device {name!r}"
                f"{did_you_mean(name, known)}; known: {', '.join(known)}"
            )
    return names, None


def _parse_hetero_flags(args: argparse.Namespace):
    """Validate ``--lane``/``--router``; returns ``(lanes, error)``.

    ``--lane`` and ``--devices`` are mutually exclusive (a lane spec
    already names its device); lane grammar and router names follow the
    exit-2 convention with nearest-name suggestions.
    """
    lanes = None
    if args.lane is not None:
        if args.devices is not None:
            return None, (
                "--lane and --devices are mutually exclusive; "
                "a lane spec already names its device"
            )
        try:
            lanes = parse_lane_list(args.lane)
        except ConfigError as exc:
            return None, f"--lane: {exc}"
    if args.router != "off":
        try:
            build_router(args.router)
        except ConfigError as exc:
            return None, f"--router: {exc}"
    return lanes, None


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.requests < 1:
        print(f"error: --requests must be >= 1, got {args.requests}", file=sys.stderr)
        return 2
    if args.n < 1:
        print(f"error: -n must be >= 1, got {args.n}", file=sys.stderr)
        return 2
    if args.rate <= 0:
        print(f"error: --rate must be > 0, got {args.rate}", file=sys.stderr)
        return 2
    if args.max_in_flight is not None and args.max_in_flight < 1:
        print(
            f"error: --max-in-flight must be >= 1, got {args.max_in_flight}",
            file=sys.stderr,
        )
        return 2
    device_names, device_error = _parse_device_list(args.devices)
    if device_error is not None:
        print(f"error: {device_error}", file=sys.stderr)
        return 2
    lanes, hetero_error = _parse_hetero_flags(args)
    if hetero_error is not None:
        print(f"error: {hetero_error}", file=sys.stderr)
        return 2
    try:
        parse_fault_spec(args.faults)
    except ConfigError as exc:
        print(f"error: --faults: {exc}", file=sys.stderr)
        return 2
    factory = fasttts_config if args.system == "fasttts" else baseline_config
    config = factory(
        device_name=(lanes[0].device_name if lanes
                     else device_names[0] if device_names else args.device),
        model_config=(lanes[0].model_config if lanes else args.config),
        memory_fraction=args.memory_fraction,
        seed=args.seed,
    )
    arrivals = generate_arrivals(
        args.requests, args.rate, seed=args.seed, distribution=args.arrivals
    )
    algorithm = build_algorithm(args.algorithm, args.n)
    dataset = build_dataset(args.dataset, seed=args.seed, size=args.requests)
    policies = list_schedulers() if args.scheduler == "all" else [args.scheduler]

    reports = {}
    for policy in policies:
        fleet = TTSFleet(
            config, dataset, max_in_flight=args.max_in_flight, scheduler=policy,
            devices=device_names, placement=args.placement,
            oversubscription=args.oversubscription,
            kv_sharing=args.kv_sharing,
            batching=args.batching,
            faults=args.faults,
            recovery=args.recovery,
            retry_budget=args.retry_budget,
            lanes=lanes,
            router=args.router,
        )
        fleet.submit_stream(list(dataset), algorithm, arrivals)
        reports[policy] = fleet.drain()

    if lanes:
        device_label = ",".join(spec.label for spec in lanes)
        served = f"lanes {device_label}"
    else:
        device_label = ",".join(device_names) if device_names else args.device
        served = f"{args.config} on {device_label}"
    workload = (f"{args.requests} requests @ {args.rate}/s ({args.arrivals}) "
                f"| {args.system} {served} "
                f"| {args.algorithm} n={args.n}")
    if args.router != "off":
        workload += f" | router {args.router}"
    if args.kv_sharing != "off":
        workload += f" | kv-sharing {args.kv_sharing}"
    if args.batching != "off":
        workload += f" | batching {args.batching}"
    if args.faults != "off":
        workload += f" | faults {args.faults} | recovery {args.recovery}"
    multi_device = (
        (device_names is not None and len(device_names) > 1)
        or (lanes is not None and len(lanes) > 1)
    )
    if multi_device:
        workload += f" | placement {args.placement}"
    if len(reports) == 1:
        policy, report = next(iter(reports.items()))
        print(report.table(title=f"fleet [{policy}]: {workload}"))
        if multi_device:
            print(report.device_table(title="per-device utilization"))
        if args.router != "off":
            print(report.lane_class_table(title="per-lane-class rollup"))
            decisions = ", ".join(
                f"{cls}: {count}"
                for cls, count in report.router_decisions().items()
            )
            print(f"router decisions: {decisions or 'none'}")
        for record in report.records:
            if record.lost:
                print(f"lost {record.request_id}: {record.reject_reason}")
            elif not record.accepted:
                print(f"rejected {record.request_id}: {record.reject_reason}")
    else:
        print(compare_policies(
            {policy: report.metrics for policy, report in reports.items()},
            title=f"fleet scheduler comparison: {workload}",
        ))
    return 0


#: Tenants used when ``trace generate``/``trace run`` get no ``--tenant``:
#: a latency-sensitive interactive stream plus a bursty batch backfill.
_DEFAULT_TENANTS = (
    "chat:arrival=poisson,rate=0.02,deadline=300,ttft=120",
    "batch:arrival=bursty,rate=0.01,deadline=1200,slo=batch",
)


def _trace_from_args(args: argparse.Namespace) -> Trace:
    """Build a trace from ``--tenant`` specs (raises ConfigError)."""
    if args.requests < 1:
        raise ConfigError(f"--requests must be >= 1, got {args.requests}")
    specs = list(args.tenant) if args.tenant else list(_DEFAULT_TENANTS)
    tenants = [TenantSpec.parse(spec) for spec in specs]
    return generate_trace(
        tenants,
        seed=args.seed,
        default_requests=args.requests,
        base_dataset=args.base_dataset,
    )


def _print_trace_summary(trace: Trace) -> None:
    per_tenant: dict[str, int] = {}
    for request in trace.requests:
        per_tenant[request.tenant] = per_tenant.get(request.tenant, 0) + 1
    rows = [[name, count] for name, count in sorted(per_tenant.items())]
    print(render_table(
        ["tenant", "requests"], rows,
        title=(f"trace: {len(trace.requests)} requests | seed {trace.seed} "
               f"| horizon {trace.horizon_s:.0f}s "
               f"| base dataset {trace.base_dataset}"),
    ))


def _serve_trace(trace: Trace, args: argparse.Namespace) -> int:
    """Replay ``trace`` through the open-loop fleet and print SLO tables."""
    if args.max_in_flight is not None and args.max_in_flight < 1:
        print(
            f"error: --max-in-flight must be >= 1, got {args.max_in_flight}",
            file=sys.stderr,
        )
        return 2
    device_names, device_error = _parse_device_list(args.devices)
    if device_error is not None:
        print(f"error: {device_error}", file=sys.stderr)
        return 2
    lanes, hetero_error = _parse_hetero_flags(args)
    if hetero_error is not None:
        print(f"error: {hetero_error}", file=sys.stderr)
        return 2
    try:
        parse_fault_spec(args.faults)
    except ConfigError as exc:
        print(f"error: --faults: {exc}", file=sys.stderr)
        return 2
    factory = fasttts_config if args.system == "fasttts" else baseline_config
    config = factory(
        device_name=(lanes[0].device_name if lanes
                     else device_names[0] if device_names else args.device),
        model_config=(lanes[0].model_config if lanes else args.config),
        memory_fraction=args.memory_fraction,
        seed=trace.seed,
    )
    report = run_trace(
        trace, config,
        scheduler=args.scheduler,
        placement=args.placement,
        devices=device_names,
        oversubscription=args.oversubscription,
        kv_sharing=args.kv_sharing,
        batching=args.batching,
        late_policy=args.late_policy,
        max_in_flight=args.max_in_flight,
        faults=args.faults,
        recovery=args.recovery,
        retry_budget=args.retry_budget,
        lanes=lanes,
        router=args.router,
    )
    if lanes:
        served = "lanes " + ",".join(spec.label for spec in lanes)
    else:
        device_label = ",".join(device_names) if device_names else args.device
        served = f"{args.config} on {device_label}"
    workload = (f"{len(trace.requests)} requests / {len(trace.tenants)} tenants "
                f"over {trace.horizon_s:.0f}s | {args.system} {served} "
                f"| late-policy {args.late_policy}")
    if args.router != "off":
        workload += f" | router {args.router}"
    if args.faults != "off":
        workload += f" | faults {args.faults} | recovery {args.recovery}"
    print(report.table(title=f"trace [{args.scheduler}]: {workload}"))
    if (device_names is not None and len(device_names) > 1) or (
        lanes is not None and len(lanes) > 1
    ):
        print(report.device_table(title="per-device utilization"))
    if args.router != "off":
        print(report.lane_class_table(title="per-lane-class rollup"))
    print(report.tenant_table(title="per-tenant SLOs"))
    print(report.slo_summary().table(title="fleet SLO summary"))
    for record in report.records:
        if record.dropped:
            print(f"dropped {record.request_id}: {record.reject_reason}")
        elif record.lost:
            print(f"lost {record.request_id}: {record.reject_reason}")
        elif not record.accepted:
            print(f"rejected {record.request_id}: {record.reject_reason}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "generate":
        try:
            trace = _trace_from_args(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        trace.save(args.out)
        _print_trace_summary(trace)
        print(f"wrote {args.out}")
        return 0
    if args.trace_command == "replay":
        try:
            trace = Trace.load(args.trace)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _serve_trace(trace, args)
    # run: generate + serve in one step
    try:
        trace = _trace_from_args(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out is not None:
        trace.save(args.out)
        print(f"wrote {args.out}")
    return _serve_trace(trace, args)


def _cmd_schedulers(args: argparse.Namespace) -> int:
    rows = [[name, desc] for name, desc in scheduler_descriptions().items()]
    print(render_table(["scheduler", "policy"], rows,
                       title="registered request schedulers"))
    rows = [[name, desc] for name, desc in placement_descriptions().items()]
    print(render_table(["placement", "policy"], rows,
                       title="registered placement policies"))
    rows = [[name, desc] for name, desc in router_descriptions().items()]
    print(render_table(["router", "policy"], rows,
                       title="registered routing policies"))
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    rows = []
    for name in list_devices():
        spec = get_device(name)
        rows.append([
            name,
            round(spec.vram_bytes / 1024**3, 1),
            round(spec.peak_flops / 1e12, 1),
            round(spec.mem_bandwidth / 1e9, 1),
            round(spec.pcie_bandwidth / 1e9, 1),
        ])
    print(render_table(
        ["device", "vram GB", "peak TFLOP/s", "mem GB/s", "pcie GB/s"],
        rows,
        title="registered devices",
    ))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    print(deployment_report(
        model_config=args.config,
        device_name=args.device,
        memory_fraction=args.memory_fraction,
        dataset_name=args.dataset,
        n=args.n,
    ))
    return 0


def _cmd_straggler(args: argparse.Namespace) -> int:
    profile = DATASET_PROFILES[args.dataset]
    rows = [
        [batch, round(idle_fraction(profile.step_model, batch) * 100, 1)]
        for batch in (1, 4, 16, 64, 256)
    ]
    print(render_table(
        ["batch size", "expected idle slot-time %"],
        rows,
        title=f"straggler idle fraction ({args.dataset} step lengths)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FastTTS reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list devices/models/datasets/algorithms")

    solve = sub.add_parser("solve", help="serve one problem on both systems")
    solve.add_argument("--dataset", default="aime24", choices=list_datasets())
    solve.add_argument("--problem", type=int, default=0)
    solve.add_argument("--config", default="1.5B+1.5B")
    solve.add_argument("--device", default="rtx4090", choices=list_devices())
    solve.add_argument("--algorithm", default="beam_search",
                       choices=list_algorithms())
    solve.add_argument("-n", type=int, default=16)
    solve.add_argument("--memory-fraction", type=float, default=0.4)
    solve.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="parallel cached baseline-vs-fasttts beam sweep"
    )
    sweep.add_argument("--dataset", default="aime24", choices=list_datasets())
    sweep.add_argument("--config", default="1.5B+1.5B")
    sweep.add_argument("--device", default="rtx4090", choices=list_devices())
    sweep.add_argument("--algorithm", default="beam_search",
                       choices=list_algorithms())
    sweep.add_argument("--n-values", type=int, nargs="+", default=[4, 8, 16],
                       help="beam budgets to sweep")
    sweep.add_argument("--problems", type=int, default=2)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes to shard cells across")
    sweep.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default: "
                            "benchmarks/benchmark_results/cache or "
                            "$REPRO_CACHE_DIR)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="run every cell even if cached")
    sweep.add_argument("--memory-fraction", type=float, default=None,
                       help="override the paper's per-config memory fraction")
    sweep.add_argument("--seed", type=int, default=0)

    fleet = sub.add_parser(
        "fleet", help="serve a multi-request stream and report fleet metrics"
    )
    fleet.add_argument("--dataset", default="amc23", choices=list_datasets())
    fleet.add_argument("--config", default="1.5B+1.5B")
    fleet.add_argument("--device", default="rtx4090", choices=list_devices())
    fleet.add_argument("--algorithm", default="beam_search",
                       choices=list_algorithms())
    fleet.add_argument("-n", type=int, default=8)
    fleet.add_argument("--requests", type=int, default=6)
    fleet.add_argument("--rate", type=float, default=0.02,
                       help="arrival rate in requests per simulated second")
    fleet.add_argument("--arrivals", choices=("poisson", "uniform"),
                       default="poisson")
    fleet.add_argument("--system", choices=("baseline", "fasttts"),
                       default="fasttts")
    fleet.add_argument("--scheduler",
                       choices=(*list_schedulers(), "all"), default="fifo",
                       help="request-scheduling policy, or 'all' to compare "
                            "every registered policy on the same workload")
    fleet.add_argument("--max-in-flight", type=int, default=None,
                       help="admission-control cap on queued+running requests")
    fleet.add_argument("--devices", default=None, metavar="NAME[,NAME...]",
                       help="comma-separated device pool (overrides --device), "
                            "e.g. rtx4090,rtx4070ti; duplicates are legal "
                            "(lane ids are index-suffixed)")
    router_help = "; ".join(
        f"{name}: {desc}" for name, desc in router_descriptions().items()
    )
    fleet.add_argument("--lane", default=None, metavar="SPEC[,SPEC...]",
                       help="comma-separated heterogeneous lane specs "
                            "MODEL@DEVICE[:DTYPE][:mem=FRACTION], e.g. "
                            "7B+1.5B@rtx4090,1.5B+1.5B@rtx4090:int8 "
                            "(mutually exclusive with --devices)")
    fleet.add_argument("--router", default="off", metavar="NAME",
                       help="difficulty-aware model router across lane "
                            "classes ('off' keeps the routerless path, "
                            f"byte-identical to the goldens). {router_help}")
    fleet.add_argument("--placement", choices=list_placements(),
                       default="first_fit",
                       help="how new requests spread across the device pool")
    fleet.add_argument("--oversubscription", choices=("swap", "deny"),
                       default="swap",
                       help="KV contention policy: charge eviction/restore "
                            "PCIe time (swap) or refuse admission (deny)")
    fleet.add_argument("--kv-sharing", choices=("off", "prefix"),
                       default="off", dest="kv_sharing",
                       help="dedup KV prefix segments shared by co-resident "
                            "sessions in each lane's ledger (off = "
                            "whole-session accounting)")
    fleet.add_argument("--batching", choices=("off", "continuous"),
                       default="off",
                       help="coalesce co-resident sessions' rounds into one "
                            "jointly-costed batch per lane iteration (off = "
                            "one session's round at a time)")
    fault_help = "; ".join(
        f"{name}: {desc}" for name, desc in fault_descriptions().items()
    )
    fleet.add_argument("--faults", default="off", metavar="SPEC",
                       help="fault-injection spec 'kind:key=value,...' "
                            "(';'-separated clauses; 'off' disables). "
                            "Each clause fires once (at=) or as a Poisson "
                            f"process (rate=). Kinds — {fault_help}")
    fleet.add_argument("--recovery", choices=("failover", "retry", "shed"),
                       default="failover",
                       help="what a lane crash does to its in-flight "
                            "requests: re-place on a healthy lane "
                            "(failover), re-queue with exponential backoff "
                            "(retry), or fail fast (shed)")
    fleet.add_argument("--retry-budget", type=int, default=3,
                       dest="retry_budget",
                       help="max re-queues per request under --recovery "
                            "retry before it is declared lost")
    fleet.add_argument("--memory-fraction", type=float, default=0.4)
    fleet.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser(
        "trace", help="open-loop trace-driven serving with SLO metrics"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    arrival_help = "; ".join(
        f"{name}: {desc}" for name, desc in arrival_descriptions().items()
    )

    def add_workload_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tenant", action="append", metavar="SPEC",
                       help="tenant spec 'name:key=value,...' (repeatable); "
                            "keys: arrival, rate, peak_rate, period, "
                            "burst_rate, on_s, off_s, dataset, difficulty, "
                            "algorithm, n, deadline, ttft, slo, requests. "
                            f"Arrival processes — {arrival_help}")
        p.add_argument("--requests", type=int, default=8,
                       help="requests per tenant unless the spec overrides")
        p.add_argument("--base-dataset", default=None, choices=list_datasets(),
                       help="dataset whose step-length dynamics the serving "
                            "fleet uses (default: first tenant's dataset)")
        p.add_argument("--seed", type=int, default=0)

    def add_serve_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", default="1.5B+1.5B")
        p.add_argument("--device", default="rtx4090", choices=list_devices())
        p.add_argument("--devices", default=None, metavar="NAME[,NAME...]",
                       help="comma-separated device pool (overrides --device); "
                            "duplicates are legal (lane ids index-suffixed)")
        p.add_argument("--lane", default=None, metavar="SPEC[,SPEC...]",
                       help="comma-separated heterogeneous lane specs "
                            "MODEL@DEVICE[:DTYPE][:mem=FRACTION] "
                            "(mutually exclusive with --devices)")
        p.add_argument("--router", default="off", metavar="NAME",
                       help="difficulty-aware model router across lane "
                            "classes; one of off, "
                            + ", ".join(list_routers()))
        p.add_argument("--system", choices=("baseline", "fasttts"),
                       default="fasttts")
        p.add_argument("--scheduler", choices=list_schedulers(),
                       default="fifo")
        p.add_argument("--placement", choices=list_placements(),
                       default="first_fit")
        p.add_argument("--oversubscription", choices=("swap", "deny"),
                       default="swap")
        p.add_argument("--kv-sharing", choices=("off", "prefix"),
                       default="off", dest="kv_sharing")
        p.add_argument("--batching", choices=("off", "continuous"),
                       default="off")
        p.add_argument("--late-policy", choices=("serve_late", "drop"),
                       default="serve_late", dest="late_policy",
                       help="what happens when a queued request's deadline "
                            "expires before it starts: serve it anyway "
                            "(serve_late) or shed it (drop)")
        p.add_argument("--max-in-flight", type=int, default=None,
                       help="admission-control cap on queued+running requests")
        p.add_argument("--faults", default="off", metavar="SPEC",
                       help="fault-injection spec 'kind:key=value,...' "
                            "(';'-separated clauses; 'off' disables)")
        p.add_argument("--recovery", choices=("failover", "retry", "shed"),
                       default="failover",
                       help="lane-crash recovery policy for in-flight "
                            "requests")
        p.add_argument("--retry-budget", type=int, default=3,
                       dest="retry_budget",
                       help="max re-queues per request under --recovery "
                            "retry before it is declared lost")
        p.add_argument("--memory-fraction", type=float, default=0.4)

    trace_generate = trace_sub.add_parser(
        "generate", help="synthesize a multi-tenant trace and write JSONL"
    )
    add_workload_flags(trace_generate)
    trace_generate.add_argument("--out", required=True, metavar="PATH",
                                help="JSONL trace file to write")

    trace_run = trace_sub.add_parser(
        "run", help="generate a trace and serve it open-loop in one step"
    )
    add_workload_flags(trace_run)
    add_serve_flags(trace_run)
    trace_run.add_argument("--out", default=None, metavar="PATH",
                           help="also save the generated trace as JSONL")

    trace_replay = trace_sub.add_parser(
        "replay", help="serve a previously generated JSONL trace"
    )
    trace_replay.add_argument("--trace", required=True, metavar="PATH",
                              help="JSONL trace file to replay")
    add_serve_flags(trace_replay)

    sub.add_parser("schedulers",
                   help="list request-scheduling and placement policies")

    sub.add_parser("devices", help="list registered device specs")

    report = sub.add_parser("report", help="deployment feasibility report")
    report.add_argument("--config", default="1.5B+1.5B")
    report.add_argument("--device", default="rtx4090", choices=list_devices())
    report.add_argument("--dataset", default="aime24", choices=list_datasets())
    report.add_argument("-n", type=int, default=64)
    report.add_argument("--memory-fraction", type=float, default=0.9)

    straggler = sub.add_parser("straggler", help="idle-fraction analysis")
    straggler.add_argument("--dataset", default="aime24", choices=list_datasets())

    return parser


_HANDLERS = {
    "info": _cmd_info,
    "solve": _cmd_solve,
    "sweep": _cmd_sweep,
    "fleet": _cmd_fleet,
    "trace": _cmd_trace,
    "schedulers": _cmd_schedulers,
    "devices": _cmd_devices,
    "report": _cmd_report,
    "straggler": _cmd_straggler,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
