"""Structured serving traces: one event per scheduling decision.

The paper's artifact emits JSONL logs per run (Appendix B.2). This module
provides the equivalent: a :class:`SolveTrace` collects round-level events
(generation rounds with wave/speculation stats, verification rounds with
batch/cache stats, offload swaps), and can dump them as JSONL for offline
analysis or assert-friendly inspection in tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["TraceEvent", "SolveTrace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped scheduling event."""

    time: float
    kind: str
    round_idx: int
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"time": round(self.time, 6), "kind": self.kind,
                  "round": self.round_idx, **self.payload}
        return json.dumps(record, sort_keys=True)


class SolveTrace:
    """Append-only event log for one problem's solve."""

    def __init__(self, problem_id: str) -> None:
        self._problem_id = problem_id
        self._events: list[TraceEvent] = []

    @property
    def problem_id(self) -> str:
        return self._problem_id

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def record(self, time: float, kind: str, round_idx: int, **payload: Any) -> None:
        """Append one event (payload values must be JSON-compatible)."""
        self._events.append(
            TraceEvent(time=time, kind=kind, round_idx=round_idx, payload=payload)
        )

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self._events if e.kind == kind]

    def rounds(self) -> int:
        """Number of generation rounds recorded."""
        return len(self.of_kind("generation_round"))

    def to_jsonl(self) -> str:
        """All events as a JSONL string."""
        return "\n".join(e.to_json() for e in self._events)

    def dump(self, path: Path | str) -> Path:
        """Write the trace to ``<path>`` as JSONL; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps({"problem_id": self._problem_id, "kind": "header",
                             "events": len(self._events)})
        target.write_text(header + "\n" + self.to_jsonl() + "\n")
        return target
