"""Execution telemetry: GPU-utilization spans and per-phase time accounting.

Stands in for the paper's Nsight Systems traces (Fig. 4, Fig. 17 left): the
simulator knows exactly how many batch slots are busy at every instant, so
utilization is recorded as piecewise-constant spans and can be resampled
onto any time grid for plotting or assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["Phase", "UtilSpan", "UtilizationTracker", "PhaseTimer", "TokenCounters"]


class Phase(str, Enum):
    GENERATION = "generation"
    VERIFICATION = "verification"
    SWAP = "swap"


@dataclass(frozen=True, slots=True)
class UtilSpan:
    """One interval of constant batch occupancy."""

    t_start: float
    t_end: float
    busy_slots: int
    capacity_slots: int
    phase: Phase
    speculative_slots: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def utilization(self) -> float:
        if self.capacity_slots == 0:
            return 0.0
        return self.busy_slots / self.capacity_slots


class UtilizationTracker:
    """Collects occupancy spans and answers aggregate/trace queries."""

    def __init__(self) -> None:
        self._spans: list[UtilSpan] = []

    @property
    def spans(self) -> list[UtilSpan]:
        return list(self._spans)

    def record(self, span: UtilSpan) -> None:
        if span.t_end < span.t_start:
            raise ValueError("span must have t_end >= t_start")
        if span.busy_slots < 0 or span.busy_slots > span.capacity_slots:
            raise ValueError("busy_slots must be within [0, capacity_slots]")
        if span.duration > 0:
            self._spans.append(span)

    def mean_utilization(self, phase: Phase | None = None) -> float:
        """Time-weighted mean occupancy, optionally for one phase."""
        spans = [s for s in self._spans if phase is None or s.phase is phase]
        total = sum(s.duration for s in spans)
        if total == 0:
            return 0.0
        return sum(s.utilization * s.duration for s in spans) / total

    def sample_trace(
        self, t_start: float, t_end: float, n_points: int, phase: Phase | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resample occupancy onto a uniform grid (for Fig. 4 / Fig. 17)."""
        if n_points <= 1:
            raise ValueError("n_points must be > 1")
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        grid = np.linspace(t_start, t_end, n_points)
        values = np.zeros(n_points)
        spans = [s for s in self._spans if phase is None or s.phase is phase]
        for span in spans:
            mask = (grid >= span.t_start) & (grid < span.t_end)
            values[mask] = span.utilization
        return grid, values

    def clear(self) -> None:
        self._spans.clear()


@dataclass
class PhaseTimer:
    """Accumulated simulated seconds per execution phase."""

    totals: dict[Phase, float] = field(default_factory=dict)

    def add(self, phase: Phase, dt: float) -> None:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self.totals[phase] = self.totals.get(phase, 0.0) + dt

    def get(self, phase: Phase) -> float:
        return self.totals.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def clear(self) -> None:
        self.totals.clear()


@dataclass
class TokenCounters:
    """Where generated tokens ended up — feeds the goodput analysis.

    ``committed`` tokens are part of a beam's accepted reasoning;
    ``speculative_used`` were generated speculatively and later adopted as a
    head start; ``speculative_wasted`` were discarded at round end.
    """

    committed: int = 0
    speculative_used: int = 0
    speculative_wasted: int = 0
    recomputed: int = 0

    @property
    def total_generated(self) -> int:
        return self.committed + self.speculative_used + self.speculative_wasted

    @property
    def speculation_efficiency(self) -> float:
        spec = self.speculative_used + self.speculative_wasted
        if spec == 0:
            return 0.0
        return self.speculative_used / spec
