"""Serving engine substrate: clock, telemetry, jobs, and model workers."""

from repro.engine.clock import SimClock
from repro.engine.jobs import GenJob, GenOutcome, RoundStats, SpecHeadStart, VerifyJob
from repro.engine.telemetry import (
    Phase,
    PhaseTimer,
    TokenCounters,
    UtilizationTracker,
    UtilSpan,
)
from repro.engine.worker import GeneratorWorker, ModelWorker, VerifierWorker

__all__ = [
    "SimClock",
    "Phase",
    "PhaseTimer",
    "TokenCounters",
    "UtilizationTracker",
    "UtilSpan",
    "GenJob",
    "GenOutcome",
    "VerifyJob",
    "SpecHeadStart",
    "RoundStats",
    "ModelWorker",
    "GeneratorWorker",
    "VerifierWorker",
]
