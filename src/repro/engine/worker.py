"""Model workers: the mechanical layer beneath the serving policies.

A worker owns one model's roofline cost model and one paged KV cache, and
exposes primitive, fully-accounted operations:

* ``materialize_path`` — make a path's KV resident, converting any cache
  miss into prefill (recompute) time on the shared clock;
* ``decode_span`` — advance a decode batch by N lockstep token steps,
  charging roofline time and recording a utilization span;
* ``prefill_batch`` — run one batched prefill launch (the verifier's mode).

FastTTS operates the generator and verifier "in separate worker processes"
(paper Sec. 5) on one GPU; here both workers share a single
:class:`~repro.engine.clock.SimClock`, which serializes them exactly like
time-sharing one device.
"""

from __future__ import annotations

from repro.engine.clock import SimClock
from repro.engine.telemetry import Phase, PhaseTimer, UtilizationTracker, UtilSpan
from repro.hardware.roofline import Roofline
from repro.kvcache.cache import MaterializeOutcome, PagedKVCache
from repro.models.costs import decode_step_cost, prefill_cost
from repro.models.spec import ModelSpec

__all__ = ["ModelWorker", "GeneratorWorker", "VerifierWorker"]


class ModelWorker:
    """Shared mechanics for generator and verifier workers."""

    def __init__(
        self,
        model: ModelSpec,
        roofline: Roofline,
        kv_cache: PagedKVCache,
        clock: SimClock,
        phase_timer: PhaseTimer,
        utilization: UtilizationTracker | None = None,
    ) -> None:
        self._model = model
        self._roofline = roofline
        self._cache = kv_cache
        self._clock = clock
        self._timer = phase_timer
        self._util = utilization
        self._batch_share = 1

    @property
    def batch_share(self) -> int:
        """How many co-batched sessions share this worker's weight reads.

        The fleet's :class:`~repro.core.batcher.RoundBatcher` sets this
        for the duration of one jointly-costed round: every decode step
        and prefill launch then bills this session only ``1/batch_share``
        of the weight traffic (the batch reads the weights once for all
        members). At the default of 1 every launch goes through the plain
        roofline, byte-identical to unbatched serving.
        """
        return self._batch_share

    @batch_share.setter
    def batch_share(self, value: int) -> None:
        if not isinstance(value, int) or value < 1:
            raise ValueError("batch_share must be an integer >= 1")
        self._batch_share = value

    def _launch_latency(self, flops: float, num_bytes: float) -> float:
        """Roofline latency of one launch, weight-amortized when co-batched."""
        if self._batch_share > 1:
            return self._roofline.batched_latency(
                flops, num_bytes, self._model.weight_bytes, self._batch_share
            )
        return self._roofline.latency(flops, num_bytes)

    @property
    def model(self) -> ModelSpec:
        return self._model

    @property
    def cache(self) -> PagedKVCache:
        return self._cache

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def roofline(self) -> Roofline:
        return self._roofline

    def materialize_path(self, leaf_segment: int, phase: Phase) -> MaterializeOutcome:
        """Pin a path resident, charging prefill time for recomputed tokens.

        The recompute charge is the concrete cost of an earlier eviction —
        the quantity Dynamic Prefix-Aware Scheduling exists to minimize.
        """
        outcome = self._cache.materialize(leaf_segment, now=self._clock.now, pin=True)
        if outcome.recomputed_tokens > 0:
            cost = prefill_cost(self._model, 1, outcome.recomputed_tokens,
                                cached_prefix_len=outcome.hit_tokens)
            dt = self._roofline.latency(cost.flops, cost.bytes)
            self._clock.advance(dt)
            self._timer.add(phase, dt)
        return outcome

    def release_path(self, leaf_segment: int) -> None:
        """Unpin a path after its round completes (keeps KV cached)."""
        self._cache.unpin_path(leaf_segment)

    def prefill_batch(
        self,
        token_counts: list[int],
        cached_prefix_lens: list[int],
        phase: Phase = Phase.VERIFICATION,
        capacity_slots: int | None = None,
    ) -> float:
        """Run one batched prefill launch over per-job new-token counts.

        The batch shares a single weight-traffic charge — the benefit of
        batching prefill — while FLOPs and KV traffic accumulate per job.
        Returns elapsed seconds (0.0 when there is nothing to prefill).
        """
        if len(token_counts) != len(cached_prefix_lens):
            raise ValueError("token_counts and cached_prefix_lens must align")
        live = [(t, c) for t, c in zip(token_counts, cached_prefix_lens) if t > 0]
        if not live:
            return 0.0
        flops = 0.0
        num_bytes = float(self._model.weight_bytes)
        for new_tokens, cached in live:
            cost = prefill_cost(self._model, 1, new_tokens, cached_prefix_len=cached)
            flops += cost.flops
            num_bytes += cost.bytes - self._model.weight_bytes
        dt = self._launch_latency(flops, num_bytes)
        start = self._clock.now
        self._clock.advance(dt)
        self._timer.add(phase, dt)
        if self._util is not None:
            capacity = capacity_slots if capacity_slots is not None else len(live)
            self._util.record(
                UtilSpan(
                    t_start=start,
                    t_end=self._clock.now,
                    busy_slots=min(len(live), max(capacity, 1)),
                    capacity_slots=max(capacity, 1),
                    phase=phase,
                )
            )
        return dt


class GeneratorWorker(ModelWorker):
    """Decode-oriented worker for the policy loops in :mod:`repro.core`."""

    def decode_span(
        self,
        n_steps: int,
        busy_slots: int,
        capacity_slots: int,
        avg_cache_len: float,
        speculative_slots: int = 0,
    ) -> float:
        """Advance ``busy_slots`` sequences by ``n_steps`` lockstep tokens.

        Returns the elapsed simulated seconds. One utilization span is
        recorded; the straggler pathology appears as a series of spans with
        decaying ``busy_slots`` at constant per-step cost.
        """
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        if busy_slots <= 0:
            raise ValueError("busy_slots must be positive")
        if busy_slots > capacity_slots:
            raise ValueError("busy_slots cannot exceed capacity_slots")
        cost = decode_step_cost(self._model, busy_slots, avg_cache_len)
        dt = n_steps * self._launch_latency(cost.flops, cost.bytes)
        start = self._clock.now
        self._clock.advance(dt)
        self._timer.add(Phase.GENERATION, dt)
        if self._util is not None:
            self._util.record(
                UtilSpan(
                    t_start=start,
                    t_end=self._clock.now,
                    busy_slots=busy_slots,
                    capacity_slots=capacity_slots,
                    phase=Phase.GENERATION,
                    speculative_slots=speculative_slots,
                )
            )
        return dt


class VerifierWorker(ModelWorker):
    """Prefill-oriented worker: scores paths in batched forward passes.

    Inherits :meth:`ModelWorker.prefill_batch`; verification is its only
    mode, so the class exists to make worker roles explicit at call sites.
    """
