"""Simulated wall clock.

All latency in the reproduction is virtual: workers advance this clock by
roofline-estimated durations. The clock is strictly monotonic; rewinding is
a bug and raises immediately.

Sessions and fleets use *different* clocks: each
:class:`~repro.core.session.SolveSession` owns a private clock measuring
its own service time, while every device lane of a
:class:`~repro.core.pool.DevicePool` owns a shared wall clock the requests
placed on it queue against (all lanes share the same time origin, so lane
times are directly comparable). :class:`ClockBinding` performs the handoff
between the two — it anchors a session clock at the lane time where the
scheduler (re)started the session, so stepping the session maps its
service-time progress back onto the lane timeline exactly (anchor +
session time, one addition, no drift from re-accumulating round deltas).
Re-binding the same session onto a *different* lane clock is how migration
hands a session over between devices.
"""

from __future__ import annotations

__all__ = ["SimClock", "ClockBinding"]

# Absolute slack (seconds) tolerated when two independently-derived float
# timelines are reconciled; anything beyond this is a real rewind bug.
_REWIND_TOLERANCE = 1e-9


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0, label: str | None = None) -> None:
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)
        self.label = label  # debug aid: which lane/session owns this timeline

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, target: float) -> float:
        """Move time forward to an absolute ``target`` and return it.

        Unlike :meth:`advance`, this *sets* the time rather than adding a
        delta, so a caller reconstructing the timeline as ``anchor +
        elapsed`` lands on exactly that float. Targets a hair in the past
        (within float-reconciliation tolerance) are clamped to ``now``;
        anything earlier raises.
        """
        if target < self._now - _REWIND_TOLERANCE:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {target}"
            )
        if target > self._now:
            self._now = float(target)
        return self._now

    def reset(self, to: float = 0.0) -> None:
        """Restart the clock (between independent problems)."""
        if to < 0:
            raise ValueError("reset time must be non-negative")
        self._now = float(to)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f", label={self.label!r}" if self.label else ""
        return f"SimClock(now={self._now:.6f}{tag})"


class ClockBinding:
    """Maps one session-local clock onto a shared fleet clock.

    A scheduler that interleaves sessions re-binds whenever it switches
    which session occupies the device: ``rebind`` records the fleet time
    at which the session resumed (minus service it already accumulated),
    and ``sync`` pushes the fleet clock to ``anchor + local.now`` after a
    step. Computing the absolute target (instead of accumulating per-round
    deltas) keeps a run-to-completion schedule bit-identical to driving
    the session without a fleet at all.
    """

    def __init__(self, local: SimClock) -> None:
        self._local = local
        self._anchor = 0.0

    @property
    def anchor(self) -> float:
        """Fleet time corresponding to the session clock's zero."""
        return self._anchor

    def rebind(self, shared: SimClock) -> None:
        """Anchor the session's elapsed service at the current fleet time."""
        self._anchor = shared.now - self._local.now

    def sync(self, shared: SimClock) -> float:
        """Advance the fleet clock to this session's current position."""
        return shared.advance_to(self._anchor + self._local.now)
