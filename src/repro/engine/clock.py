"""Simulated wall clock.

All latency in the reproduction is virtual: workers advance this clock by
roofline-estimated durations. The clock is strictly monotonic; rewinding is
a bug and raises immediately.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def reset(self, to: float = 0.0) -> None:
        """Restart the clock (between independent problems)."""
        if to < 0:
            raise ValueError("reset time must be non-negative")
        self._now = float(to)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f})"
