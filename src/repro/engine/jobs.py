"""Job records exchanged between the server loop and the workers.

A *generation job* asks the generator worker to extend one beam by its next
thinking step; a *verification job* asks the verifier worker to score a
path after its newest step. Both carry the KV-segment lineage needed for
cache residency decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GenJob", "GenOutcome", "VerifyJob", "SpecHeadStart", "RoundStats"]


@dataclass(slots=True)
class GenJob:
    """Extend one beam by one thinking step.

    Attributes
    ----------
    lineage:
        The beam's full lineage (also its RNG identity).
    path_segments:
        Segment ids root->leaf for everything already generated (prompt and
        prior steps). These must be resident before decoding.
    new_segment:
        Segment id for the step being generated.
    step_tokens:
        Full planned token count of this step.
    head_start:
        Tokens already generated speculatively in the previous round; only
        ``step_tokens - head_start`` remain to decode.
    prev_score:
        The beam's verifier score from the previous step, the zero-overhead
        speculation priority proxy (paper Sec. 4.1.1). ``None`` on the
        first round.
    """

    lineage: tuple[int, ...]
    path_segments: tuple[int, ...]
    path_segment_tokens: tuple[int, ...]
    new_segment: int
    step_tokens: int
    head_start: int = 0
    prev_score: float | None = None

    def __post_init__(self) -> None:
        if self.step_tokens <= 0:
            raise ValueError("step_tokens must be positive")
        if not 0 <= self.head_start <= self.step_tokens:
            raise ValueError("head_start must be within [0, step_tokens]")
        if len(self.path_segments) != len(self.path_segment_tokens):
            raise ValueError("path_segments and path_segment_tokens must align")
        if not self.path_segments:
            raise ValueError("a job always has at least the prompt segment")

    @property
    def remaining_tokens(self) -> int:
        return self.step_tokens - self.head_start


@dataclass(slots=True)
class SpecHeadStart:
    """Speculative tokens pre-generated for one prospective child beam."""

    parent_lineage: tuple[int, ...]
    child_index: int
    tokens: int
    segment_id: int


@dataclass(slots=True)
class GenOutcome:
    """Result of one beam's generation step."""

    lineage: tuple[int, ...]
    finish_time: float
    tokens_generated: int


@dataclass(slots=True)
class VerifyJob:
    """Score one path after its newest step.

    ``lookahead_segment``/``lookahead_tokens`` carry a fully speculated next
    step to be scored in the same request (LookAhead Verification,
    Sec. 4.1.3); ``lookahead_child`` names the prospective child lineage the
    pre-computed score belongs to.
    """

    lineage: tuple[int, ...]
    step_idx: int
    path_segments: tuple[int, ...]
    path_segment_tokens: tuple[int, ...]
    new_segment: int
    new_tokens: int
    mean_soundness: float
    lookahead_child: tuple[int, ...] | None = None
    lookahead_segment: int | None = None
    lookahead_tokens: int = 0
    lookahead_soundness: float = 0.0

    def __post_init__(self) -> None:
        if self.new_tokens < 0:
            raise ValueError("new_tokens must be non-negative")
        if self.lookahead_tokens < 0:
            raise ValueError("lookahead_tokens must be non-negative")
        if len(self.path_segments) != len(self.path_segment_tokens):
            raise ValueError("path_segments and path_segment_tokens must align")
        if not self.path_segments:
            raise ValueError("a job always has at least the prompt segment")


@dataclass(slots=True)
class RoundStats:
    """Aggregate accounting for one generation or verification round."""

    round_time: float = 0.0
    recomputed_tokens: int = 0
    decoded_tokens: int = 0
    speculative_tokens: int = 0
    prefilled_tokens: int = 0
    cache_hit_tokens: int = 0
    evicted_segments: int = 0
    head_starts: list[SpecHeadStart] = field(default_factory=list)
    #: Clock time (on the round's worker clock) at which the round's first
    #: decoded token materialized; None when the round decoded nothing.
    #: The fleet's TTFT metric reads this off a session's first round.
    first_token_time: float | None = None
