"""KV cache event accounting.

Counters and an optional event trace feed the memory-behaviour figures
(Fig. 5 beams-in-memory, Fig. 18 KV growth by scheduling order) and the
eviction/recompute costs charged by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["CacheEventKind", "CacheEvent", "CacheStats"]


class CacheEventKind(str, Enum):
    ALLOCATE = "allocate"
    HIT = "hit"
    EVICT = "evict"
    RECOMPUTE = "recompute"
    RELEASE = "release"


@dataclass(frozen=True, slots=True)
class CacheEvent:
    """One cache transition, timestamped on the simulation clock."""

    time: float
    kind: CacheEventKind
    segment_id: int
    tokens: int


@dataclass
class CacheStats:
    """Running totals plus an optional bounded trace."""

    hit_tokens: int = 0
    recomputed_tokens: int = 0
    evicted_tokens: int = 0
    evicted_segments: int = 0
    allocated_tokens: int = 0
    trace_capacity: int = 0
    trace: list[CacheEvent] = field(default_factory=list)

    def record(self, event: CacheEvent) -> None:
        if event.kind is CacheEventKind.HIT:
            self.hit_tokens += event.tokens
        elif event.kind is CacheEventKind.RECOMPUTE:
            self.recomputed_tokens += event.tokens
        elif event.kind is CacheEventKind.EVICT:
            self.evicted_tokens += event.tokens
            self.evicted_segments += 1
        elif event.kind is CacheEventKind.ALLOCATE:
            self.allocated_tokens += event.tokens
        if self.trace_capacity and len(self.trace) < self.trace_capacity:
            self.trace.append(event)

    @property
    def hit_rate(self) -> float:
        """Token-weighted prefix hit rate over all materializations."""
        touched = self.hit_tokens + self.recomputed_tokens
        if touched == 0:
            return 0.0
        return self.hit_tokens / touched
