"""Radix (prefix) tree over reasoning-path segments.

The paper models every scheduled batch as a radix tree where *each node is
one beam* (one thinking step's tokens) and eviction cost between batches is
``Nodes(T_i) - P(T_i, T_{i+1})`` shared-prefix nodes (Sec. 4.2). This tree
is that structure: nodes are step segments identified by a stable id,
parent links encode the reasoning tree, and shared-prefix queries answer
``P(c_a, c_b)`` in nodes or tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RadixNode", "RadixTree"]


@dataclass(slots=True)
class RadixNode:
    """One segment (thinking step) in the prefix tree."""

    node_id: int
    parent_id: int | None
    token_len: int
    depth: int
    children: set[int] = field(default_factory=set)


class RadixTree:
    """Forest of segment nodes with O(depth) prefix queries.

    Node ids must be globally unique (the library derives them from a
    stable hash of ``(problem, lineage, step)``).
    """

    def __init__(self) -> None:
        self._nodes: dict[int, RadixNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def add_node(self, node_id: int, parent_id: int | None, token_len: int) -> RadixNode:
        """Insert a segment under ``parent_id`` (``None`` for a root).

        Re-inserting an existing id with identical attributes is a no-op,
        which lets callers idempotently register shared prefixes.
        """
        if token_len < 0:
            raise ValueError("token_len must be non-negative")
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing.parent_id != parent_id or existing.token_len != token_len:
                raise ValueError(f"node {node_id} already exists with different attributes")
            return existing
        if parent_id is None:
            depth = 0
        else:
            parent = self._require(parent_id)
            depth = parent.depth + 1
            parent.children.add(node_id)
        node = RadixNode(node_id=node_id, parent_id=parent_id, token_len=token_len, depth=depth)
        self._nodes[node_id] = node
        return node

    def ensure_node(
        self, node_id: int, parent_id: int | None, token_len: int
    ) -> RadixNode:
        """Insert the segment, or update its length if already present.

        Unlike :meth:`add_node`, a differing ``token_len`` is not an
        error: callers that track *growing* segments (the shared KV
        ledger re-registers a lane's resident lineages every round, and
        an actively decoding tail lengthens between reports) route
        through here. A differing ``parent_id`` is still structural
        corruption and raises.
        """
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing.parent_id != parent_id:
                raise ValueError(
                    f"node {node_id} already exists under parent "
                    f"{existing.parent_id}, not {parent_id}"
                )
            self.set_token_len(node_id, token_len)
            return existing
        return self.add_node(node_id, parent_id, token_len)

    def get(self, node_id: int) -> RadixNode:
        """Return the node or raise ``KeyError``."""
        return self._require(node_id)

    def set_token_len(self, node_id: int, token_len: int) -> None:
        """Update a growing segment's length (the active decode tail)."""
        if token_len < 0:
            raise ValueError("token_len must be non-negative")
        self._require(node_id).token_len = token_len

    def path(self, node_id: int) -> list[int]:
        """Node ids from the root down to ``node_id`` inclusive."""
        chain: list[int] = []
        current: int | None = node_id
        while current is not None:
            node = self._require(current)
            chain.append(current)
            current = node.parent_id
        chain.reverse()
        return chain

    def path_tokens(self, node_id: int) -> int:
        """Total tokens along the root->node path."""
        return sum(self._nodes[nid].token_len for nid in self.path(node_id))

    def shared_prefix_nodes(self, a: int, b: int) -> int:
        """``P(a, b)`` in nodes: length of the common root prefix."""
        return len(self._shared_prefix(a, b))

    def shared_prefix_tokens(self, a: int, b: int) -> int:
        """``P(a, b)`` in tokens: token mass of the common root prefix."""
        return sum(self._nodes[nid].token_len for nid in self._shared_prefix(a, b))

    def lowest_common_ancestor(self, a: int, b: int) -> int | None:
        """Deepest shared node, or ``None`` if the paths share no root."""
        shared = self._shared_prefix(a, b)
        return shared[-1] if shared else None

    def leaves(self) -> list[int]:
        """All nodes without children, sorted for determinism."""
        return sorted(nid for nid, node in self._nodes.items() if not node.children)

    def remove_leaf(self, node_id: int) -> None:
        """Remove a childless node (used when pruned beams are dropped)."""
        node = self._require(node_id)
        if node.children:
            raise ValueError(f"node {node_id} has children and cannot be removed")
        if node.parent_id is not None:
            self._nodes[node.parent_id].children.discard(node_id)
        del self._nodes[node_id]

    def _shared_prefix(self, a: int, b: int) -> list[int]:
        path_a = self.path(a)
        path_b = self.path(b)
        shared: list[int] = []
        for node_a, node_b in zip(path_a, path_b):
            if node_a != node_b:
                break
            shared.append(node_a)
        return shared

    def _require(self, node_id: int) -> RadixNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown radix node {node_id}") from None
