"""Fixed-size KV block pool (the PagedAttention memory model).

vLLM divides KV memory into fixed-size blocks (16 tokens by default) so
sequences can grow without contiguous allocation and shared prefixes can be
reference-counted at block granularity. This pool reproduces the accounting
side of that design: strict capacity, explicit allocate/free, and internal
fragmentation (a 17-token segment costs 2 blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError

__all__ = ["BlockPool", "blocks_for_tokens", "DEFAULT_BLOCK_TOKENS"]

DEFAULT_BLOCK_TOKENS = 16


def blocks_for_tokens(n_tokens: int, block_tokens: int = DEFAULT_BLOCK_TOKENS) -> int:
    """Blocks needed to hold ``n_tokens`` (ceiling division)."""
    if n_tokens < 0:
        raise ValueError("n_tokens must be non-negative")
    if block_tokens <= 0:
        raise ValueError("block_tokens must be positive")
    return -(-n_tokens // block_tokens)


@dataclass
class BlockPool:
    """Counting allocator over a fixed number of KV blocks.

    The simulator does not need per-block identity — only exact occupancy —
    so the pool tracks counts. Over-freeing or over-allocating raises
    immediately; both indicate an accounting bug in the caller.
    """

    total_blocks: int
    block_tokens: int = DEFAULT_BLOCK_TOKENS
    _allocated: int = 0

    def __post_init__(self) -> None:
        if self.total_blocks < 0:
            raise ValueError("total_blocks must be non-negative")
        if self.block_tokens <= 0:
            raise ValueError("block_tokens must be positive")

    @classmethod
    def from_bytes(
        cls,
        capacity_bytes: int,
        kv_bytes_per_token: int,
        block_tokens: int = DEFAULT_BLOCK_TOKENS,
    ) -> "BlockPool":
        """Size a pool from a byte budget and a model's per-token KV cost."""
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if kv_bytes_per_token <= 0:
            raise ValueError("kv_bytes_per_token must be positive")
        tokens = capacity_bytes // kv_bytes_per_token
        return cls(total_blocks=tokens // block_tokens, block_tokens=block_tokens)

    @property
    def allocated_blocks(self) -> int:
        return self._allocated

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - self._allocated

    @property
    def capacity_tokens(self) -> int:
        """Total tokens the pool can hold (ignoring fragmentation)."""
        return self.total_blocks * self.block_tokens

    def can_allocate(self, n_blocks: int) -> bool:
        return 0 <= n_blocks <= self.free_blocks

    def allocate(self, n_blocks: int) -> None:
        """Take ``n_blocks`` from the pool or raise :class:`CapacityError`."""
        if n_blocks < 0:
            raise ValueError("n_blocks must be non-negative")
        if n_blocks > self.free_blocks:
            raise CapacityError(
                f"requested {n_blocks} blocks but only {self.free_blocks} free "
                f"of {self.total_blocks}"
            )
        self._allocated += n_blocks

    def free(self, n_blocks: int) -> None:
        """Return ``n_blocks`` to the pool."""
        if n_blocks < 0:
            raise ValueError("n_blocks must be non-negative")
        if n_blocks > self._allocated:
            raise CapacityError(
                f"freeing {n_blocks} blocks but only {self._allocated} allocated"
            )
        self._allocated -= n_blocks
