"""Paged KV cache substrate: block pool, radix prefix tree, cache, events."""

from repro.kvcache.block import DEFAULT_BLOCK_TOKENS, BlockPool, blocks_for_tokens
from repro.kvcache.cache import MaterializeOutcome, PagedKVCache, SegmentState
from repro.kvcache.events import CacheEvent, CacheEventKind, CacheStats
from repro.kvcache.radix import RadixNode, RadixTree

__all__ = [
    "BlockPool",
    "blocks_for_tokens",
    "DEFAULT_BLOCK_TOKENS",
    "RadixTree",
    "RadixNode",
    "PagedKVCache",
    "SegmentState",
    "MaterializeOutcome",
    "CacheStats",
    "CacheEvent",
    "CacheEventKind",
]
