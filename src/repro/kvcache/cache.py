"""Paged KV cache with prefix sharing, pinning and LRU eviction.

This is the memory substrate both workers (generator and verifier) run on.
It combines three structures:

* a :class:`~repro.kvcache.block.BlockPool` enforcing the byte budget the
  asymmetric allocator assigned to this worker;
* a :class:`~repro.kvcache.radix.RadixTree` recording the reasoning tree,
  where each node is one thinking-step *segment* shared by every beam that
  descends from it (copy-free forking, as in vLLM prefix caching);
* per-segment state: residency, pin count, held blocks, LRU stamp.

Key invariants (property-tested):

* a segment is resident only if its parent is resident — a KV suffix
  without its prefix is useless to attention;
* pinned segments (referenced by the currently executing batch) are never
  evicted; eviction only consumes the unpinned leaf-most frontier in LRU
  order;
* block accounting is exact: the pool's allocated count always equals the
  sum of blocks held by resident segments.

Eviction forces recomputation later: :meth:`PagedKVCache.materialize`
reports how many tokens of a path were cache hits and how many must be
re-prefilled, which the engine converts to roofline time. Minimizing that
recompute term is exactly the objective of Dynamic Prefix-Aware Scheduling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import CapacityError
from repro.kvcache.block import DEFAULT_BLOCK_TOKENS, BlockPool, blocks_for_tokens
from repro.kvcache.events import CacheEvent, CacheEventKind, CacheStats
from repro.kvcache.radix import RadixTree

__all__ = ["PagedKVCache", "MaterializeOutcome", "SegmentState"]


@dataclass(slots=True)
class SegmentState:
    """Dynamic cache state of one registered segment."""

    segment_id: int
    token_len: int
    resident: bool = False
    pin_count: int = 0
    blocks_held: int = 0
    last_access: int = 0


@dataclass(frozen=True, slots=True)
class MaterializeOutcome:
    """Result of making one path resident."""

    hit_tokens: int
    recomputed_tokens: int
    evicted_segments: int

    @property
    def touched_tokens(self) -> int:
        return self.hit_tokens + self.recomputed_tokens


class PagedKVCache:
    """Prefix-shared paged KV cache for one model worker."""

    def __init__(
        self,
        capacity_bytes: int,
        kv_bytes_per_token: int,
        block_tokens: int = DEFAULT_BLOCK_TOKENS,
        trace_capacity: int = 0,
    ) -> None:
        self._pool = BlockPool.from_bytes(capacity_bytes, kv_bytes_per_token, block_tokens)
        self._kv_bytes_per_token = kv_bytes_per_token
        self._tree = RadixTree()
        self._segments: dict[int, SegmentState] = {}
        self._resident_children: dict[int, set[int]] = {}
        self._access_clock = 0
        # Incremental eviction bookkeeping: total blocks held by resident,
        # unpinned segments (always wholly evictable, because pins cover
        # root->leaf chains) and a lazily-validated LRU candidate heap.
        self._evictable_blocks = 0
        self._resident_token_count = 0
        self._evict_heap: list[tuple[int, int]] = []
        self.stats = CacheStats(trace_capacity=trace_capacity)

    # -- introspection -------------------------------------------------

    @property
    def tree(self) -> RadixTree:
        return self._tree

    @property
    def pool(self) -> BlockPool:
        return self._pool

    @property
    def capacity_tokens(self) -> int:
        return self._pool.capacity_tokens

    @property
    def kv_bytes_per_token(self) -> int:
        return self._kv_bytes_per_token

    @property
    def resident_tokens(self) -> int:
        return self._resident_token_count

    @property
    def evictable_blocks(self) -> int:
        """Blocks reclaimable without touching pinned paths."""
        return self._evictable_blocks

    @property
    def resident_segment_count(self) -> int:
        return sum(1 for s in self._segments.values() if s.resident)

    def resident_segments(self) -> list[SegmentState]:
        """Resident segments in parent-before-child (topological) order.

        The shared-prefix KV ledger consumes this to register a session's
        live lineages against the lane's radix tree; ordering parents
        first lets the consumer create tree nodes in one pass. Sorted by
        ``(depth, segment_id)`` for determinism.
        """
        return sorted(
            (s for s in self._segments.values() if s.resident),
            key=lambda s: (self._tree.get(s.segment_id).depth, s.segment_id),
        )

    def is_resident(self, segment_id: int) -> bool:
        state = self._segments.get(segment_id)
        return state is not None and state.resident

    def segment(self, segment_id: int) -> SegmentState:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise KeyError(f"unknown segment {segment_id}") from None

    # -- registration ----------------------------------------------------

    def register_segment(
        self, segment_id: int, parent_id: int | None, token_len: int
    ) -> SegmentState:
        """Register a (non-resident) segment in the reasoning tree.

        Idempotent for identical attributes so that callers can re-register
        shared prefixes freely.
        """
        if parent_id is not None and parent_id not in self._segments:
            raise KeyError(f"parent segment {parent_id} is not registered")
        self._tree.add_node(segment_id, parent_id, token_len)
        existing = self._segments.get(segment_id)
        if existing is not None:
            return existing
        state = SegmentState(segment_id=segment_id, token_len=token_len)
        self._segments[segment_id] = state
        return state

    # -- pinning ---------------------------------------------------------

    def pin_path(self, leaf_id: int) -> None:
        """Protect every segment on the root->leaf path from eviction."""
        for seg_id in self._tree.path(leaf_id):
            state = self._segments[seg_id]
            if state.pin_count == 0 and state.resident:
                self._evictable_blocks -= state.blocks_held
            state.pin_count += 1

    def unpin_path(self, leaf_id: int) -> None:
        """Release one pin along the root->leaf path."""
        for seg_id in self._tree.path(leaf_id):
            state = self._segments[seg_id]
            if state.pin_count <= 0:
                raise CapacityError(f"segment {seg_id} is not pinned")
            state.pin_count -= 1
            if state.pin_count == 0 and state.resident:
                self._evictable_blocks += state.blocks_held
                self._push_candidate(state)

    # -- residency -------------------------------------------------------

    def resident_prefix_tokens(self, leaf_id: int) -> int:
        """Token mass of the longest resident root prefix of this path."""
        tokens = 0
        for seg_id in self._tree.path(leaf_id):
            state = self._segments[seg_id]
            if not state.resident:
                break
            tokens += state.token_len
        return tokens

    def missing_tokens(self, leaf_id: int) -> int:
        """Tokens of the path that would need recomputation right now."""
        return self._tree.path_tokens(leaf_id) - self.resident_prefix_tokens(leaf_id)

    def materialize(self, leaf_id: int, now: float = 0.0, pin: bool = True) -> MaterializeOutcome:
        """Make the root->leaf path fully resident.

        Returns the hit/recompute split. Eviction of unpinned segments is
        performed as needed; if the path cannot fit even after evicting
        everything evictable, :class:`CapacityError` is raised and the cache
        is left unchanged in block accounting (any evictions already applied
        remain — as they would on real hardware).
        """
        path = self._tree.path(leaf_id)
        self._access_clock += 1
        stamp = self._access_clock

        # Protect the chain under construction: without this, loading a
        # deep suffix under memory pressure could evict the path's own hit
        # prefix, silently breaking the residency invariant.
        self.pin_path(leaf_id)

        hit_tokens = 0
        to_load: list[SegmentState] = []
        broken = False
        for seg_id in path:
            state = self._segments[seg_id]
            if state.resident and not broken:
                hit_tokens += state.token_len
                state.last_access = stamp
            else:
                # Residency invariant: once the chain breaks, everything
                # below must be recomputed even if stale blocks linger.
                broken = True
                if state.resident:
                    self._evict_segment(state, now)
                to_load.append(state)

        evicted = 0
        recomputed = 0
        try:
            for state in to_load:
                needed = blocks_for_tokens(state.token_len, self._pool.block_tokens)
                evicted += self._ensure_free_blocks(needed, now)
                self._pool.allocate(needed)
                state.blocks_held = needed
                state.resident = True
                state.last_access = stamp
                self._resident_token_count += state.token_len
                self._mark_resident_child(state.segment_id)
                recomputed += state.token_len
                self.stats.record(
                    CacheEvent(
                        now, CacheEventKind.RECOMPUTE, state.segment_id, state.token_len
                    )
                )
        except CapacityError:
            self.unpin_path(leaf_id)
            raise

        if hit_tokens:
            self.stats.record(CacheEvent(now, CacheEventKind.HIT, leaf_id, hit_tokens))
        if not pin:
            self.unpin_path(leaf_id)
        return MaterializeOutcome(
            hit_tokens=hit_tokens, recomputed_tokens=recomputed, evicted_segments=evicted
        )

    def extend_segment(self, segment_id: int, additional_tokens: int, now: float = 0.0) -> None:
        """Grow a resident tail segment by ``additional_tokens``.

        Used for the actively decoding step: block allocation happens only
        when the growth crosses a block boundary, as in vLLM.
        """
        if additional_tokens < 0:
            raise ValueError("additional_tokens must be non-negative")
        state = self.segment(segment_id)
        if not state.resident:
            raise CapacityError(f"segment {segment_id} is not resident and cannot grow")
        new_len = state.token_len + additional_tokens
        needed = blocks_for_tokens(new_len, self._pool.block_tokens) - state.blocks_held
        if needed > 0:
            self._ensure_free_blocks(needed, now)
            self._pool.allocate(needed)
            state.blocks_held += needed
            if state.pin_count == 0:
                self._evictable_blocks += needed
            self.stats.record(
                CacheEvent(now, CacheEventKind.ALLOCATE, segment_id, additional_tokens)
            )
        self._resident_token_count += additional_tokens
        state.token_len = new_len
        self._tree.set_token_len(segment_id, new_len)
        self._access_clock += 1
        state.last_access = self._access_clock
        if state.pin_count == 0:
            self._push_candidate(state)

    def truncate_segment(self, segment_id: int, new_len: int, now: float = 0.0) -> int:
        """Shrink a segment to ``new_len`` tokens, freeing excess blocks.

        Used when a duplicated beam keeps only a truncated fraction of its
        speculative head start (paper Sec. 4.1, lines 18-19 of Alg. 1).
        Returns the number of blocks freed.
        """
        if new_len < 0:
            raise ValueError("new_len must be non-negative")
        state = self.segment(segment_id)
        if new_len > state.token_len:
            raise ValueError("truncate cannot grow a segment")
        if state.resident:
            keep_blocks = blocks_for_tokens(new_len, self._pool.block_tokens)
            freed = state.blocks_held - keep_blocks
            if freed > 0:
                self._pool.free(freed)
                state.blocks_held = keep_blocks
                if state.pin_count == 0:
                    self._evictable_blocks -= freed
            self._resident_token_count -= state.token_len - new_len
        else:
            freed = 0
        state.token_len = new_len
        self._tree.set_token_len(segment_id, new_len)
        return freed

    def can_fit_path(self, leaf_id: int, extra_tokens: int = 0) -> bool:
        """Whether the path (plus planned growth) could be materialized now.

        Counts free blocks plus everything evictable; pinned residency is
        untouchable.
        """
        needed, reclaimable = self.path_block_demand(leaf_id, extra_tokens)
        return needed <= reclaimable

    def path_block_demand(
        self, leaf_id: int, extra_tokens: int = 0
    ) -> tuple[int, int]:
        """``(needed_blocks, reclaimable_blocks)`` for materializing a path.

        ``needed_blocks`` counts per-segment block rounding for every
        missing segment plus the leaf's planned growth; ``reclaimable``
        is free blocks plus everything evictable outside this path. The
        schedulers use the pair for cumulative admission control.
        """
        block_tokens = self._pool.block_tokens
        needed_blocks = 0
        own_evictable = 0
        broken = False
        for seg_id in self._tree.path(leaf_id):
            state = self._segments[seg_id]
            is_leaf = seg_id == leaf_id
            tokens = state.token_len + (extra_tokens if is_leaf else 0)
            if state.resident and not broken:
                if state.pin_count == 0:
                    own_evictable += state.blocks_held
                if is_leaf:
                    # planned tail growth beyond currently held blocks
                    needed_blocks += (
                        blocks_for_tokens(tokens, block_tokens) - state.blocks_held
                    )
                continue
            broken = True
            # block rounding applies per segment, not to the token sum
            needed_blocks += blocks_for_tokens(tokens, block_tokens)
        reclaimable = self._pool.free_blocks + self._evictable_blocks - own_evictable
        return needed_blocks, reclaimable

    def evict_path(self, leaf_id: int, now: float = 0.0) -> int:
        """Explicitly evict the unpinned resident suffix of a path.

        Returns evicted segment count. Used by preemption.
        """
        evicted = 0
        for seg_id in reversed(self._tree.path(leaf_id)):
            state = self._segments[seg_id]
            if not state.resident or state.pin_count > 0:
                break
            if self._resident_children.get(seg_id):
                break  # shared with a still-resident sibling subtree
            self._evict_segment(state, now)
            evicted += 1
        return evicted

    def evict_all(self, now: float = 0.0) -> int:
        """Evict every unpinned resident segment (leaf-first).

        Models a serving stack without cross-call prefix caching (vLLM's
        default): KV from one ``generate()`` call is gone by the next.
        Returns the number of segments evicted.
        """
        evicted = 0
        while self._evict_heap:
            state = self._pop_candidate()
            if state is None:
                break
            self._evict_segment(state, now)
            evicted += 1
        return evicted

    def reset(self) -> None:
        """Drop all segments (between problems; nothing is shared across)."""
        for state in self._segments.values():
            if state.resident:
                self._pool.free(state.blocks_held)
        self._segments.clear()
        self._resident_children.clear()
        self._tree = RadixTree()
        self._evictable_blocks = 0
        self._resident_token_count = 0
        self._evict_heap.clear()

    # -- eviction internals ----------------------------------------------

    def _mark_resident_child(self, segment_id: int) -> None:
        parent = self._tree.get(segment_id).parent_id
        if parent is not None:
            self._resident_children.setdefault(parent, set()).add(segment_id)

    def _unmark_resident_child(self, segment_id: int) -> None:
        parent = self._tree.get(segment_id).parent_id
        if parent is not None:
            children = self._resident_children.get(parent)
            if children:
                children.discard(segment_id)

    def _evict_segment(self, state: SegmentState, now: float) -> None:
        if state.pin_count == 0:
            self._evictable_blocks -= state.blocks_held
        self._resident_token_count -= state.token_len
        self._pool.free(state.blocks_held)
        state.blocks_held = 0
        state.resident = False
        self._unmark_resident_child(state.segment_id)
        parent_id = self._tree.get(state.segment_id).parent_id
        if parent_id is not None:
            parent = self._segments[parent_id]
            if parent.resident and parent.pin_count == 0:
                self._push_candidate(parent)
        self.stats.record(
            CacheEvent(now, CacheEventKind.EVICT, state.segment_id, state.token_len)
        )

    def _is_evictable(self, state: SegmentState) -> bool:
        return (
            state.resident
            and state.pin_count == 0
            and not self._resident_children.get(state.segment_id)
        )

    def _push_candidate(self, state: SegmentState) -> None:
        """Register a segment as a potential LRU eviction victim.

        Entries are validated lazily at pop time, so pushing is always safe
        and duplicates are fine."""
        if self._is_evictable(state):
            heapq.heappush(self._evict_heap, (state.last_access, state.segment_id))

    def _pop_candidate(self) -> SegmentState | None:
        """Pop the LRU-most currently-valid eviction victim."""
        while self._evict_heap:
            last_access, seg_id = heapq.heappop(self._evict_heap)
            state = self._segments.get(seg_id)
            if (
                state is not None
                and state.last_access == last_access
                and self._is_evictable(state)
            ):
                return state
        return None

    def _ensure_free_blocks(self, n_blocks: int, now: float) -> int:
        """Evict LRU victims until ``n_blocks`` are free.

        Returns the number of segments evicted; raises
        :class:`CapacityError` if pinned residency makes it impossible.
        """
        evicted = 0
        while self._pool.free_blocks < n_blocks:
            victim = self._pop_candidate()
            if victim is None:
                raise CapacityError(
                    f"need {n_blocks} free blocks but only {self._pool.free_blocks} "
                    "available and nothing is evictable (all pinned)"
                )
            self._evict_segment(victim, now)
            evicted += 1
        return evicted
