"""Deterministic fault injection for the device fleet.

See :mod:`repro.faults.injector` for the fault-type registry, the compact
``type:key=value,...`` spec grammar, and the keyed :class:`FaultInjector`
that turns a spec + seed into a reproducible fault timeline.
"""

from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    FaultProcess,
    KvPressure,
    LaneCrash,
    LinkDegrade,
    RetryPolicy,
    TransientStall,
    build_fault,
    fault_descriptions,
    list_faults,
    parse_fault_spec,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultProcess",
    "KvPressure",
    "LaneCrash",
    "LinkDegrade",
    "RetryPolicy",
    "TransientStall",
    "build_fault",
    "fault_descriptions",
    "list_faults",
    "parse_fault_spec",
]
