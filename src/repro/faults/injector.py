"""Keyed-RNG fault processes and the deterministic fleet fault injector.

Availability numbers are only comparable if the failure timeline is a
pure function of the seed — never of scheduler interleaving, of how many
requests arrived first, or of which lane happened to be busy. Every draw
here therefore goes through :class:`~repro.utils.rng.KeyedRng` streams
keyed by the draw's *position* in the process (occurrence index), the
same discipline as :mod:`repro.workloads.arrivals`: two injectors built
from the same spec and seed emit bit-identical timelines, and extending
the horizon never perturbs the prefix.

Four fault types cover the failure modes a multi-lane serving fleet
actually sees:

``crash``
    The lane goes DOWN and its resident KV is lost. With ``mttr=`` the
    lane recovers (empty) after the mean-time-to-repair window;
    without, the crash is permanent.
``stall``
    The lane's clock freezes for ``duration`` seconds — a GC pause, a
    thermal throttle, a driver hiccup. No state is lost, but everything
    resident rides out the window.
``link_degrade``
    The lane's PCIe offload bandwidth is scaled by ``factor`` — link
    contention or a renegotiated lane width. KV swap traffic slows
    accordingly; ``duration`` bounds the window (omit for permanent).
``kv_pressure``
    The lane's KV budget is shrunk to ``fraction`` of its capacity for
    ``duration`` seconds — a co-tenant grabbing VRAM. Resident KV above
    the shrunk budget is evicted immediately (an eviction storm) and
    victims pay restores when they next run.

Each fault is scheduled either one-shot (``at=T``) or as a Poisson
process (``rate=R`` occurrences per second); ``lane=`` pins the victim
lane, otherwise each occurrence draws one uniformly. Specs compose with
``;``::

    crash:at=120,lane=1,mttr=60;kv_pressure:rate=0.001,fraction=0.5
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.errors import ConfigError, RetryExhaustedError
from repro.utils.rng import KeyedRng

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultProcess",
    "LaneCrash",
    "TransientStall",
    "LinkDegrade",
    "KvPressure",
    "RetryPolicy",
    "build_fault",
    "list_faults",
    "fault_descriptions",
    "parse_fault_spec",
]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One concrete fault occurrence on one lane.

    ``duration_s``/``factor``/``mttr_s`` carry the type-specific payload;
    the consumer (the fleet drain loop) schedules any matching recovery
    from them — the injector only emits onsets, in time order.
    """

    time_s: float
    lane: int
    kind: str
    duration_s: float | None = None
    factor: float | None = None
    mttr_s: float | None = None


class FaultProcess(ABC):
    """One fault clause: a schedule (one-shot or Poisson) plus a payload.

    Subclasses draw exclusively through keyed streams of the ``rng``
    handed to :meth:`events`, so the timeline depends only on the rng's
    root seed and the clause parameters.
    """

    name: str = "abstract"
    description: str = ""

    # Subclasses declare these dataclass fields.
    at: float | None
    rate: float | None
    lane: int | None

    @abstractmethod
    def events(self, rng: KeyedRng, num_lanes: int) -> Iterator[FaultEvent]:
        """Yield this clause's occurrences in strictly increasing time."""

    def _check_schedule(self) -> None:
        if (self.at is None) == (self.rate is None):
            raise ConfigError(
                f"{self.name} fault needs exactly one of at= (one-shot) "
                f"or rate= (Poisson occurrences/s)"
            )
        if self.at is not None and self.at < 0:
            raise ConfigError(f"{self.name} fault needs at >= 0 (got {self.at})")
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(f"{self.name} fault needs rate > 0 (got {self.rate})")
        if self.lane is not None and self.lane < 0:
            raise ConfigError(f"{self.name} fault needs lane >= 0 (got {self.lane})")

    def _occurrences(
        self, rng: KeyedRng, num_lanes: int
    ) -> Iterator[tuple[float, int]]:
        """Yield ``(time, lane)`` pairs, each addressed by occurrence index."""
        if self.at is not None:
            yield self.at, self._victim(rng, num_lanes, 0)
            return
        now, i = 0.0, 0
        while True:
            gap = rng.stream(f"{self.name}-gap", i).exponential(1.0 / self.rate)
            now += float(gap)
            yield now, self._victim(rng, num_lanes, i)
            i += 1

    def _victim(self, rng: KeyedRng, num_lanes: int, index: int) -> int:
        if self.lane is not None:
            return self.lane
        return int(rng.stream(f"{self.name}-lane", index).integers(num_lanes))


@dataclass(frozen=True, slots=True)
class LaneCrash(FaultProcess):
    """Lane goes DOWN, resident KV lost; ``mttr`` seconds to recover."""

    at: float | None = None
    rate: float | None = None
    lane: int | None = None
    mttr: float | None = None

    name = "crash"
    description = "lane dies and loses its KV; mttr= recovers it empty"

    def __post_init__(self) -> None:
        self._check_schedule()
        if self.mttr is not None and self.mttr <= 0:
            raise ConfigError(f"crash fault needs mttr > 0 (got {self.mttr})")

    def events(self, rng: KeyedRng, num_lanes: int) -> Iterator[FaultEvent]:
        for time_s, lane in self._occurrences(rng, num_lanes):
            yield FaultEvent(time_s=time_s, lane=lane, kind=self.name,
                             mttr_s=self.mttr)


@dataclass(frozen=True, slots=True)
class TransientStall(FaultProcess):
    """Lane clock frozen for ``duration`` seconds; nothing is lost."""

    at: float | None = None
    rate: float | None = None
    lane: int | None = None
    duration: float = 30.0

    name = "stall"
    description = "lane clock frozen for duration= seconds"

    def __post_init__(self) -> None:
        self._check_schedule()
        if self.duration <= 0:
            raise ConfigError(f"stall fault needs duration > 0 (got {self.duration})")

    def events(self, rng: KeyedRng, num_lanes: int) -> Iterator[FaultEvent]:
        for time_s, lane in self._occurrences(rng, num_lanes):
            yield FaultEvent(time_s=time_s, lane=lane, kind=self.name,
                             duration_s=self.duration)


@dataclass(frozen=True, slots=True)
class LinkDegrade(FaultProcess):
    """Lane PCIe bandwidth scaled by ``factor``; ``duration`` bounds it."""

    at: float | None = None
    rate: float | None = None
    lane: int | None = None
    factor: float = 0.25
    duration: float | None = None

    name = "link_degrade"
    description = "lane PCIe bandwidth scaled by factor= for duration="

    def __post_init__(self) -> None:
        self._check_schedule()
        if not 0.0 < self.factor < 1.0:
            raise ConfigError(
                f"link_degrade fault needs 0 < factor < 1 (got {self.factor})"
            )
        if self.duration is not None and self.duration <= 0:
            raise ConfigError(
                f"link_degrade fault needs duration > 0 (got {self.duration})"
            )

    def events(self, rng: KeyedRng, num_lanes: int) -> Iterator[FaultEvent]:
        for time_s, lane in self._occurrences(rng, num_lanes):
            yield FaultEvent(time_s=time_s, lane=lane, kind=self.name,
                             factor=self.factor, duration_s=self.duration)


@dataclass(frozen=True, slots=True)
class KvPressure(FaultProcess):
    """Lane KV budget shrunk to ``fraction`` of capacity for ``duration``."""

    at: float | None = None
    rate: float | None = None
    lane: int | None = None
    fraction: float = 0.5
    duration: float = 60.0

    name = "kv_pressure"
    description = "lane KV budget shrunk to fraction= for duration= seconds"

    def __post_init__(self) -> None:
        self._check_schedule()
        if not 0.0 < self.fraction < 1.0:
            raise ConfigError(
                f"kv_pressure fault needs 0 < fraction < 1 (got {self.fraction})"
            )
        if self.duration <= 0:
            raise ConfigError(
                f"kv_pressure fault needs duration > 0 (got {self.duration})"
            )

    def events(self, rng: KeyedRng, num_lanes: int) -> Iterator[FaultEvent]:
        for time_s, lane in self._occurrences(rng, num_lanes):
            yield FaultEvent(time_s=time_s, lane=lane, kind=self.name,
                             factor=self.fraction, duration_s=self.duration)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with a hard per-request attempt budget.

    ``backoff(attempt)`` (attempts are 1-based) returns the delay before
    re-enqueueing that attempt, doubling each time; past the budget it
    raises :class:`~repro.errors.RetryExhaustedError`, which the fleet
    turns into a terminal lost record.
    """

    budget: int = 3
    backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ConfigError(f"retry budget must be >= 0 (got {self.budget})")
        if self.backoff_s <= 0:
            raise ConfigError(f"retry backoff_s must be > 0 (got {self.backoff_s})")

    def backoff(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("retry attempts are 1-based")
        if attempt > self.budget:
            raise RetryExhaustedError(
                f"retry budget exhausted after {self.budget} attempt(s)"
            )
        return self.backoff_s * (2.0 ** (attempt - 1))


_FAULTS: dict[str, Callable[..., FaultProcess]] = {
    LaneCrash.name: LaneCrash,
    TransientStall.name: TransientStall,
    LinkDegrade.name: LinkDegrade,
    KvPressure.name: KvPressure,
}


def list_faults() -> list[str]:
    """Registered fault-type names."""
    return sorted(_FAULTS)


def fault_descriptions() -> dict[str, str]:
    """Fault name → one-line description (for the CLI listing)."""
    return {name: _FAULTS[name].description for name in list_faults()}


def build_fault(name: str, **params) -> FaultProcess:
    """Instantiate a fault process by registry name.

    Unknown names raise :class:`~repro.errors.ConfigError` with a
    nearest-match suggestion; bad parameters raise from the fault's own
    validator.
    """
    try:
        factory = _FAULTS[name]
    except KeyError:
        from repro.utils.suggest import did_you_mean

        raise ConfigError(
            f"unknown fault type {name!r}{did_you_mean(name, _FAULTS)}; "
            f"registered: {', '.join(list_faults())}"
        ) from None
    try:
        return factory(**params)
    except TypeError as error:
        raise ConfigError(f"bad {name} fault parameters: {error}") from None


def parse_fault_spec(spec: str | None) -> tuple[FaultProcess, ...]:
    """Parse a compact fault spec into fault processes.

    Grammar: clauses joined by ``;``, each ``type:key=value,...`` —
    e.g. ``crash:at=120,lane=1,mttr=60;stall:rate=0.002,duration=30``.
    ``off``, the empty string, and ``None`` mean no faults. ``lane`` is
    parsed as an int, everything else as a float; malformed clauses
    raise :class:`~repro.errors.ConfigError`.
    """
    if spec is None:
        return ()
    text = spec.strip()
    if not text or text == "off":
        return ()
    processes: list[FaultProcess] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, _, params_text = clause.partition(":")
        name = name.strip()
        params: dict[str, float | int] = {}
        if params_text.strip():
            for pair in params_text.split(","):
                key, sep, value = pair.partition("=")
                key, value = key.strip(), value.strip()
                if not sep or not key:
                    raise ConfigError(
                        f"bad fault clause {clause!r}: expected key=value, "
                        f"got {pair.strip()!r}"
                    )
                try:
                    params[key] = int(value) if key == "lane" else float(value)
                except ValueError:
                    raise ConfigError(
                        f"bad fault clause {clause!r}: {key}={value!r} "
                        f"is not a number"
                    ) from None
        processes.append(build_fault(name, **params))
    return tuple(processes)


class FaultInjector:
    """Merges every clause's keyed event stream into one fault timeline.

    Each clause draws from its own forked rng namespace (keyed by clause
    index and type), so adding a clause to a spec never perturbs the
    timelines of the others — the same composition rule as multi-tenant
    trace generation. Events are consumed through :meth:`pop_due`; the
    lazy per-clause generators mean rate-based (unbounded) clauses cost
    only as many draws as the consumed horizon needs.
    """

    def __init__(
        self,
        processes: Sequence[FaultProcess],
        rng: KeyedRng,
        num_lanes: int,
    ) -> None:
        if num_lanes <= 0:
            raise ConfigError(f"fault injector needs num_lanes > 0 (got {num_lanes})")
        for process in processes:
            if process.lane is not None and process.lane >= num_lanes:
                raise ConfigError(
                    f"{process.name} fault pins lane {process.lane} but the "
                    f"pool has only {num_lanes} lane(s)"
                )
        self._processes = tuple(processes)
        self._rng = rng
        self._num_lanes = num_lanes
        self._streams = [
            process.events(rng.fork("fault-clause", index, process.name), num_lanes)
            for index, process in enumerate(self._processes)
        ]
        # Min-heap of stream heads keyed (time, lane, clause index) so
        # simultaneous events pop in a stable, spec-determined order.
        self._heads: list[tuple[tuple[float, int, int], FaultEvent]] = []
        for index in range(len(self._streams)):
            self._refill(index)

    def _refill(self, index: int) -> None:
        event = next(self._streams[index], None)
        if event is not None:
            heapq.heappush(
                self._heads, ((event.time_s, event.lane, index), event)
            )

    def peek(self) -> float | None:
        """Time of the next pending event, or None when the timeline is dry."""
        return self._heads[0][1].time_s if self._heads else None

    def pop_due(self, now: float) -> list[FaultEvent]:
        """Consume and return every event with ``time_s <= now``, in order."""
        due: list[FaultEvent] = []
        while self._heads and self._heads[0][1].time_s <= now:
            (_, _, index), event = self._heads[0][0], self._heads[0][1]
            heapq.heappop(self._heads)
            due.append(event)
            self._refill(index)
        return due

    def timeline(self, horizon_s: float) -> tuple[FaultEvent, ...]:
        """Pure preview: every event up to ``horizon_s``, without consuming.

        Built from a fresh injector over the same clauses and rng, so the
        result is exactly what :meth:`pop_due` would deliver — handy for
        tests and for printing a run's fault schedule up front.
        """
        fresh = FaultInjector(self._processes, self._rng, self._num_lanes)
        return tuple(fresh.pop_due(horizon_s))
