"""Nearest-known-key suggestions for registry and config lookup errors.

A typo'd device name or config key should not strand the user with only
the full list of valid options: every registry lookup in the library runs
the unknown key through :func:`closest` and appends a
"did you mean 'rtx4090'?" hint when a close match exists. The matching is
:mod:`difflib`'s ratio-based cutoff, so unrelated strings produce no
suggestion rather than a misleading one.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Iterable

__all__ = ["closest", "did_you_mean"]


def closest(name: str, candidates: Iterable[str]) -> str | None:
    """The candidate most similar to ``name``, or None if nothing is close."""
    matches = get_close_matches(name, sorted(candidates), n=1, cutoff=0.6)
    return matches[0] if matches else None


def did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """A ``" — did you mean 'x'?"`` suffix, or ``""`` when nothing is close.

    Designed to be appended verbatim to an error message::

        raise ConfigError(f"unknown key {key!r}{did_you_mean(key, known)}")
    """
    match = closest(name, candidates)
    return f" — did you mean {match!r}?" if match else ""
