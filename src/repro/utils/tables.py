"""ASCII table rendering for the benchmark harness.

The paper's artifact emits PDF figures; this reproduction instead prints
the same rows/series as aligned text tables so results are inspectable in
a terminal and diffable in CI.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_quantity", "format_bytes"]

_SI_PREFIXES = ["", "K", "M", "G", "T", "P"]


def format_quantity(value: float, unit: str = "", precision: int = 2) -> str:
    """Format a value with an SI prefix, e.g. ``1_500_000 -> '1.50M'``."""
    if value != value:  # NaN
        return "nan"
    sign = "-" if value < 0 else ""
    magnitude = abs(value)
    for prefix in _SI_PREFIXES:
        if magnitude < 1000.0 or prefix == _SI_PREFIXES[-1]:
            return f"{sign}{magnitude:.{precision}f}{prefix}{unit}"
        magnitude /= 1000.0
    raise AssertionError("unreachable")


def format_bytes(num_bytes: float, precision: int = 2) -> str:
    """Format a byte count with binary prefixes, e.g. ``'3.00GiB'``."""
    magnitude = float(num_bytes)
    for prefix in ["B", "KiB", "MiB", "GiB", "TiB"]:
        if abs(magnitude) < 1024.0 or prefix == "TiB":
            return f"{magnitude:.{precision}f}{prefix}"
        magnitude /= 1024.0
    raise AssertionError("unreachable")


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Numeric cells are right-aligned, text cells left-aligned. Floats are
    shown with three decimals unless they are integral.
    """
    if not headers:
        raise ValueError("headers must be non-empty")

    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.0f}" if cell.is_integer() and abs(cell) < 1e15 else f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric_cols = [
        all(_is_numeric(row[i]) for row in rows) if rows else False
        for i in range(len(headers))
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric_cols[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    lines.extend(render_row(row) for row in str_rows)
    lines.append(separator)
    return "\n".join(lines)


def _is_numeric(cell: object) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)
