"""Shared utilities: keyed RNG streams, statistics, and table rendering."""

from repro.utils.ascii_plot import bar_chart, series_plot
from repro.utils.rng import KeyedRng, stable_hash64
from repro.utils.stats import Summary, geometric_mean, percentile, ratio, summarize
from repro.utils.tables import format_bytes, format_quantity, render_table

__all__ = [
    "KeyedRng",
    "stable_hash64",
    "Summary",
    "summarize",
    "geometric_mean",
    "percentile",
    "ratio",
    "render_table",
    "format_quantity",
    "format_bytes",
    "bar_chart",
    "series_plot",
]
