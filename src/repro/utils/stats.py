"""Small statistics helpers shared by metrics and benchmark reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Summary", "summarize", "geometric_mean", "percentile", "ratio"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a sample; raises ``ValueError`` on an empty sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of a non-empty sample."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio: returns ``inf`` for x/0 with x>0 and ``nan`` for 0/0."""
    if denominator == 0:
        return math.nan if numerator == 0 else math.inf
    return numerator / denominator
