"""Terminal plots for the benchmark harness.

The paper's artifact renders PDF figures; this reproduction renders the
same series as terminal graphics so results are inspectable over SSH and
diffable in CI: horizontal bar charts for categorical comparisons (Fig. 12
style) and multi-series strip plots for trends (Fig. 5/6/17 style).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "series_plot"]

_BAR = "#"
_TICKS = " .:-=+*#%@"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart with right-aligned values.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))  # doctest: +SKIP
    a | ##    1.00
    b | #### 2.00
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to plot")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _BAR * max(0, round(value / peak * width))
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} "
            f"{value:,.2f}{unit}"
        )
    return "\n".join(lines)


def series_plot(
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    title: str | None = None,
    x_label: str = "",
) -> str:
    """Strip plot of one or more equal-length series over an index axis.

    Each series gets its own marker (its name's first letter); overlapping
    points show the later series' marker. Values are min-max normalized
    over all series jointly so crossings are visible.
    """
    if not series:
        raise ValueError("nothing to plot")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    (n_points,) = lengths
    if n_points < 2:
        raise ValueError("need at least two points per series")
    if height < 2:
        raise ValueError("height must be at least 2")

    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0

    grid = [[" "] * n_points for _ in range(height)]
    for name, values in series.items():
        marker = name[0].upper() if name else "?"
        for x, value in enumerate(values):
            y = round((value - lo) / span * (height - 1))
            grid[height - 1 - y][x] = marker

    lines = [title] if title else []
    lines.append(f"{hi:>10.2f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:>10.2f} +" + "".join(grid[-1]))
    axis = " " * 12 + "^" + " " * (n_points - 2) + "^"
    lines.append(axis)
    legend = "  ".join(f"{name[0].upper()}={name}" for name in series)
    lines.append(" " * 12 + (x_label + "  " if x_label else "") + legend)
    return "\n".join(lines)
