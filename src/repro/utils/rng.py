"""Hash-keyed random number streams.

The FastTTS paper argues its optimizations are *algorithmically equivalent*
to the baseline search: speculation and reordering never change which beams
the search selects. To make that claim testable in simulation, every
stochastic quantity (step length, quality delta, verifier noise, sampled
answer) must be a pure function of *what* is being generated, never of
*when* or *in which batch* it is generated.

:class:`KeyedRng` provides that: ``rng.stream(*key)`` returns a NumPy
generator seeded by a stable BLAKE2 hash of the root seed and the key parts.
Two servers that execute the same logical search in totally different orders
draw bit-identical values, so any divergence between a baseline run and a
FastTTS run is a real algorithmic divergence, not RNG-consumption skew.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

_KeyPart = int | str | float | bytes | bool | tuple

__all__ = ["KeyedRng", "stable_hash64"]


def _encode_part(part: _KeyPart) -> bytes:
    """Canonically encode one key component for hashing.

    Each encoding is prefixed with a type tag so that e.g. ``1`` and ``"1"``
    hash differently, and tuples cannot collide with their flattened parts.
    """
    if isinstance(part, bool):  # must precede int: bool is a subclass of int
        return b"b" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i" + part.to_bytes(16, "little", signed=True)
    if isinstance(part, float):
        return b"f" + np.float64(part).tobytes()
    if isinstance(part, str):
        raw = part.encode("utf-8")
        return b"s" + len(raw).to_bytes(4, "little") + raw
    if isinstance(part, bytes):
        return b"y" + len(part).to_bytes(4, "little") + part
    if isinstance(part, tuple):
        inner = b"".join(_encode_part(p) for p in part)
        return b"t" + len(part).to_bytes(4, "little") + inner
    raise TypeError(f"unhashable rng key part of type {type(part).__name__}")


def stable_hash64(*parts: _KeyPart) -> int:
    """Return a stable 64-bit hash of the given key parts.

    Unlike the builtin :func:`hash`, the result does not depend on
    ``PYTHONHASHSEED``, the process, or the platform.
    """
    digest = hashlib.blake2b(
        b"".join(_encode_part(p) for p in parts), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class KeyedRng:
    """A root seed from which independent, addressable streams are derived.

    Example
    -------
    >>> rng = KeyedRng(seed=7)
    >>> a = rng.stream("step-length", "problem-3", 0).lognormal(4.0, 0.8)
    >>> b = rng.stream("step-length", "problem-3", 0).lognormal(4.0, 0.8)
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError("seed must be an int")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The root seed this instance derives all streams from."""
        return self._seed

    def stream(self, *key: _KeyPart) -> np.random.Generator:
        """Return a fresh generator for the addressed stream.

        The same ``(seed, key)`` pair always yields a generator in the same
        state; distinct keys yield independent streams.
        """
        return np.random.Generator(
            np.random.PCG64(stable_hash64(self._seed, *key))
        )

    def uniform(self, *key: _KeyPart) -> float:
        """One U[0, 1) draw from the addressed stream."""
        return float(self.stream(*key).random())

    def normal(self, *key: _KeyPart, loc: float = 0.0, scale: float = 1.0) -> float:
        """One normal draw from the addressed stream."""
        return float(self.stream(*key).normal(loc, scale))

    def lognormal(self, *key: _KeyPart, mean: float, sigma: float) -> float:
        """One lognormal draw from the addressed stream."""
        return float(self.stream(*key).lognormal(mean, sigma))

    def randint(self, *key: _KeyPart, low: int, high: int) -> int:
        """One integer draw in ``[low, high)`` from the addressed stream."""
        return int(self.stream(*key).integers(low, high))

    def choice_index(self, *key: _KeyPart, weights: Iterable[float]) -> int:
        """Sample an index proportionally to ``weights``."""
        w = np.asarray(list(weights), dtype=np.float64)
        if w.size == 0:
            raise ValueError("weights must be non-empty")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        total = float(w.sum())
        if total <= 0:
            # All-zero weights degrade to a uniform choice.
            return int(self.stream(*key).integers(0, w.size))
        return int(self.stream(*key).choice(w.size, p=w / total))

    def fork(self, *key: _KeyPart) -> "KeyedRng":
        """Derive a child :class:`KeyedRng` rooted at a sub-key.

        Useful for handing a component its own namespace without threading
        long key tuples through every call site.
        """
        return KeyedRng(stable_hash64(self._seed, "fork", *key))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KeyedRng(seed={self._seed})"
