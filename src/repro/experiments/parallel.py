"""Parallel experiment orchestration with a content-keyed result cache.

The figure scripts were written against the sequential runner; this module
is the scaling substrate underneath them. A :class:`ParallelOrchestrator`
installs itself as the runner's *active orchestrator*
(:func:`repro.experiments.runner.set_active_orchestrator`), after which
every ``run_pair`` / ``sweep_n`` / ``run_metrics`` / ``run_problem`` call —
including the ones inside :mod:`repro.experiments.figures` — is

* **sharded** across worker processes (``concurrent.futures.
  ProcessPoolExecutor``) when a call fans out over multiple cells, and
* **memoized** in an on-disk cache keyed by a SHA-256 over the full
  ``(spec, config)`` content, so re-runs of ``run_all_experiments.py`` and
  the ``benchmarks/`` suite skip completed cells entirely.

Cache layout: one JSON file per cell under the cache directory (default
``benchmarks/benchmark_results/cache/``, override with ``--cache-dir`` or
the ``REPRO_CACHE_DIR`` environment variable). Each file records the key's
provenance (spec + config) next to the serialized metrics, so a cache
directory is self-describing and safe to prune file-by-file.

Correctness note: every stochastic quantity in the simulation is hash-keyed
(:mod:`repro.utils.rng`), so a cell's metrics are a pure function of
``(spec, config)``. Process-parallel and cache-replayed results are
therefore *bit-identical* to a sequential run — floats survive the JSON
round trip exactly — which the test suite asserts.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, replace
from enum import Enum
from hashlib import sha256
from pathlib import Path

from repro.core.config import ServerConfig
from repro.experiments import runner as _runner
from repro.experiments.runner import (
    ExperimentSpec,
    PairResult,
    run_metrics_sequential,
    run_pair_sequential,
    run_problem_sequential,
)
from repro.metrics.report import ProblemRunResult, RunMetrics
from repro.workloads.problem import Dataset

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "ParallelOrchestrator",
    "cache_key",
    "default_cache_dir",
    "run_pairs",
    "use_orchestrator",
]

CACHE_SCHEMA_VERSION = 1
DEFAULT_CACHE_DIR = Path("benchmarks/benchmark_results/cache")


def default_cache_dir() -> Path:
    """The result-cache directory: ``$REPRO_CACHE_DIR`` or the in-repo default."""
    override = os.environ.get("REPRO_CACHE_DIR")
    return Path(override) if override else DEFAULT_CACHE_DIR


def _content_dict(spec: ExperimentSpec, config: ServerConfig) -> dict:
    """The exact content a cell's result is a function of."""
    config_dict = {
        key: (value.value if isinstance(value, Enum) else value)
        for key, value in asdict(config).items()
    }
    return {"spec": asdict(spec), "config": config_dict}


def cache_key(
    spec: ExperimentSpec,
    config: ServerConfig,
    kind: str = "run",
    problem_index: int | None = None,
) -> str:
    """Content hash of one experiment cell.

    ``kind`` separates dataset-aggregate cells (``"run"``) from single-problem
    cells (``"problem"``); the schema version invalidates every entry when
    the serialized format changes.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": kind,
        **_content_dict(spec, config),
    }
    if problem_index is not None:
        payload["problem_index"] = problem_index
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk memo of completed experiment cells (one JSON file per cell)."""

    def __init__(self, directory: Path | str | None = None) -> None:
        self._dir = Path(directory) if directory is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        return self._dir

    def path_for(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def _load_payload(self, key: str, kind: str) -> dict | None:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION or payload.get("kind") != kind:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def load_metrics(self, key: str) -> RunMetrics | None:
        payload = self._load_payload(key, "run")
        if payload is None:
            return None
        return RunMetrics.from_json_dict(payload["metrics"])

    def load_problem(self, key: str) -> ProblemRunResult | None:
        payload = self._load_payload(key, "problem")
        if payload is None:
            return None
        return ProblemRunResult.from_json_dict(payload["result"])

    def _store(self, key: str, payload: dict) -> None:
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        tmp.replace(path)  # atomic: concurrent runs never see partial files

    def store_metrics(
        self, key: str, spec: ExperimentSpec, config: ServerConfig, metrics: RunMetrics
    ) -> None:
        self._store(key, {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": "run",
            **_content_dict(spec, config),
            "metrics": metrics.to_json_dict(),
        })

    def store_problem(
        self,
        key: str,
        spec: ExperimentSpec,
        config: ServerConfig,
        problem_index: int,
        result: ProblemRunResult,
    ) -> None:
        self._store(key, {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": "problem",
            "problem_index": problem_index,
            **_content_dict(spec, config),
            "result": result.to_json_dict(),
        })


def _pool_run_metrics(spec: ExperimentSpec, config: ServerConfig) -> RunMetrics:
    """Worker-side execution of one cell (rebuilds the dataset from the spec)."""
    metrics, _ = run_metrics_sequential(spec, config)
    return metrics


def _dataset_matches_spec(dataset: Dataset | None, spec: ExperimentSpec) -> bool:
    """Whether a caller-supplied dataset is the one the spec describes.

    The cache key covers only the spec, so a hand-built dataset that
    diverges from ``spec.build_dataset()`` must bypass the cache instead of
    poisoning it. Datasets are pure functions of ``(name, seed, size)``:
    name and size are carried by the dataset itself, and the seed is baked
    into every problem id (``f"{name}-{seed}-{index:03d}"``), so all three
    are checkable without rebuilding anything.
    """
    if dataset is None:
        return True
    return (
        dataset.name == spec.dataset_name
        and len(dataset) == spec.dataset_size
        and dataset.problems[0].problem_id
        == f"{spec.dataset_name}-{spec.seed}-000"
    )


class ParallelOrchestrator:
    """Shards experiment cells over worker processes, memoized on disk.

    ``jobs=1`` runs everything in-process (still cached); ``jobs>1`` fans
    cell lists out over a :class:`ProcessPoolExecutor`. Pass ``cache=None``
    to disable memoization. Use as a context manager, or through
    :func:`use_orchestrator` to also route the module-level runner entry
    points here.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._jobs = jobs
        self._cache = cache
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def cache(self) -> ResultCache | None:
        return self._cache

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelOrchestrator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._jobs <= 1:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._jobs)
        return self._pool

    # -- single cells ----------------------------------------------------

    def run_metrics(
        self,
        spec: ExperimentSpec,
        config: ServerConfig,
        dataset: Dataset | None = None,
    ) -> tuple[RunMetrics, list[ProblemRunResult]]:
        """One cell, cache-first. Cache hits return an empty result list."""
        cacheable = self._cache is not None and _dataset_matches_spec(dataset, spec)
        key = cache_key(spec, config)
        if cacheable:
            cached = self._cache.load_metrics(key)
            if cached is not None:
                return cached, []
        metrics, results = run_metrics_sequential(spec, config, dataset)
        if cacheable:
            self._cache.store_metrics(key, spec, config, metrics)
        return metrics, results

    def run_problem(
        self,
        spec: ExperimentSpec,
        config: ServerConfig,
        problem_index: int = 0,
        dataset: Dataset | None = None,
    ) -> ProblemRunResult:
        cacheable = self._cache is not None and _dataset_matches_spec(dataset, spec)
        key = cache_key(spec, config, kind="problem", problem_index=problem_index)
        if cacheable:
            cached = self._cache.load_problem(key)
            if cached is not None:
                return cached
        result = run_problem_sequential(spec, config, problem_index, dataset)
        if cacheable:
            self._cache.store_problem(key, spec, config, problem_index, result)
        return result

    # -- fan-out ---------------------------------------------------------

    def run_pair(
        self,
        spec: ExperimentSpec,
        baseline_overrides: dict | None = None,
        fast_overrides: dict | None = None,
        dataset: Dataset | None = None,
    ) -> PairResult:
        return self.run_pairs(
            [spec], baseline_overrides, fast_overrides, dataset=dataset
        )[0]

    def run_pairs(
        self,
        specs: list[ExperimentSpec],
        baseline_overrides: dict | None = None,
        fast_overrides: dict | None = None,
        dataset: Dataset | None = None,
    ) -> list[PairResult]:
        """Baseline+FastTTS for every spec, sharded across the pool.

        All 2x``len(specs)`` cells are resolved together: cache answers
        first, then every remaining cell is submitted to the worker pool at
        once, so the pool sees the widest possible fan-out. ``dataset`` is
        an in-process reuse hint only — workers rebuild the dataset from the
        spec, which yields the identical problem set by construction. A
        dataset that does *not* match its spec falls back to the sequential
        path (uncached, solved on the given problems), keeping orchestrated
        and direct calls observably identical.
        """
        if dataset is not None and not all(
            _dataset_matches_spec(dataset, spec) for spec in specs
        ):
            return [
                run_pair_sequential(spec, baseline_overrides, fast_overrides, dataset)
                for spec in specs
            ]
        cells: list[tuple[str, ExperimentSpec, ServerConfig]] = []
        pair_keys: list[tuple[str, str]] = []
        for spec in specs:
            keys = []
            for fast, overrides in (
                (False, baseline_overrides), (True, fast_overrides)
            ):
                config = spec.build_config(fast=fast, **(overrides or {}))
                key = cache_key(spec, config)
                cells.append((key, spec, config))
                keys.append(key)
            pair_keys.append((keys[0], keys[1]))

        resolved: dict[str, RunMetrics] = {}
        pending: dict[str, tuple[ExperimentSpec, ServerConfig]] = {}
        for key, spec, config in cells:
            if key in resolved or key in pending:
                continue
            if self._cache is not None:
                cached = self._cache.load_metrics(key)
                if cached is not None:
                    resolved[key] = cached
                    continue
            pending[key] = (spec, config)

        pool = self._ensure_pool() if pending else None
        if pool is not None:
            futures = {
                key: pool.submit(_pool_run_metrics, spec, config)
                for key, (spec, config) in pending.items()
            }
            for key, future in futures.items():
                resolved[key] = future.result()
        else:
            for key, (spec, config) in pending.items():
                reusable = dataset if _dataset_matches_spec(dataset, spec) else None
                metrics, _ = run_metrics_sequential(spec, config, reusable)
                resolved[key] = metrics
        if self._cache is not None:
            for key in pending:
                spec, config = pending[key]
                self._cache.store_metrics(key, spec, config, resolved[key])

        return [
            PairResult(
                spec=spec, baseline=resolved[base_key], fasttts=resolved[fast_key]
            )
            for spec, (base_key, fast_key) in zip(specs, pair_keys)
        ]

    def sweep_n(
        self,
        spec: ExperimentSpec,
        n_values: list[int],
        baseline_overrides: dict | None = None,
        fast_overrides: dict | None = None,
        dataset: Dataset | None = None,
    ) -> list[PairResult]:
        """The beam-count sweep as one sharded grid (dataset shared by design)."""
        specs = [replace(spec, n=n) for n in n_values]
        return self.run_pairs(
            specs, baseline_overrides, fast_overrides, dataset=dataset
        )


@contextmanager
def use_orchestrator(orchestrator: ParallelOrchestrator):
    """Route all runner entry points through ``orchestrator`` for the block."""
    previous = _runner.set_active_orchestrator(orchestrator)
    try:
        yield orchestrator
    finally:
        _runner.set_active_orchestrator(previous)


def run_pairs(
    specs: list[ExperimentSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
    baseline_overrides: dict | None = None,
    fast_overrides: dict | None = None,
) -> list[PairResult]:
    """One-shot convenience: shard a spec list without managing a context."""
    with ParallelOrchestrator(jobs=jobs, cache=cache) as orchestrator:
        return orchestrator.run_pairs(specs, baseline_overrides, fast_overrides)
