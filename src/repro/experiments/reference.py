"""Pure-algorithm reference search (no serving system).

Executes the abstract generation-verification loop directly against the
simulated generator and PRM, with no clock, memory, batching or
speculation. Because every stochastic quantity is keyed, a serving system
is *algorithmically equivalent* to this reference iff it selects the same
lineages and collects the same terminal answers — the property the
equivalence test suite asserts for every server configuration.

It is also the cheapest way to grow realistic reasoning trees for the
memory-behaviour figures (Fig. 5, Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.generator import SimulatedGenerator
from repro.llm.verifier import SimulatedPRM
from repro.models.zoo import model_pair
from repro.search.base import SearchAlgorithm
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Dataset, Problem

__all__ = ["ReferenceTrace", "pure_search"]


@dataclass(frozen=True, slots=True)
class ReferenceTrace:
    """Everything a reference search produced."""

    rounds: tuple[tuple[tuple[int, ...], ...], ...]  # active lineages per round
    collected: tuple[ReasoningPath, ...]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def collected_answers(self) -> dict[tuple[int, ...], int]:
        return {p.lineage: p.answer for p in self.collected if p.answer is not None}


def pure_search(
    problem: Problem,
    dataset: Dataset,
    algorithm: SearchAlgorithm,
    model_config: str = "1.5B+1.5B",
    seed: int = 0,
) -> ReferenceTrace:
    """Run the search loop with zero serving machinery."""
    generator_model, verifier_model = model_pair(model_config)
    rng = KeyedRng(seed)
    generator = SimulatedGenerator(generator_model, dataset, rng)
    prm = SimulatedPRM(verifier_model, generator.oracle, rng)

    active = [ReasoningPath(lineage=(i,)) for i in range(algorithm.initial_width())]
    collected: list[ReasoningPath] = []
    rounds: list[tuple[tuple[int, ...], ...]] = []

    round_idx = 0
    while active and round_idx < dataset.max_steps:
        rounds.append(tuple(p.lineage for p in active))
        plans = {
            p.lineage: generator.plan_step(
                problem, p.lineage, round_idx, algorithm.step_cap(round_idx)
            )
            for p in active
        }
        for path in active:
            step = plans[path.lineage]
            path.record_step(step.n_tokens, step.soundness)
        if algorithm.verifies_steps:
            for path in active:
                path.record_score(
                    prm.score_step(problem, path.lineage, round_idx, path.mean_soundness)
                )
        survivors = []
        for path in active:
            if plans[path.lineage].is_terminal:
                path.terminal = True
                correct, answer = generator.final_answer(
                    problem, path.lineage, path.mean_soundness
                )
                path.answer = answer
                path.answer_correct = correct
                path.completion_time = float(round_idx + 1)  # rounds, not seconds
                collected.append(path)
            else:
                survivors.append(path)
        if not survivors:
            break
        decision = algorithm.select(survivors, round_idx, rng.fork("select"))
        active = [
            expansion.path.make_child(j)
            for expansion in decision.expansions
            for j in range(expansion.n_children)
        ]
        round_idx += 1

    if not algorithm.verifies_steps:
        for path in collected:
            path.record_score(
                prm.score_step(
                    problem, path.lineage, path.steps_done - 1, path.mean_soundness
                )
            )
    return ReferenceTrace(rounds=tuple(rounds), collected=tuple(collected))
