"""Result export: JSONL logs and text tables, like the paper's artifact.

The artifact appendix (B.6) says runs emit JSONL logs and figures under
``benchmarks/benchmark_results/``. This module provides the same surface:
each figure experiment's rows go to one JSONL file plus a rendered table,
and an index file records what was produced.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any

__all__ = ["export_figure", "ResultsWriter", "DEFAULT_RESULTS_DIR"]

DEFAULT_RESULTS_DIR = Path("benchmarks/benchmark_results")


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment outputs to JSON-compatible data."""
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):  # numpy arrays / scalars
        return _jsonable(value.tolist())
    return str(value)


class ResultsWriter:
    """Writes one experiment run's artifacts under a results directory."""

    def __init__(self, results_dir: Path | str = DEFAULT_RESULTS_DIR) -> None:
        self._dir = Path(results_dir)

    @property
    def directory(self) -> Path:
        return self._dir

    def write_rows(self, name: str, rows: list[list[Any]], header: list[str]) -> Path:
        """Write rows as JSONL (one object per row) and return the path."""
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._dir / f"{name}.jsonl"
        with path.open("w") as handle:
            for row in rows:
                record = {col: _jsonable(cell) for col, cell in zip(header, row)}
                handle.write(json.dumps(record) + "\n")
        return path

    def write_table(self, name: str, table: str) -> Path:
        """Write a rendered ASCII table next to the JSONL."""
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._dir / f"{name}.txt"
        path.write_text(table + "\n")
        return path

    def write_index(self, entries: dict[str, dict[str, Any]]) -> Path:
        """Write an index of all produced artifacts."""
        self._dir.mkdir(parents=True, exist_ok=True)
        path = self._dir / "index.json"
        path.write_text(json.dumps(_jsonable(entries), indent=2) + "\n")
        return path


# Column headers for each figure's row format (mirrors figures.py outputs).
_FIGURE_HEADERS: dict[str, list[str]] = {
    "fig1b": ["n", "baseline_latency_s", "fasttts_latency_s",
              "baseline_acc", "fasttts_acc"],
    "fig3_left": ["method", "latency_s", "top1_acc"],
    "fig3_right": ["step", "avg_tokens", "max_tokens"],
    "fig5": ["iteration", "beams_cached", "beams_no_cache"],
    "fig10": ["kv_budget_gb", "b_pre", "b_dec", "norm_throughput"],
    "fig11": ["variant", "n", "baseline_tok_s", "fasttts_tok_s", "gain_x"],
    "fig12": ["config", "dataset", "algorithm", "n", "baseline_tok_s",
              "fasttts_tok_s", "gain_x", "latency_saved_pct"],
    "fig13": ["config", "dataset", "n", "baseline_s", "fasttts_s",
              "latency_saved_pct", "gen_saved_pct", "verifier_saved_pct"],
    "fig14_top1": ["config", "dataset", "baseline_top1", "fasttts_top1"],
    "fig14_pass": ["config", "dataset", "N", "baseline_pass", "fasttts_pass"],
    "fig15": ["device", "dataset", "n", "baseline_tok_s", "fasttts_tok_s",
              "gain_x"],
    "fig16": ["config", "p_gain_pct", "mp_gain_pct", "smp_gain_pct"],
    "fig17": ["dataset", "R", "goodput_tok_s"],
    "fig18": ["order", "evictions_tight", "evictions_mid", "evictions_ample"],
}


def export_figure(
    name: str,
    output: dict,
    writer: ResultsWriter,
    rows_key: str = "rows",
    table_key: str = "table",
) -> dict[str, str]:
    """Persist one figure experiment's output; returns produced paths."""
    produced: dict[str, str] = {}
    rows = output.get(rows_key)
    if rows:
        header = _FIGURE_HEADERS.get(
            name, [f"col{i}" for i in range(len(rows[0]))]
        )
        produced["jsonl"] = str(writer.write_rows(name, rows, header))
    table = output.get(table_key)
    if table:
        produced["table"] = str(writer.write_table(name, table))
    return produced
