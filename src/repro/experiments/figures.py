"""Per-figure experiment definitions.

One function per table/figure in the paper's evaluation. Each returns a
plain-data dict (series and rows) and, where useful, a rendered ASCII
table, so the benchmark harness can both print the paper's rows and assert
the paper's qualitative shape. Scale parameters default to bench-friendly
sizes; pass larger ones to approach the paper's full sweep.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.allocator import RooflineAllocator, WorkloadProfile
from repro.core.prefix_sched import (
    eviction_cost,
    greedy_order,
    lineage_order,
    random_order,
    worst_case_order,
)
from repro.engine.telemetry import Phase
from repro.experiments.reference import pure_search
from repro.experiments.runner import (
    ExperimentSpec,
    PairResult,
    run_metrics,
    run_pair,
    run_problem,
    sweep_n,
)
from repro.hardware.device import get_device
from repro.hardware.offload import OffloadLink
from repro.hardware.roofline import Roofline
from repro.kvcache.radix import RadixTree
from repro.metrics.report import RunMetrics
from repro.metrics.utilization import decay_ratio, mean_phase_utilization
from repro.models.costs import decode_step_cost, prefill_cost
from repro.models.zoo import get_model, model_pair
from repro.search.registry import build_algorithm
from repro.search.tree import prompt_segment_id, step_segment_id
from repro.utils.rng import KeyedRng
from repro.utils.tables import render_table
from repro.workloads.datasets import build_dataset

__all__ = [
    "fig1b_frontier",
    "fig3_tts_methods",
    "fig3_step_lengths",
    "fig4_phase_utilization",
    "fig5_prefix_sharing",
    "fig6_kv_throughput",
    "fig10_allocation_sweep",
    "fig11_search_variants",
    "fig12_goodput_grid",
    "fig13_latency_grid",
    "fig14_accuracy",
    "fig15_generality",
    "fig16_ablation",
    "fig17_speculation",
    "fig18_prefix_memory",
    "CLOUD_REFERENCES",
]

# Fig. 1b reference points, as reported by the paper (cloud latency is the
# first-answer latency of GPT-o3-pro / GPT-5 thinking models; accuracy is
# GPT-o1-preview on AIME). These are plot constants, not measurements.
CLOUD_REFERENCES = {
    "cloud_accuracy": 0.447,
    "cloud_latency_s": 110.0,
    "baseline_vllm_latency_s": 200.0,
}


def fig1b_frontier(n_values=(16, 64), problems: int = 2, seed: int = 0) -> dict:
    """Latency-vs-accuracy frontier: FastTTS pushes the baseline's curve."""
    spec = ExperimentSpec(
        dataset_name="aime24", dataset_size=problems, model_config="1.5B+1.5B", seed=seed
    )
    pairs = sweep_n(spec, list(n_values))
    rows = []
    for pair in pairs:
        rows.append(
            [
                pair.spec.n,
                round(pair.baseline.latency.total, 1),
                round(pair.fasttts.latency.total, 1),
                round(pair.baseline.top1_accuracy, 3),
                round(pair.fasttts.top1_accuracy, 3),
            ]
        )
    table = render_table(
        ["n", "baseline latency s", "fasttts latency s", "baseline acc", "fasttts acc"],
        rows,
        title="Fig 1b: latency/accuracy frontier (AIME, 1.5B+1.5B)",
    )
    return {"pairs": pairs, "rows": rows, "table": table, "cloud": CLOUD_REFERENCES}


def fig3_tts_methods(n: int = 16, problems: int = 4, seed: int = 0) -> dict:
    """Accuracy vs latency of BoN / Beam Search / DVTS on MATH-500."""
    results: dict[str, RunMetrics] = {}
    spec = ExperimentSpec(
        dataset_name="math500", dataset_size=problems, model_config="1.5B+1.5B",
        n=n, seed=seed,
    )
    dataset = spec.build_dataset()
    for algorithm in ("best_of_n", "beam_search", "dvts"):
        algo_spec = replace(spec, algorithm=algorithm)
        metrics, _ = run_metrics(algo_spec, algo_spec.build_config(fast=False), dataset)
        results[algorithm] = metrics
    rows = [
        [name, round(m.latency.total, 1), round(m.top1_accuracy, 3)]
        for name, m in results.items()
    ]
    table = render_table(
        ["method", "latency s", "top1 acc"],
        rows,
        title="Fig 3 (left): TTS methods on MATH-500 (baseline serving)",
    )
    return {"metrics": results, "rows": rows, "table": table}


def fig3_step_lengths(
    n_paths: int = 64, max_steps: int = 10, seed: int = 0
) -> dict:
    """Avg and max token count per generation step on AIME (Fig. 3 right)."""
    dataset = build_dataset("aime24", seed=seed, size=4)
    from repro.llm.generator import SimulatedGenerator

    generator = SimulatedGenerator(get_model("qwen2.5-math-1.5b"), dataset, KeyedRng(seed))
    per_step_avg, per_step_max = [], []
    for step_idx in range(max_steps):
        lengths = [
            generator.plan_step(problem, (i,) * (step_idx + 1), step_idx).n_tokens
            for problem in dataset
            for i in range(n_paths // len(dataset))
        ]
        per_step_avg.append(float(np.mean(lengths)))
        per_step_max.append(float(np.max(lengths)))
    rows = [
        [s + 1, round(a, 1), m]
        for s, (a, m) in enumerate(zip(per_step_avg, per_step_max))
    ]
    table = render_table(
        ["step", "avg tokens", "max tokens"],
        rows,
        title="Fig 3 (right): token count per generation step (AIME, 1.5B)",
    )
    return {"avg": per_step_avg, "max": per_step_max, "rows": rows, "table": table}


def fig4_phase_utilization(n: int = 32, seed: int = 0) -> dict:
    """GPU occupancy: decaying during generation, flat-high in verification."""
    spec = ExperimentSpec(dataset_name="aime24", dataset_size=1, n=n, seed=seed)
    result = run_problem(spec, spec.build_config(fast=False))
    gen_util = mean_phase_utilization(result.util_spans, Phase.GENERATION)
    ver_util = mean_phase_utilization(result.util_spans, Phase.VERIFICATION)
    gen_decay = decay_ratio(result.util_spans, Phase.GENERATION)
    table = render_table(
        ["phase", "mean occupancy", "end/start occupancy"],
        [
            ["generation", round(gen_util, 3), round(gen_decay, 3)],
            ["verification", round(ver_util, 3), 1.0],
        ],
        title="Fig 4: batch occupancy by phase (baseline, beam search)",
    )
    return {
        "generation_util": gen_util,
        "verification_util": ver_util,
        "generation_decay": gen_decay,
        "spans": result.util_spans,
        "table": table,
    }


def _tree_from_trace(problem, trace, round_idx: int) -> tuple[RadixTree, list[int]]:
    """Radix tree + active leaf segments at one round of a reference trace."""
    tree = RadixTree()
    root = prompt_segment_id(problem)
    tree.add_node(root, None, problem.prompt_tokens)
    leaves = []
    for lineage in trace.rounds[round_idx]:
        parent = root
        for i in range(len(lineage)):
            seg = step_segment_id(problem, lineage, i)
            if seg not in tree:
                tree.add_node(seg, parent, 1)
            parent = seg
        leaves.append(parent)
    return tree, leaves


def fig5_prefix_sharing(n: int = 64, seed: int = 0) -> dict:
    """Beams-in-memory with and without prefix caching, per iteration."""
    dataset = build_dataset("aime24", seed=seed, size=1)
    problem = list(dataset)[0]
    series = {}
    for name in ("beam_search", "dvts"):
        trace = pure_search(problem, dataset, build_algorithm(name, n), seed=seed)
        shared, private = [], []
        for r, lineages in enumerate(trace.rounds):
            unique_nodes = {
                (lineage[: i + 1], i) for lineage in lineages for i in range(len(lineage))
            }
            shared.append(len(unique_nodes))
            private.append(sum(len(lineage) for lineage in lineages))
        series[name] = {"with_cache": shared, "without_cache": private}
    rows = []
    beam = series["beam_search"]
    for r in range(len(beam["with_cache"])):
        rows.append([r + 1, beam["with_cache"][r], beam["without_cache"][r]])
    table = render_table(
        ["iteration", "beams in memory (cached)", "beams in memory (no cache)"],
        rows,
        title="Fig 5 (left): prefix-cache sharing (beam search)",
    )
    return {"series": series, "rows": rows, "table": table}


def fig6_kv_throughput(seed: int = 0) -> dict:
    """Normalized throughput vs KV size: prefill saturates far earlier."""
    model = get_model("qwen2.5-math-1.5b")
    roofline = Roofline(get_device("rtx4090"))
    kv_sizes_gb = np.logspace(-2, np.log10(16), 24)
    prefill_seq, decode_seq = 640, 512
    prefill_tp, decode_tp = [], []
    for kv_gb in kv_sizes_gb:
        kv_bytes = int(kv_gb * 1024**3)
        b_pre = max(1, kv_bytes // (prefill_seq * model.kv_bytes_per_token))
        cost = prefill_cost(model, b_pre, prefill_seq)
        prefill_tp.append(b_pre * prefill_seq / roofline.latency(cost.flops, cost.bytes))
        b_dec = max(1, kv_bytes // (decode_seq * model.kv_bytes_per_token))
        cost = decode_step_cost(model, b_dec, decode_seq / 2)
        decode_tp.append(b_dec / roofline.latency(cost.flops, cost.bytes))
    prefill_norm = np.asarray(prefill_tp) / max(prefill_tp)
    decode_norm = np.asarray(decode_tp) / max(decode_tp)

    def crossing(norm):
        idx = int(np.argmax(norm >= 0.8))
        return float(kv_sizes_gb[idx])

    table = render_table(
        ["stage", "KV GB to reach 80% of peak"],
        [["prefill", round(crossing(prefill_norm), 2)],
         ["decoding", round(crossing(decode_norm), 2)]],
        title="Fig 6: throughput saturation vs KV cache size",
    )
    return {
        "kv_gb": kv_sizes_gb.tolist(),
        "prefill_norm": prefill_norm.tolist(),
        "decode_norm": decode_norm.tolist(),
        "prefill_80_gb": crossing(prefill_norm),
        "decode_80_gb": crossing(decode_norm),
        "table": table,
    }


def fig10_allocation_sweep(n: int = 128, seed: int = 0) -> dict:
    """Optimal prefill/decode batch sizes across KV budgets (Fig. 10)."""
    dataset = build_dataset("aime24", seed=seed, size=1)
    generator, verifier = model_pair("1.5B+1.5B")
    device = get_device("rtx4090")
    allocator = RooflineAllocator(verifier, generator, Roofline(device), OffloadLink(device))
    profile = WorkloadProfile.from_dataset(dataset, n)
    floor_gb = (
        profile.max_path_tokens
        * (generator.kv_bytes_per_token + verifier.kv_bytes_per_token)
        / 1024**3
    )
    budgets_gb = [g for g in (1.0, 2.0, 4.0, 8.0, 16.0) if g > floor_gb]
    rows, plans = [], []
    for budget_gb in budgets_gb:
        plan = allocator.search(profile, int(budget_gb * 1024**3))
        plans.append(plan)
        rows.append(
            [budget_gb, plan.b_pre, plan.b_dec, round(1.0 / plan.est_total_time, 3)]
        )
    best_tp = max(row[3] for row in rows)
    for row in rows:
        row[3] = round(row[3] / best_tp, 3)
    table = render_table(
        ["KV budget GB", "B_pre", "B_dec", "normalized throughput"],
        rows,
        title="Fig 10: roofline-guided KV allocation",
    )
    return {"plans": plans, "rows": rows, "table": table}


def fig11_search_variants(
    n_values=(8, 32), problems: int = 2, seed: int = 0
) -> dict:
    """Goodput across search-algorithm variants, baseline vs FastTTS."""
    variants = ("beam_search", "dvts", "dynamic_branching", "varying_granularity")
    results: dict[str, list[PairResult]] = {}
    for variant in variants:
        spec = ExperimentSpec(
            dataset_name="aime24", dataset_size=problems,
            model_config="1.5B+1.5B", algorithm=variant, seed=seed,
        )
        results[variant] = sweep_n(spec, list(n_values))
    rows = [
        [variant, pair.spec.n, round(pair.baseline.goodput, 2),
         round(pair.fasttts.goodput, 2), round(pair.goodput_gain, 2)]
        for variant, pairs in results.items()
        for pair in pairs
    ]
    table = render_table(
        ["variant", "n", "baseline tok/s", "fasttts tok/s", "gain x"],
        rows,
        title="Fig 11: goodput across search variants (AIME, 1.5B+1.5B)",
    )
    return {"results": results, "rows": rows, "table": table}


def _main_grid(
    n_values, problems, seed, datasets=("aime24", "amc23"),
    configs=("1.5B+1.5B", "1.5B+7B", "7B+1.5B"),
) -> list[PairResult]:
    pairs = []
    for dataset_name in datasets:
        for model_config in configs:
            spec = ExperimentSpec(
                dataset_name=dataset_name, dataset_size=problems,
                model_config=model_config, seed=seed,
            )
            pairs.extend(sweep_n(spec, list(n_values)))
    return pairs


def fig12_goodput_grid(n_values=(8, 64), problems: int = 2, seed: int = 0) -> dict:
    """The main result: goodput across configs x datasets x n (Fig. 12)."""
    pairs = _main_grid(n_values, problems, seed)
    rows = [pair.summary_row() for pair in pairs]
    gains = [pair.goodput_gain for pair in pairs]
    table = render_table(
        ["config", "dataset", "algorithm", "n", "baseline tok/s",
         "fasttts tok/s", "gain x", "latency -%"],
        rows,
        title="Fig 12: FastTTS goodput improvement",
    )
    return {
        "pairs": pairs,
        "rows": rows,
        "table": table,
        "mean_gain": float(np.mean(gains)),
        "max_gain": float(np.max(gains)),
    }


def fig13_latency_grid(n_values=(8, 64), problems: int = 2, seed: int = 0) -> dict:
    """Completion latency and its generator/verifier breakdown (Fig. 13)."""
    pairs = _main_grid(n_values, problems, seed)
    rows = []
    for pair in pairs:
        rows.append(
            [
                pair.spec.model_config,
                pair.spec.dataset_name,
                pair.spec.n,
                round(pair.baseline.latency.total, 1),
                round(pair.fasttts.latency.total, 1),
                round(pair.latency_reduction * 100, 1),
                round(pair.generator_latency_reduction * 100, 1),
                round(pair.verifier_latency_reduction * 100, 1),
            ]
        )
    table = render_table(
        ["config", "dataset", "n", "baseline s", "fasttts s",
         "latency -%", "gen -%", "verifier -%"],
        rows,
        title="Fig 13: completion latency improvement",
    )
    reductions = [pair.latency_reduction for pair in pairs]
    return {
        "pairs": pairs,
        "rows": rows,
        "table": table,
        "mean_latency_reduction": float(np.mean(reductions)),
    }


def fig14_accuracy(n: int = 64, problems: int = 4, seed: int = 0) -> dict:
    """Top-1 and Pass@N: FastTTS matches the baseline (Sec. 6.3)."""
    rows_top1, rows_pass = [], []
    pass_points = (1, 4, 16, 64)
    outcomes = {}
    for model_config in ("1.5B+7B", "7B+1.5B", "1.5B+1.5B"):
        for dataset_name in ("aime24", "amc23"):
            spec = ExperimentSpec(
                dataset_name=dataset_name, dataset_size=problems,
                model_config=model_config, n=n, seed=seed,
            )
            pair = run_pair(spec)
            outcomes[(model_config, dataset_name)] = pair
            rows_top1.append(
                [model_config, dataset_name,
                 round(pair.baseline.top1_accuracy, 3),
                 round(pair.fasttts.top1_accuracy, 3)]
            )
            for k in pass_points:
                if k <= n:
                    rows_pass.append(
                        [model_config, dataset_name, k,
                         round(pair.baseline.pass_at.get(k, 0.0), 3),
                         round(pair.fasttts.pass_at.get(k, 0.0), 3)]
                    )
    table = render_table(
        ["config", "dataset", "baseline top1", "fasttts top1"],
        rows_top1,
        title=f"Fig 14a: Top-1 accuracy (n={n})",
    )
    table_pass = render_table(
        ["config", "dataset", "N", "baseline pass@N", "fasttts pass@N"],
        rows_pass,
        title="Fig 14b: Pass@N accuracy",
    )
    return {
        "outcomes": outcomes,
        "rows_top1": rows_top1,
        "rows_pass": rows_pass,
        "table": table,
        "table_pass": table_pass,
    }


def fig15_generality(n_values=(8, 32), problems: int = 2, seed: int = 0) -> dict:
    """Constrained GPUs (3070 Ti with offloading, 4070 Ti) plus HumanEval."""
    scenarios = [
        ("rtx3070ti", "aime24", "1.5B+1.5B", 0.95),
        ("rtx4070ti", "aime24", "1.5B+1.5B", 0.90),
        ("rtx4090", "humaneval", "1.5B+1.5B", 0.40),
    ]
    rows, pairs_by_scenario = [], {}
    for device, dataset_name, model_config, fraction in scenarios:
        spec = ExperimentSpec(
            dataset_name=dataset_name, dataset_size=problems,
            model_config=model_config, device_name=device,
            memory_fraction=fraction, seed=seed,
        )
        pairs = sweep_n(spec, list(n_values))
        pairs_by_scenario[(device, dataset_name)] = pairs
        for pair in pairs:
            rows.append(
                [device, dataset_name, pair.spec.n,
                 round(pair.baseline.goodput, 2), round(pair.fasttts.goodput, 2),
                 round(pair.goodput_gain, 2)]
            )
    table = render_table(
        ["device", "dataset", "n", "baseline tok/s", "fasttts tok/s", "gain x"],
        rows,
        title="Fig 15: generality across hardware and benchmarks",
    )
    return {"pairs": pairs_by_scenario, "rows": rows, "table": table}


def fig16_ablation(n: int = 32, problems: int = 2, seed: int = 0) -> dict:
    """Cumulative goodput gain of P, M+P, S+M+P over the baseline."""
    stages = {
        "P": dict(prefix_caching=True, prefix_aware=True),
        "M+P": dict(prefix_caching=True, prefix_aware=True, asymmetric_alloc=True),
        "S+M+P": dict(
            prefix_caching=True, prefix_aware=True, asymmetric_alloc=True,
            speculation=True, lookahead=True,
        ),
    }
    results = {}
    rows = []
    for model_config in ("1.5B+1.5B", "1.5B+7B", "7B+1.5B"):
        spec = ExperimentSpec(
            dataset_name="aime24", dataset_size=problems,
            model_config=model_config, n=n, seed=seed,
        )
        dataset = spec.build_dataset()
        base_metrics, _ = run_metrics(spec, spec.build_config(fast=False), dataset)
        gains = {}
        for stage_name, flags in stages.items():
            config = spec.build_config(fast=False, **flags)
            metrics, _ = run_metrics(spec, config, dataset)
            gains[stage_name] = metrics.goodput / base_metrics.goodput - 1.0
        results[model_config] = gains
        rows.append(
            [model_config]
            + [round(gains[s] * 100, 1) for s in ("P", "M+P", "S+M+P")]
        )
    table = render_table(
        ["config", "P gain %", "M+P gain %", "S+M+P gain %"],
        rows,
        title=f"Fig 16: cumulative goodput gain breakdown (AIME, n={n})",
    )
    return {"results": results, "rows": rows, "table": table}


def fig17_speculation(
    n: int = 32, problems: int = 2, seed: int = 0, ratios=(0.0, 0.85)
) -> dict:
    """Speculative Beam Extension: occupancy traces + truncation-ratio sweep."""
    spec = ExperimentSpec(
        dataset_name="aime24", dataset_size=1, model_config="1.5B+1.5B",
        n=n, seed=seed,
    )
    dataset = spec.build_dataset()
    base_result = run_problem(spec, spec.build_config(fast=False), dataset=dataset)
    fast_result = run_problem(spec, spec.build_config(fast=True), dataset=dataset)
    base_util = mean_phase_utilization(base_result.util_spans, Phase.GENERATION)
    fast_util = mean_phase_utilization(fast_result.util_spans, Phase.GENERATION)

    sweep_rows = []
    goodputs = {}
    for dataset_name in ("aime24", "amc23"):
        for ratio in ratios:
            r_spec = ExperimentSpec(
                dataset_name=dataset_name, dataset_size=problems,
                model_config="1.5B+1.5B", n=n, seed=seed,
            )
            metrics, _ = run_metrics(
                r_spec,
                r_spec.build_config(fast=True, spec_truncation_ratio=ratio),
            )
            goodputs[(dataset_name, ratio)] = metrics.goodput
            sweep_rows.append([dataset_name, ratio, round(metrics.goodput, 2)])
    table = render_table(
        ["dataset", "R", "goodput tok/s"],
        sweep_rows,
        title="Fig 17 (right): impact of the truncation ratio R",
    )
    return {
        "baseline_generation_util": base_util,
        "fasttts_generation_util": fast_util,
        "goodputs": goodputs,
        "rows": sweep_rows,
        "table": table,
    }


def fig18_prefix_memory(n: int = 64, seed: int = 0, capacities=(16, 32, 64)) -> dict:
    """Scheduling-order effect on eviction + memory-dependence of P / M+P."""
    dataset = build_dataset("aime24", seed=seed, size=1)
    problem = list(dataset)[0]
    trace = pure_search(problem, dataset, build_algorithm("beam_search", n), seed=seed)
    final_round = len(trace.rounds) - 1
    tree, leaves = _tree_from_trace(problem, trace, final_round)
    items = list(leaves)
    rng = KeyedRng(seed)

    orders = {
        "prefix_aware": greedy_order(items, tree, lambda x: x),
        "lineage_grouped": lineage_order(items, lambda leaf: tuple(tree.path(leaf))),
        "random": random_order(items, rng),
        "worst_case": worst_case_order(items, tree, lambda x: x),
    }
    rows = []
    costs: dict[str, dict[int, int]] = {}
    for name, order in orders.items():
        costs[name] = {
            cap: eviction_cost(order, tree, lambda x: x, cap) for cap in capacities
        }
        rows.append([name] + [costs[name][cap] for cap in capacities])
    table = render_table(
        ["order"] + [f"evictions @cap={c}" for c in capacities],
        rows,
        title="Fig 18 (left): eviction cost by scheduling order",
    )

    gain_rows = []
    device = get_device("rtx4090")
    weights = 2 * 1_540_000_000 * 2  # both 1.5B models at fp16
    for kv_gb, label in ((1.2, "scarce"), (14.0, "ample")):
        fraction = min(1.0, (weights + kv_gb * 1024**3) / device.usable_bytes)
        spec = ExperimentSpec(
            dataset_name="aime24", dataset_size=1, model_config="1.5B+1.5B",
            n=128, seed=seed, memory_fraction=fraction,
        )
        ds = spec.build_dataset()
        # Baseline here has caching but naive (shuffled) scheduling —
        # isolating the *ordering* gain, as the paper's Fig. 18 does.
        base, _ = run_metrics(
            spec, spec.build_config(fast=False, prefix_caching=True), ds
        )
        p_only, _ = run_metrics(
            spec,
            spec.build_config(fast=False, prefix_caching=True, prefix_aware=True),
            ds,
        )
        mp, _ = run_metrics(
            spec,
            spec.build_config(
                fast=False, prefix_caching=True, prefix_aware=True,
                asymmetric_alloc=True,
            ),
            ds,
        )
        gain_rows.append(
            [label, round((p_only.goodput / base.goodput - 1) * 100, 1),
             round((mp.goodput / base.goodput - 1) * 100, 1)]
        )
    gain_table = render_table(
        ["memory", "P gain %", "M+P gain %"],
        gain_rows,
        title="Fig 18 (right): optimization gains vs memory availability",
    )
    return {
        "costs": costs,
        "rows": rows,
        "table": table,
        "gain_rows": gain_rows,
        "gain_table": gain_table,
    }
