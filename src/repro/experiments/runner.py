"""Experiment orchestration shared by the benchmark harness and examples.

One :class:`ExperimentSpec` names everything a run needs; ``run_metrics``
executes it and aggregates; ``run_pair`` produces the baseline-vs-FastTTS
comparison almost every figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import ServerConfig, baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.metrics.report import ProblemRunResult, RunMetrics
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset
from repro.workloads.problem import Dataset

__all__ = ["ExperimentSpec", "run_metrics", "run_pair", "PairResult", "MEMORY_FRACTIONS"]

# The paper's per-configuration memory settings (Sec. 6.1): the two heavy
# pairings get 90% of GPU memory to test throughput limits; the 1.5B+1.5B
# pairing is deliberately restricted to 40% to emulate scarce memory.
MEMORY_FRACTIONS = {
    "1.5B+1.5B": 0.40,
    "1.5B+7B": 0.90,
    "7B+1.5B": 0.90,
}


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One serving experiment: workload x algorithm x system."""

    dataset_name: str = "aime24"
    dataset_size: int = 2
    model_config: str = "1.5B+1.5B"
    device_name: str = "rtx4090"
    algorithm: str = "beam_search"
    n: int = 16
    seed: int = 0
    memory_fraction: float | None = None  # None = the paper's per-config value
    algorithm_kwargs: dict = field(default_factory=dict)

    def resolve_memory_fraction(self) -> float:
        if self.memory_fraction is not None:
            return self.memory_fraction
        return MEMORY_FRACTIONS.get(self.model_config, 0.9)

    def build_dataset(self) -> Dataset:
        return build_dataset(self.dataset_name, seed=self.seed, size=self.dataset_size)

    def build_config(self, fast: bool, **overrides) -> ServerConfig:
        base_kwargs = dict(
            device_name=self.device_name,
            model_config=self.model_config,
            memory_fraction=self.resolve_memory_fraction(),
            seed=self.seed,
        )
        base_kwargs.update(overrides)
        return fasttts_config(**base_kwargs) if fast else baseline_config(**base_kwargs)


def run_metrics(
    spec: ExperimentSpec,
    config: ServerConfig,
    dataset: Dataset | None = None,
) -> tuple[RunMetrics, list[ProblemRunResult]]:
    """Run one server over the spec's dataset and aggregate."""
    data = dataset if dataset is not None else spec.build_dataset()
    server = TTSServer(config, data)
    algorithm = build_algorithm(spec.algorithm, spec.n, **spec.algorithm_kwargs)
    results = server.run(list(data), algorithm)
    return RunMetrics.aggregate(results), results


@dataclass(frozen=True, slots=True)
class PairResult:
    """Baseline vs FastTTS on the same workload."""

    spec: ExperimentSpec
    baseline: RunMetrics
    fasttts: RunMetrics

    @property
    def goodput_gain(self) -> float:
        if self.baseline.goodput == 0:
            return float("inf")
        return self.fasttts.goodput / self.baseline.goodput

    @property
    def latency_reduction(self) -> float:
        """Fractional end-to-end latency saved by FastTTS (0..1)."""
        if self.baseline.latency.total == 0:
            return 0.0
        return 1.0 - self.fasttts.latency.total / self.baseline.latency.total

    @property
    def verifier_latency_reduction(self) -> float:
        if self.baseline.latency.verification == 0:
            return 0.0
        return 1.0 - (
            self.fasttts.latency.verification / self.baseline.latency.verification
        )

    @property
    def generator_latency_reduction(self) -> float:
        if self.baseline.latency.generation == 0:
            return 0.0
        return 1.0 - (
            self.fasttts.latency.generation / self.baseline.latency.generation
        )

    def summary_row(self) -> list[object]:
        return [
            self.spec.model_config,
            self.spec.dataset_name,
            self.spec.algorithm,
            self.spec.n,
            round(self.baseline.goodput, 2),
            round(self.fasttts.goodput, 2),
            round(self.goodput_gain, 2),
            round(self.latency_reduction * 100, 1),
        ]


def run_pair(
    spec: ExperimentSpec,
    baseline_overrides: dict | None = None,
    fast_overrides: dict | None = None,
) -> PairResult:
    """Run the baseline and FastTTS on identical workloads."""
    dataset = spec.build_dataset()
    base_cfg = spec.build_config(fast=False, **(baseline_overrides or {}))
    fast_cfg = spec.build_config(fast=True, **(fast_overrides or {}))
    base_metrics, _ = run_metrics(spec, base_cfg, dataset)
    fast_metrics, _ = run_metrics(spec, fast_cfg, dataset)
    return PairResult(spec=spec, baseline=base_metrics, fasttts=fast_metrics)


def sweep_n(
    spec: ExperimentSpec,
    n_values: list[int],
    **pair_kwargs,
) -> list[PairResult]:
    """The figures' common x-axis: a sweep over the number of beams."""
    return [run_pair(replace(spec, n=n), **pair_kwargs) for n in n_values]
