"""Experiment orchestration shared by the benchmark harness and examples.

One :class:`ExperimentSpec` names everything a run needs; ``run_metrics``
executes it and aggregates; ``run_pair`` produces the baseline-vs-FastTTS
comparison almost every figure reports; ``run_problem`` solves a single
problem of the spec's dataset (the per-problem deep dives).

Every entry point routes through the *active orchestrator* when one is
installed (see :mod:`repro.experiments.parallel`): a process-pool
orchestrator shards cells across workers and answers repeats from its
on-disk result cache, without the call sites changing. Because every
stochastic quantity in the simulation is hash-keyed (:mod:`repro.utils.rng`),
a cell's result is a pure function of ``(spec, config)`` — parallel and
cached runs are bit-identical to sequential ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import ServerConfig, baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.metrics.goodput import format_gain, throughput_gain
from repro.metrics.report import ProblemRunResult, RunMetrics
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset
from repro.workloads.problem import Dataset

__all__ = [
    "ExperimentSpec",
    "run_metrics",
    "run_pair",
    "run_problem",
    "sweep_n",
    "PairResult",
    "MEMORY_FRACTIONS",
    "active_orchestrator",
    "set_active_orchestrator",
]

# The paper's per-configuration memory settings (Sec. 6.1): the two heavy
# pairings get 90% of GPU memory to test throughput limits; the 1.5B+1.5B
# pairing is deliberately restricted to 40% to emulate scarce memory.
MEMORY_FRACTIONS = {
    "1.5B+1.5B": 0.40,
    "1.5B+7B": 0.90,
    "7B+1.5B": 0.90,
}

# The active orchestrator, installed by repro.experiments.parallel. ``None``
# means direct sequential execution in this process.
_ACTIVE_ORCHESTRATOR = None


def set_active_orchestrator(orchestrator):
    """Install an orchestrator for all runner entry points; returns the old one."""
    global _ACTIVE_ORCHESTRATOR
    previous = _ACTIVE_ORCHESTRATOR
    _ACTIVE_ORCHESTRATOR = orchestrator
    return previous


def active_orchestrator():
    """The orchestrator currently routing runner calls, or ``None``."""
    return _ACTIVE_ORCHESTRATOR


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One serving experiment: workload x algorithm x system."""

    dataset_name: str = "aime24"
    dataset_size: int = 2
    model_config: str = "1.5B+1.5B"
    device_name: str = "rtx4090"
    algorithm: str = "beam_search"
    n: int = 16
    seed: int = 0
    memory_fraction: float | None = None  # None = the paper's per-config value
    algorithm_kwargs: dict = field(default_factory=dict)

    def resolve_memory_fraction(self) -> float:
        if self.memory_fraction is not None:
            return self.memory_fraction
        return MEMORY_FRACTIONS.get(self.model_config, 0.9)

    def build_dataset(self) -> Dataset:
        return build_dataset(self.dataset_name, seed=self.seed, size=self.dataset_size)

    def build_algorithm(self):
        return build_algorithm(self.algorithm, self.n, **self.algorithm_kwargs)

    def build_config(self, fast: bool, **overrides) -> ServerConfig:
        base_kwargs = dict(
            device_name=self.device_name,
            model_config=self.model_config,
            memory_fraction=self.resolve_memory_fraction(),
            seed=self.seed,
        )
        base_kwargs.update(overrides)
        return fasttts_config(**base_kwargs) if fast else baseline_config(**base_kwargs)


def run_metrics(
    spec: ExperimentSpec,
    config: ServerConfig,
    dataset: Dataset | None = None,
) -> tuple[RunMetrics, list[ProblemRunResult]]:
    """Run one server over the spec's dataset and aggregate.

    With an active orchestrator the cell may be answered from the result
    cache, in which case the per-problem result list is empty (only the
    aggregate is cached).
    """
    if _ACTIVE_ORCHESTRATOR is not None:
        return _ACTIVE_ORCHESTRATOR.run_metrics(spec, config, dataset)
    return run_metrics_sequential(spec, config, dataset)


def run_metrics_sequential(
    spec: ExperimentSpec,
    config: ServerConfig,
    dataset: Dataset | None = None,
) -> tuple[RunMetrics, list[ProblemRunResult]]:
    """The direct in-process execution path (never consults an orchestrator)."""
    data = dataset if dataset is not None else spec.build_dataset()
    server = TTSServer(config, data)
    results = server.run(list(data), spec.build_algorithm())
    return RunMetrics.aggregate(results), results


def run_problem(
    spec: ExperimentSpec,
    config: ServerConfig,
    problem_index: int = 0,
    dataset: Dataset | None = None,
) -> ProblemRunResult:
    """Solve one problem of the spec's dataset (cached when orchestrated)."""
    if _ACTIVE_ORCHESTRATOR is not None:
        return _ACTIVE_ORCHESTRATOR.run_problem(spec, config, problem_index, dataset)
    return run_problem_sequential(spec, config, problem_index, dataset)


def run_problem_sequential(
    spec: ExperimentSpec,
    config: ServerConfig,
    problem_index: int = 0,
    dataset: Dataset | None = None,
) -> ProblemRunResult:
    data = dataset if dataset is not None else spec.build_dataset()
    problems = list(data)
    if not 0 <= problem_index < len(problems):
        raise IndexError(
            f"problem_index {problem_index} out of range for a dataset of "
            f"{len(problems)} problems"
        )
    server = TTSServer(config, data)
    return server.solve(problems[problem_index], spec.build_algorithm())


@dataclass(frozen=True, slots=True)
class PairResult:
    """Baseline vs FastTTS on the same workload."""

    spec: ExperimentSpec
    baseline: RunMetrics
    fasttts: RunMetrics

    @property
    def goodput_gain(self) -> float:
        return throughput_gain(self.fasttts.goodput, self.baseline.goodput)

    @property
    def latency_reduction(self) -> float:
        """Fractional end-to-end latency saved by FastTTS (0..1)."""
        if self.baseline.latency.total == 0:
            return 0.0
        return 1.0 - self.fasttts.latency.total / self.baseline.latency.total

    @property
    def verifier_latency_reduction(self) -> float:
        if self.baseline.latency.verification == 0:
            return 0.0
        return 1.0 - (
            self.fasttts.latency.verification / self.baseline.latency.verification
        )

    @property
    def generator_latency_reduction(self) -> float:
        if self.baseline.latency.generation == 0:
            return 0.0
        return 1.0 - (
            self.fasttts.latency.generation / self.baseline.latency.generation
        )

    def summary_row(self) -> list[object]:
        return [
            self.spec.model_config,
            self.spec.dataset_name,
            self.spec.algorithm,
            self.spec.n,
            round(self.baseline.goodput, 2),
            round(self.fasttts.goodput, 2),
            format_gain(self.goodput_gain),
            round(self.latency_reduction * 100, 1),
        ]


def run_pair(
    spec: ExperimentSpec,
    baseline_overrides: dict | None = None,
    fast_overrides: dict | None = None,
    dataset: Dataset | None = None,
) -> PairResult:
    """Run the baseline and FastTTS on identical workloads."""
    if _ACTIVE_ORCHESTRATOR is not None:
        return _ACTIVE_ORCHESTRATOR.run_pair(
            spec, baseline_overrides, fast_overrides, dataset
        )
    return run_pair_sequential(spec, baseline_overrides, fast_overrides, dataset)


def run_pair_sequential(
    spec: ExperimentSpec,
    baseline_overrides: dict | None = None,
    fast_overrides: dict | None = None,
    dataset: Dataset | None = None,
) -> PairResult:
    data = dataset if dataset is not None else spec.build_dataset()
    base_cfg = spec.build_config(fast=False, **(baseline_overrides or {}))
    fast_cfg = spec.build_config(fast=True, **(fast_overrides or {}))
    base_metrics, _ = run_metrics_sequential(spec, base_cfg, data)
    fast_metrics, _ = run_metrics_sequential(spec, fast_cfg, data)
    return PairResult(spec=spec, baseline=base_metrics, fasttts=fast_metrics)


def sweep_n(
    spec: ExperimentSpec,
    n_values: list[int],
    **pair_kwargs,
) -> list[PairResult]:
    """The figures' common x-axis: a sweep over the number of beams.

    The dataset is built once per sweep and threaded through every pair:
    ``n`` never changes the problem set, so all points see the identical
    workload by construction, and the sweep skips redundant dataset
    synthesis.
    """
    if _ACTIVE_ORCHESTRATOR is not None:
        return _ACTIVE_ORCHESTRATOR.sweep_n(spec, n_values, **pair_kwargs)
    dataset = pair_kwargs.pop("dataset", None) or spec.build_dataset()
    return [
        run_pair_sequential(replace(spec, n=n), dataset=dataset, **pair_kwargs)
        for n in n_values
    ]
