"""Exception hierarchy for the FastTTS reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause while still
letting programming errors (``TypeError``, ``ValueError`` from misuse of the
standard library) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CapacityError(ReproError):
    """A memory pool or batch could not satisfy an allocation request."""


class SchedulingError(ReproError):
    """The scheduler was driven into an inconsistent state."""


class SearchError(ReproError):
    """A test-time-scaling search algorithm failed or was misconfigured."""


class FaultError(ReproError):
    """A fault-injection operation was applied to a lane in the wrong state."""


class RetryExhaustedError(FaultError):
    """A request's per-request retry budget was spent without a completion."""


class ModelLookupError(ReproError, KeyError):
    """An unknown model or device name was requested from a registry."""
