"""FLOPs and byte-traffic cost functions for prefill and decode.

These are the quantities the roofline model consumes. The approximations
are the standard ones used in serving-system papers (and in the paper's own
Sec. 4.3.1 formulation):

* linear layers move ~2 FLOPs per parameter per token;
* attention adds ``4 * n_layers * n_heads * head_dim`` FLOPs per token per
  cached position (QK^T plus AV);
* a decode step reads the full weights once plus every resident KV byte in
  the batch — which is why decode is memory-bandwidth-bound and why idle
  batch slots (stragglers) waste nearly the full step cost;
* prefill reads the weights once for the whole chunk, so its arithmetic
  intensity grows with tokens-per-batch and it saturates compute quickly
  (Fig. 6 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.spec import ModelSpec

__all__ = ["StageCost", "prefill_cost", "decode_step_cost"]


@dataclass(frozen=True, slots=True)
class StageCost:
    """FLOPs and bytes of one engine step."""

    flops: float
    bytes: float

    def __add__(self, other: "StageCost") -> "StageCost":
        return StageCost(self.flops + other.flops, self.bytes + other.bytes)


def _linear_flops_per_token(model: ModelSpec) -> float:
    """Matmul FLOPs per token through all dense layers (~2 per parameter)."""
    return 2.0 * model.param_count


def _attention_flops_per_token(model: ModelSpec, context_len: float) -> float:
    """Score+value FLOPs one query token spends against ``context_len`` keys."""
    return 4.0 * model.n_layers * model.n_heads * model.head_dim * context_len


def prefill_cost(
    model: ModelSpec,
    batch_size: int,
    seq_len: int,
    cached_prefix_len: int = 0,
) -> StageCost:
    """Cost of prefilling ``batch_size`` sequences of ``seq_len`` new tokens.

    ``cached_prefix_len`` models prefix-cache hits: those tokens are not
    recomputed, but their KV must still be read by attention.

    Returns the cost of the whole batch as one kernel launch (vLLM fuses
    prefill across a batch the same way).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    if cached_prefix_len < 0:
        raise ValueError("cached_prefix_len must be non-negative")

    new_tokens = batch_size * seq_len
    linear = new_tokens * _linear_flops_per_token(model)
    # Each new token attends to the cached prefix plus, on average, half the
    # new chunk (causal mask): sum_{i=1..S} (C + i) ~= S*C + S^2/2.
    avg_context = cached_prefix_len + seq_len / 2.0
    attention = new_tokens * _attention_flops_per_token(model, avg_context)

    weight_traffic = model.weight_bytes
    kv_write = new_tokens * model.kv_bytes_per_token
    kv_read = batch_size * cached_prefix_len * model.kv_bytes_per_token
    return StageCost(flops=linear + attention, bytes=weight_traffic + kv_write + kv_read)


def decode_step_cost(
    model: ModelSpec,
    batch_size: int,
    avg_cache_len: float,
) -> StageCost:
    """Cost of one decode step generating one token per sequence.

    ``avg_cache_len`` is the mean resident context length across the batch.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if avg_cache_len < 0:
        raise ValueError("avg_cache_len must be non-negative")

    linear = batch_size * _linear_flops_per_token(model)
    attention = batch_size * _attention_flops_per_token(model, avg_cache_len)

    weight_traffic = model.weight_bytes
    kv_read = batch_size * avg_cache_len * model.kv_bytes_per_token
    kv_write = batch_size * model.kv_bytes_per_token
    return StageCost(flops=linear + attention, bytes=weight_traffic + kv_read + kv_write)
