"""Weight/KV quantization as a cost-model transform.

The paper notes FastTTS "is orthogonal to quantization and offloading
techniques, which can be incorporated for additional efficiency gains"
(Sec. 6.4). In this reproduction quantization is a pure cost transform:
narrower dtypes shrink weight traffic (faster memory-bound decode) and the
KV footprint (more resident beams). Accuracy effects of quantization are
*not* modeled — the latent quality model keys off parameter count only —
which matches how the paper treats it (a deployment knob, not part of the
contribution).
"""

from __future__ import annotations

from dataclasses import replace

from repro.models.spec import ModelSpec

__all__ = ["quantized", "DTYPE_BYTES"]

DTYPE_BYTES = {
    "fp16": 2,
    "bf16": 2,
    "int8": 1,
    "fp8": 1,
}


def quantized(model: ModelSpec, dtype: str) -> ModelSpec:
    """Return a copy of ``model`` deployed at the given dtype.

    >>> from repro.models import QWEN25_MATH_1P5B
    >>> q = quantized(QWEN25_MATH_1P5B, "int8")
    >>> q.weight_bytes == QWEN25_MATH_1P5B.weight_bytes // 2
    True
    """
    try:
        dtype_bytes = DTYPE_BYTES[dtype]
    except KeyError:
        known = ", ".join(sorted(DTYPE_BYTES))
        raise ValueError(f"unknown dtype {dtype!r}; known dtypes: {known}") from None
    if dtype == model.dtype:
        return model
    # Equal byte widths (fp16 -> bf16) still deserve a truthful name: lane
    # labels and metrics keys are derived from spec names. Strip any previous
    # quantization suffix so chained requantization does not stack suffixes.
    base = model.name
    suffix = f"-{model.dtype}"
    if base.endswith(suffix):
        base = base[: -len(suffix)]
    return replace(model, name=f"{base}-{dtype}", dtype=dtype, dtype_bytes=dtype_bytes)
