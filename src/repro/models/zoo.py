"""Model zoo: the generator and verifier models from the paper's artifact.

Sec. 6.1 / Appendix B.3.5 list four models:

* generators — ``Qwen/Qwen2.5-Math-1.5B-Instruct``,
  ``Qwen/Qwen2.5-Math-7B-Instruct``;
* verifiers  — ``peiyi9979/math-shepherd-mistral-7b-prm`` (Mistral-7B base),
  ``Skywork/Skywork-o1-Open-PRM-Qwen-2.5-1.5B`` (Qwen2.5-1.5B base).

Architecture geometry below is taken from the public HuggingFace configs of
those checkpoints; it fully determines per-token FLOPs and KV bytes.
"""

from __future__ import annotations

from repro.errors import ModelLookupError
from repro.models.spec import ModelRole, ModelSpec

__all__ = [
    "QWEN25_MATH_1P5B",
    "QWEN25_MATH_7B",
    "MATH_SHEPHERD_7B",
    "SKYWORK_PRM_1P5B",
    "get_model",
    "list_models",
    "register_model",
    "model_pair",
    "list_model_configs",
]

_REGISTRY: dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec) -> ModelSpec:
    """Add a model to the registry (idempotent for identical specs)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"model {spec.name!r} already registered with a different spec")
    _REGISTRY[spec.name] = spec
    return spec


def get_model(name: str) -> ModelSpec:
    """Look up a model by registry key."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelLookupError(f"unknown model {name!r}; known models: {known}") from None


def list_models() -> list[str]:
    """Sorted names of all registered models."""
    return sorted(_REGISTRY)


QWEN25_MATH_1P5B = register_model(
    ModelSpec(
        name="qwen2.5-math-1.5b",
        role=ModelRole.GENERATOR,
        param_count=1_540_000_000,
        n_layers=28,
        hidden_size=1536,
        n_heads=12,
        n_kv_heads=2,
        head_dim=128,
        intermediate_size=8960,
        vocab_size=151_936,
    )
)

QWEN25_MATH_7B = register_model(
    ModelSpec(
        name="qwen2.5-math-7b",
        role=ModelRole.GENERATOR,
        param_count=7_620_000_000,
        n_layers=28,
        hidden_size=3584,
        n_heads=28,
        n_kv_heads=4,
        head_dim=128,
        intermediate_size=18_944,
        vocab_size=152_064,
    )
)

MATH_SHEPHERD_7B = register_model(
    ModelSpec(
        name="math-shepherd-mistral-7b",
        role=ModelRole.VERIFIER,
        param_count=7_240_000_000,
        n_layers=32,
        hidden_size=4096,
        n_heads=32,
        n_kv_heads=8,
        head_dim=128,
        intermediate_size=14_336,
        vocab_size=32_000,
    )
)

SKYWORK_PRM_1P5B = register_model(
    ModelSpec(
        name="skywork-o1-prm-1.5b",
        role=ModelRole.VERIFIER,
        param_count=1_540_000_000,
        n_layers=28,
        hidden_size=1536,
        n_heads=12,
        n_kv_heads=2,
        head_dim=128,
        intermediate_size=8960,
        vocab_size=151_936,
    )
)

# The paper's three generator+verifier configurations (Sec. 6.1):
#   "1.5B+1.5B" memory-constrained, "1.5B+7B" verifier-heavy,
#   "7B+1.5B" generator-heavy.
_PAIRS: dict[str, tuple[str, str]] = {
    "1.5B+1.5B": ("qwen2.5-math-1.5b", "skywork-o1-prm-1.5b"),
    "1.5B+7B": ("qwen2.5-math-1.5b", "math-shepherd-mistral-7b"),
    "7B+1.5B": ("qwen2.5-math-7b", "skywork-o1-prm-1.5b"),
}


def list_model_configs() -> list[str]:
    """Sorted names of the paper's generator+verifier configurations."""
    return sorted(_PAIRS)


def model_pair(config: str) -> tuple[ModelSpec, ModelSpec]:
    """Return ``(generator, verifier)`` for a paper configuration name."""
    try:
        generator_name, verifier_name = _PAIRS[config]
    except KeyError:
        known = ", ".join(sorted(_PAIRS))
        raise ModelLookupError(f"unknown config {config!r}; known configs: {known}") from None
    return get_model(generator_name), get_model(verifier_name)
