"""Transformer architecture specifications.

System behaviour in this reproduction depends only on a model's *cost
parameters* — parameter count, layer geometry, grouped-query-attention KV
width and dtype — never on weight values. :class:`ModelSpec` captures
exactly those parameters for the generator and verifier models the paper
evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["ModelRole", "ModelSpec"]


class ModelRole(str, Enum):
    """What a model does inside a verifier-guided TTS system."""

    GENERATOR = "generator"
    VERIFIER = "verifier"


@dataclass(frozen=True, slots=True)
class ModelSpec:
    """Static architecture description of one dense decoder-only LLM.

    Attributes mirror a HuggingFace config: ``n_kv_heads < n_heads`` encodes
    grouped-query attention, which is what makes Qwen models' KV footprint
    per token so much smaller than Mistral's (28 KiB vs 128 KiB at FP16) —
    an asymmetry the memory allocator exploits.
    """

    name: str
    role: ModelRole
    param_count: int
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    intermediate_size: int
    vocab_size: int
    dtype_bytes: int = 2  # FP16/BF16 deployment, as in the paper
    dtype: str = "fp16"  # deployment dtype name; must agree with dtype_bytes

    def __post_init__(self) -> None:
        if self.param_count <= 0:
            raise ValueError("param_count must be positive")
        if not self.dtype:
            raise ValueError("dtype must be a non-empty name")
        if self.n_kv_heads > self.n_heads:
            raise ValueError("n_kv_heads cannot exceed n_heads")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads (GQA groups)")
        for field_name in ("n_layers", "hidden_size", "n_heads", "n_kv_heads",
                           "head_dim", "intermediate_size", "vocab_size", "dtype_bytes"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def weight_bytes(self) -> int:
        """Bytes of VRAM occupied by the weights at deployment dtype."""
        return self.param_count * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache one token occupies across all layers.

        K and V, per layer, per KV head, per head dimension, at dtype width.
        """
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * self.dtype_bytes

    def kv_bytes(self, batch_size: int, seq_len: float) -> float:
        """KV bytes for ``batch_size`` sequences of ``seq_len`` tokens each.

        ``seq_len`` may be fractional: the allocator costs decoding with the
        *average* cache length (paper uses S_dec / 2).
        """
        if batch_size < 0 or seq_len < 0:
            raise ValueError("batch_size and seq_len must be non-negative")
        return batch_size * seq_len * self.kv_bytes_per_token

    def max_resident_tokens(self, kv_budget_bytes: int) -> int:
        """How many cached tokens fit in a KV budget."""
        if kv_budget_bytes < 0:
            raise ValueError("kv_budget_bytes must be non-negative")
        return kv_budget_bytes // self.kv_bytes_per_token

    def __str__(self) -> str:
        billions = self.param_count / 1e9
        return f"{self.name} ({billions:.1f}B, {self.role.value})"
