"""Model substrate: architecture specs, registry, and cost functions."""

from repro.models.costs import StageCost, decode_step_cost, prefill_cost
from repro.models.quantize import DTYPE_BYTES, quantized
from repro.models.spec import ModelRole, ModelSpec
from repro.models.zoo import (
    MATH_SHEPHERD_7B,
    QWEN25_MATH_1P5B,
    QWEN25_MATH_7B,
    SKYWORK_PRM_1P5B,
    get_model,
    list_model_configs,
    list_models,
    model_pair,
    register_model,
)

__all__ = [
    "ModelSpec",
    "ModelRole",
    "StageCost",
    "prefill_cost",
    "decode_step_cost",
    "get_model",
    "list_models",
    "list_model_configs",
    "register_model",
    "model_pair",
    "QWEN25_MATH_1P5B",
    "QWEN25_MATH_7B",
    "MATH_SHEPHERD_7B",
    "SKYWORK_PRM_1P5B",
    "quantized",
    "DTYPE_BYTES",
]
