"""Difficulty-aware model routing across heterogeneous lane classes.

A :class:`RoutingPolicy` decides *which lane class* (deployed model
pairing) serves each request of a heterogeneous pool — the fast-path /
slow-path split the edge-TTS literature builds on: quantized small-model
lanes absorb easy problems at a fraction of the latency, big-model lanes
keep accuracy on the hard tail. Three policies ship in a registry
mirroring the scheduler/placement ones:

* ``static`` — thresholds the problem's difficulty *rank* within the
  serving dataset (observable offline) and sends the hard fraction to the
  biggest class;
* ``predicted`` — estimates per-problem cost with the same
  :func:`~repro.core.scheduler.predict_cost` profile pass ``sjf`` uses,
  and routes long searches to the big class;
* ``cascade`` — tries the cheapest class first and *escalates*: when the
  verifier's answer confidence on the cheap attempt is below threshold,
  the fleet re-places the request on the next-bigger class, billing the
  abandoned attempt and the re-prefill honestly through the ledger.

Routers only narrow the eligible-lane set; placement and scheduling
policies still pick the concrete lane and interleave rounds within it.
With ``router="off"`` the fleet is byte-identical to the routerless path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ConfigError
from repro.utils.suggest import did_you_mean

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fleet import FleetRequest
    from repro.core.pool import DevicePool, PooledDevice
    from repro.core.scheduler import SessionHandle

__all__ = [
    "RoutingPolicy",
    "StaticRouter",
    "PredictedRouter",
    "CascadeRouter",
    "build_router",
    "list_routers",
    "router_descriptions",
]


class RoutingPolicy(ABC):
    """Which lane *class* of a heterogeneous pool serves a request.

    ``bind(pool)`` is called once by the fleet; it orders the pool's lane
    classes cheapest-first by deployed weight bytes. ``route`` narrows an
    eligible-lane list to the preferred class (falling back through the
    class order so a request is never stranded while any lane is
    eligible). ``accept`` and ``escalate_lanes`` drive the cascade hook:
    after a race settles, a router may reject the winning attempt and name
    the bigger-class lanes the fleet should re-place the request on.
    """

    name: str = "abstract"
    description: str = ""

    def __init__(self) -> None:
        self._class_order: list[str] = []
        self._class_cost: dict[str, int] = {}

    def bind(self, pool: "DevicePool") -> None:
        """Learn the pool's lane classes (cheapest deployed pairing first)."""
        cost: dict[str, int] = {}
        for lane in pool:
            cost.setdefault(lane.lane_class, lane.model_cost_bytes)
        self._class_cost = cost
        self._class_order = sorted(cost, key=lambda name: (cost[name], name))

    @property
    def class_order(self) -> tuple[str, ...]:
        """Bound lane classes, cheapest first."""
        return tuple(self._class_order)

    def _prefer(
        self,
        lanes: Sequence["PooledDevice"],
        order: Sequence[str],
    ) -> list["PooledDevice"]:
        """Lanes of the first class in ``order`` that has any eligible lane."""
        for cls_name in order:
            chosen = [lane for lane in lanes if lane.lane_class == cls_name]
            if chosen:
                return chosen
        return list(lanes)

    @abstractmethod
    def route(
        self,
        request: "FleetRequest",
        lanes: Sequence["PooledDevice"],
        now: float,
    ) -> list["PooledDevice"]:
        """Narrow ``lanes`` (non-empty) to the preferred class's lanes.

        Must return a non-empty subset; returning ``lanes`` unchanged
        expresses "no preference".
        """

    def accept(self, request: "FleetRequest", winner: "SessionHandle") -> bool:
        """Is the settling attempt good enough to commit? Default: yes."""
        return True

    def escalate_lanes(
        self,
        request: "FleetRequest",
        from_cost_bytes: int,
        lanes: Sequence["PooledDevice"],
    ) -> list["PooledDevice"]:
        """Lanes of the cheapest class strictly costlier than the attempt's.

        An empty list means "nowhere to escalate" — the fleet commits the
        rejected attempt anyway. Non-cascade routers never escalate.
        """
        return []


class StaticRouter(RoutingPolicy):
    """Difficulty-rank threshold: the hard fraction goes to the big class.

    A problem's rank is the fraction of the serving dataset strictly
    easier than it; ranks at or above ``threshold`` route to the biggest
    (costliest) class, the rest to the cheapest. This is the offline
    router an operator can run with nothing but the dataset's difficulty
    ordering — no profile pass, no serving-time signal.
    """

    name = "static"
    description = "dataset difficulty-rank threshold: hard tail to the big class"

    def __init__(self, threshold: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise ConfigError(
                f"static router threshold must be in [0, 1], got {threshold}"
            )
        self._threshold = threshold
        self._sorted_difficulties: list[float] = []

    def bind(self, pool: "DevicePool") -> None:
        super().bind(pool)
        dataset = pool[0].server.dataset
        self._sorted_difficulties = sorted(
            problem.difficulty for problem in dataset.problems
        )

    def _rank(self, difficulty: float) -> float:
        from bisect import bisect_left

        pool = self._sorted_difficulties
        if not pool:
            return 0.0
        return bisect_left(pool, difficulty) / len(pool)

    def route(self, request, lanes, now):
        hard = self._rank(request.problem.difficulty) >= self._threshold
        order = (
            list(reversed(self._class_order)) if hard else self._class_order
        )
        return self._prefer(lanes, order)


class PredictedRouter(RoutingPolicy):
    """Per-problem cost estimate via the ``sjf``-style profile pass.

    Runs :func:`~repro.core.scheduler.predict_cost` on a cheapest-class
    server (the profile is serving-free and content-keyed, so any lane
    yields the same prediction for its own pairing) and routes requests
    whose predicted rounds reach ``threshold`` × the dataset's round cap
    to the biggest class. Predictions are memoized per problem, matching
    how traces cycle a finite problem pool.
    """

    name = "predicted"
    description = "pure_search cost estimate routes long searches to the big class"

    def __init__(self, threshold: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < threshold <= 1.0:
            raise ConfigError(
                f"predicted router threshold must be in (0, 1], got {threshold}"
            )
        self._threshold = threshold
        self._profile_lane: "PooledDevice | None" = None
        self._memo: dict[tuple[str, str, int], int] = {}

    def bind(self, pool: "DevicePool") -> None:
        super().bind(pool)
        cheapest = self._class_order[0]
        self._profile_lane = next(
            lane for lane in pool if lane.lane_class == cheapest
        )

    def _predicted_rounds(self, request: "FleetRequest") -> int:
        from repro.core.scheduler import predict_cost

        key = (
            request.problem.problem_id,
            request.algorithm.name,
            request.algorithm.n,
        )
        if key not in self._memo:
            rounds, _ = predict_cost(
                self._profile_lane.server, request.problem, request.algorithm
            )
            self._memo[key] = rounds
        return self._memo[key]

    def route(self, request, lanes, now):
        max_steps = self._profile_lane.server.dataset.max_steps
        hard = self._predicted_rounds(request) >= self._threshold * max_steps
        order = (
            list(reversed(self._class_order)) if hard else self._class_order
        )
        return self._prefer(lanes, order)


class CascadeRouter(RoutingPolicy):
    """Cheapest class first; escalate on verifier rejection.

    Every request starts on the cheapest class with an eligible lane (a
    class whose lanes cannot plan the request's beam budget simply falls
    up the cascade — budget exhaustion escalates at admission time). When
    the attempt settles, the verifier-score mass behind its majority
    answer (:func:`~repro.metrics.accuracy.answer_confidence` — the same
    serving-time signal First-Finish racing uses) decides acceptance:
    below ``verify_threshold`` the fleet abandons the attempt, bills its
    device seconds as escalated work, and re-places the request on the
    next-bigger class for a full re-prefill through that lane's ledger.
    """

    name = "cascade"
    description = "cheapest class first; escalate to bigger models on rejection"

    def __init__(self, verify_threshold: float = 0.7) -> None:
        super().__init__()
        if not 0.0 < verify_threshold <= 1.0:
            raise ConfigError(
                "cascade verify_threshold must be in (0, 1], "
                f"got {verify_threshold}"
            )
        self._verify_threshold = verify_threshold

    @property
    def verify_threshold(self) -> float:
        return self._verify_threshold

    def route(self, request, lanes, now):
        return self._prefer(lanes, self._class_order)

    def accept(self, request, winner):
        from repro.metrics.accuracy import answer_confidence

        outcome = winner.session.outcome
        if outcome is None or not outcome.result.beams:
            return True  # nothing to judge; never escalate blind
        confidence = answer_confidence(outcome.result.beams)
        return confidence >= self._verify_threshold

    def escalate_lanes(self, request, from_cost_bytes, lanes):
        for cls_name in self._class_order:
            if self._class_cost[cls_name] <= from_cost_bytes:
                continue
            chosen = [lane for lane in lanes if lane.lane_class == cls_name]
            if chosen:
                return chosen
        return []


_ROUTERS: dict[str, Callable[..., RoutingPolicy]] = {
    StaticRouter.name: StaticRouter,
    PredictedRouter.name: PredictedRouter,
    CascadeRouter.name: CascadeRouter,
}


def list_routers() -> list[str]:
    """Registered routing policy names."""
    return sorted(_ROUTERS)


def router_descriptions() -> dict[str, str]:
    """Policy name → one-line description (for the CLI listing)."""
    return {name: _ROUTERS[name].description for name in list_routers()}


def build_router(name: str, **kwargs) -> RoutingPolicy:
    """Instantiate a routing policy by registry name."""
    try:
        factory = _ROUTERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown router {name!r}{did_you_mean(name, _ROUTERS)}; "
            f"registered: {', '.join(list_routers())}"
        ) from None
    return factory(**kwargs)
