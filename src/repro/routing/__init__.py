"""Heterogeneous serving: lane specs and difficulty-aware model routing.

``repro.routing`` owns the *which model serves this request* axis the
homogeneous fleet never had: :class:`~repro.routing.lanes.LaneSpec`
describes one pool lane (model pairing, device, dtype, KV budget) and
:class:`~repro.routing.router.RoutingPolicy` implementations decide which
lane class sees each request — statically by difficulty rank, by a
profile-pass cost prediction, or as an escalation cascade that retries
rejected cheap attempts on bigger models.
"""

from repro.routing.lanes import LaneSpec, parse_lane_list
from repro.routing.router import (
    CascadeRouter,
    PredictedRouter,
    RoutingPolicy,
    StaticRouter,
    build_router,
    list_routers,
    router_descriptions,
)

__all__ = [
    "LaneSpec",
    "parse_lane_list",
    "RoutingPolicy",
    "StaticRouter",
    "PredictedRouter",
    "CascadeRouter",
    "build_router",
    "list_routers",
    "router_descriptions",
]
