"""Heterogeneous lane specifications and the ``model@device[:dtype]`` grammar.

A :class:`LaneSpec` describes one pool lane as the *deployment* triple the
EdgeReasoning frontier varies — model pairing, device, and weight/KV dtype —
plus an optional per-lane memory fraction. The CLI grammar is::

    MODEL@DEVICE[:DTYPE][:mem=FRACTION]

e.g. ``7B+1.5B@rtx4090`` (a big-model lane at deployment dtype) or
``1.5B+1.5B@rtx4090:int8:mem=0.5`` (a quantized small-model lane capped at
half the card). Lanes in one pool may differ in every field; the pool only
requires a shared seed and dataset so answers stay content-keyed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.device import list_devices
from repro.models.quantize import DTYPE_BYTES, quantized
from repro.models.zoo import list_model_configs, model_pair
from repro.utils.suggest import did_you_mean

__all__ = ["LaneSpec", "parse_lane_list"]


@dataclass(frozen=True, slots=True)
class LaneSpec:
    """One heterogeneous pool lane: model pairing, device, dtype, KV budget.

    ``dtype=None`` deploys the pairing at its native dtype (fp16);
    ``memory_fraction=None`` inherits the fleet-wide fraction.
    """

    model_config: str
    device_name: str
    dtype: str | None = None
    memory_fraction: float | None = None

    def __post_init__(self) -> None:
        configs = list_model_configs()
        if self.model_config not in configs:
            known = ", ".join(configs)
            raise ConfigError(
                f"unknown model config {self.model_config!r} in lane spec; "
                f"known configs: {known}{did_you_mean(self.model_config, configs)}"
            )
        devices = list_devices()
        if self.device_name not in devices:
            known = ", ".join(devices)
            raise ConfigError(
                f"unknown device {self.device_name!r} in lane spec; "
                f"known devices: {known}{did_you_mean(self.device_name, devices)}"
            )
        if self.dtype is not None and self.dtype not in DTYPE_BYTES:
            known = ", ".join(sorted(DTYPE_BYTES))
            raise ConfigError(
                f"unknown dtype {self.dtype!r} in lane spec; "
                f"known dtypes: {known}{did_you_mean(self.dtype, DTYPE_BYTES)}"
            )
        if self.memory_fraction is not None and not 0.0 < self.memory_fraction <= 1.0:
            raise ConfigError(
                f"lane memory fraction must be in (0, 1], got {self.memory_fraction}"
            )

    @property
    def label(self) -> str:
        """Round-trippable grammar form of this lane."""
        text = f"{self.model_config}@{self.device_name}"
        if self.dtype is not None:
            text += f":{self.dtype}"
        if self.memory_fraction is not None:
            text += f":mem={self.memory_fraction:g}"
        return text

    def models(self):
        """``(generator, verifier)`` specs after quantization to ``dtype``."""
        gen, ver = model_pair(self.model_config)
        if self.dtype is not None:
            gen, ver = quantized(gen, self.dtype), quantized(ver, self.dtype)
        return gen, ver

    @property
    def lane_class(self) -> str:
        """Metrics key shared by all lanes serving the same deployed models."""
        gen, ver = self.models()
        return f"{gen.name}+{ver.name}"

    @property
    def model_cost_bytes(self) -> int:
        """Deployed weight bytes of the pairing — the router's cost ordering."""
        gen, ver = self.models()
        return gen.weight_bytes + ver.weight_bytes

    @classmethod
    def parse(cls, text: str) -> "LaneSpec":
        """Parse one ``MODEL@DEVICE[:DTYPE][:mem=FRACTION]`` lane spec."""
        text = text.strip()
        if not text:
            raise ConfigError("lane spec must not be empty")
        if "@" not in text:
            raise ConfigError(
                f"lane spec {text!r} is missing '@'; expected "
                "MODEL@DEVICE[:DTYPE][:mem=FRACTION], e.g. '1.5B+1.5B@rtx4090:int8'"
            )
        model_config, _, rest = text.partition("@")
        parts = [p.strip() for p in rest.split(":")]
        device_name = parts[0]
        dtype: str | None = None
        memory_fraction: float | None = None
        for part in parts[1:]:
            if not part:
                raise ConfigError(f"lane spec {text!r} has an empty ':' option")
            if "=" in part:
                key, _, value = part.partition("=")
                if key != "mem":
                    raise ConfigError(
                        f"unknown lane option {key!r} in {text!r}; known options: "
                        f"mem{did_you_mean(key, ['mem'])}"
                    )
                if memory_fraction is not None:
                    raise ConfigError(f"lane spec {text!r} sets mem= twice")
                try:
                    memory_fraction = float(value)
                except ValueError:
                    raise ConfigError(
                        f"lane spec {text!r}: mem= expects a number, got {value!r}"
                    ) from None
            else:
                if dtype is not None:
                    raise ConfigError(f"lane spec {text!r} sets the dtype twice")
                dtype = part
        return cls(
            model_config=model_config.strip(),
            device_name=device_name,
            dtype=dtype,
            memory_fraction=memory_fraction,
        )


def parse_lane_list(spec: str) -> list[LaneSpec]:
    """Parse a comma-separated list of lane specs (at least one required)."""
    entries = [entry for entry in spec.split(",")]
    if any(not entry.strip() for entry in entries):
        raise ConfigError(f"lane list {spec!r} contains an empty entry")
    return [LaneSpec.parse(entry) for entry in entries]
