"""Synthetic workloads: problems, datasets, and step-length trace models."""

from repro.workloads.datasets import (
    DATASET_PROFILES,
    DatasetProfile,
    build_dataset,
    list_datasets,
)
from repro.workloads.problem import Dataset, Problem
from repro.workloads.traces import StepLengthModel

__all__ = [
    "Problem",
    "Dataset",
    "StepLengthModel",
    "build_dataset",
    "list_datasets",
    "DATASET_PROFILES",
    "DatasetProfile",
]
