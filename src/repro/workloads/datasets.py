"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on AIME 2024 and AMC 2023 (math), MATH-500 for the
motivation study, and HumanEval (code) for generality. Real problem text is
irrelevant to serving behaviour; what matters is each dataset's difficulty
distribution (drives accuracy) and step-length regime (drives the straggler
and memory dynamics). Those parameters are encoded per dataset below and
every draw is keyed off the dataset seed, so a dataset is a pure function
of ``(name, seed, size)``.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Dataset, Problem
from repro.workloads.traces import StepLengthModel

__all__ = ["build_dataset", "list_datasets", "DATASET_PROFILES", "DatasetProfile"]

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Static recipe for synthesizing one dataset."""

    name: str
    default_size: int
    difficulty_mean: float
    difficulty_std: float
    prompt_tokens_mean: int
    step_model: StepLengthModel
    min_steps: int
    max_steps: int
    termination_rate: float


DATASET_PROFILES: dict[str, DatasetProfile] = {
    # AIME 2024: 30 hard competition problems, long meandering steps.
    "aime24": DatasetProfile(
        name="aime24",
        default_size=30,
        difficulty_mean=3.00,
        difficulty_std=0.55,
        prompt_tokens_mean=140,
        step_model=StepLengthModel(median_tokens=150.0, sigma=0.85, max_tokens=1280),
        min_steps=3,
        max_steps=10,
        termination_rate=0.22,
    ),
    # AMC 2023: broader difficulty range, shorter reasoning.
    "amc23": DatasetProfile(
        name="amc23",
        default_size=40,
        difficulty_mean=1.45,
        difficulty_std=0.65,
        prompt_tokens_mean=110,
        step_model=StepLengthModel(median_tokens=110.0, sigma=0.75, max_tokens=1024),
        min_steps=2,
        max_steps=8,
        termination_rate=0.30,
    ),
    # MATH-500: the motivation-study dataset (Fig. 3 left).
    "math500": DatasetProfile(
        name="math500",
        default_size=500,
        difficulty_mean=1.85,
        difficulty_std=0.70,
        prompt_tokens_mean=95,
        step_model=StepLengthModel(median_tokens=100.0, sigma=0.70, max_tokens=1024),
        min_steps=2,
        max_steps=8,
        termination_rate=0.32,
    ),
    # HumanEval: code generation; tighter, more uniform steps (Fig. 15).
    "humaneval": DatasetProfile(
        name="humaneval",
        default_size=164,
        difficulty_mean=1.10,
        difficulty_std=0.60,
        prompt_tokens_mean=160,
        step_model=StepLengthModel(median_tokens=80.0, sigma=0.55, max_tokens=512),
        min_steps=2,
        max_steps=6,
        termination_rate=0.38,
    ),
}


def list_datasets() -> list[str]:
    """Names of all available dataset profiles."""
    return sorted(DATASET_PROFILES)


def build_dataset(name: str, seed: int = 0, size: int | None = None) -> Dataset:
    """Synthesize a dataset deterministically from ``(name, seed, size)``."""
    try:
        profile = DATASET_PROFILES[name]
    except KeyError:
        known = ", ".join(list_datasets())
        raise ConfigError(f"unknown dataset {name!r}; known datasets: {known}") from None
    count = profile.default_size if size is None else size
    if count <= 0:
        raise ConfigError("dataset size must be positive")

    rng = KeyedRng(seed).fork("dataset", name)
    problems = []
    for index in range(count):
        problem_id = f"{name}-{seed}-{index:03d}"
        difficulty = rng.normal(
            "difficulty", index, loc=profile.difficulty_mean, scale=profile.difficulty_std
        )
        answer = rng.randint("answer", index, low=0, high=1000)
        prompt_tokens = max(
            24,
            int(rng.normal("prompt-len", index, loc=profile.prompt_tokens_mean,
                           scale=profile.prompt_tokens_mean * 0.25)),
        )
        problems.append(
            Problem(
                problem_id=problem_id,
                dataset=name,
                difficulty=float(difficulty),
                answer=answer,
                prompt_tokens=prompt_tokens,
            )
        )
    return Dataset(
        name=name,
        problems=tuple(problems),
        step_model=profile.step_model,
        min_steps=profile.min_steps,
        max_steps=profile.max_steps,
        termination_rate=profile.termination_rate,
    )
