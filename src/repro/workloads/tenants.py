"""Multi-tenant open-loop workload streams.

A :class:`TenantSpec` describes one traffic source end to end: its
arrival process (:mod:`~repro.workloads.arrivals`), the dataset profile
its problems are drawn from and how the draw is biased by difficulty,
the search algorithm and budget each request runs, and the per-request
latency contract (deadline, TTFT target, SLO class).
:func:`generate_trace` merges any number of tenants into one sorted
:class:`~repro.workloads.trace.Trace` — every draw keyed off the trace
seed and the tenant name, so adding a tenant never perturbs another
tenant's arrivals or problem picks.

Specs parse from compact CLI strings::

    chat:arrival=poisson,rate=0.05,dataset=amc23,deadline=300,ttft=60
    batch:arrival=bursty,rate=0.01,burst_rate=0.2,difficulty=hard,n=8

Unknown keys and values get exit-2-friendly
:class:`~repro.errors.ConfigError` messages with nearest-match
suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.rng import KeyedRng
from repro.utils.suggest import did_you_mean
from repro.workloads.arrivals import ArrivalProcess, build_arrival, list_arrivals
from repro.workloads.datasets import build_dataset, list_datasets
from repro.workloads.trace import Trace, TraceRequest

__all__ = ["TenantSpec", "generate_trace", "DIFFICULTY_MIXES"]

#: How a tenant's problem picks are biased within its dataset profile:
#: ``easy`` and ``hard`` weight the dataset's difficulty ranking with a
#: geometric decay from the respective end; ``mixed`` draws uniformly.
DIFFICULTY_MIXES = ("easy", "mixed", "hard")

#: Geometric decay of the rank weights for the biased difficulty mixes:
#: rank r (from the preferred end) gets weight ``(1 - _MIX_DECAY) ** r``.
_MIX_DECAY = 0.25

#: Problems each tenant draws from (indices cycle through a pool this
#: size, so long traces revisit problems — realistic for prefix sharing).
_PROBLEM_POOL = 24


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's traffic recipe.

    ``rate_rps`` is the (trough/background) arrival rate; ``peak_rate_rps``
    / ``period_s`` parameterize ``diurnal`` arrivals and ``burst_rate_rps``
    / ``on_s`` / ``off_s`` parameterize ``bursty`` ones (sensible defaults
    are derived from ``rate_rps`` when omitted). ``requests`` overrides
    the trace-level default request count for this tenant.
    """

    name: str
    arrival: str = "poisson"
    rate_rps: float = 0.02
    peak_rate_rps: float | None = None
    period_s: float | None = None
    burst_rate_rps: float | None = None
    on_s: float | None = None
    off_s: float | None = None
    dataset: str = "amc23"
    difficulty: str = "mixed"
    algorithm: str = "beam_search"
    n: int = 4
    deadline_s: float | None = None
    ttft_slo_s: float | None = None
    slo_class: str = "standard"
    requests: int | None = None

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in ":,="):
            raise ConfigError(
                f"tenant name must be non-empty and free of ':,=' "
                f"(got {self.name!r})"
            )
        if self.arrival not in list_arrivals():
            raise ConfigError(
                f"unknown arrival process {self.arrival!r}"
                f"{did_you_mean(self.arrival, list_arrivals())}; "
                f"registered: {', '.join(list_arrivals())}"
            )
        if self.rate_rps <= 0:
            raise ConfigError(
                f"tenant {self.name!r} needs rate > 0, got {self.rate_rps}"
            )
        if self.dataset not in list_datasets():
            raise ConfigError(
                f"unknown dataset {self.dataset!r}"
                f"{did_you_mean(self.dataset, list_datasets())}; "
                f"known: {', '.join(list_datasets())}"
            )
        if self.difficulty not in DIFFICULTY_MIXES:
            raise ConfigError(
                f"difficulty must be one of {', '.join(DIFFICULTY_MIXES)}; "
                f"got {self.difficulty!r}"
                f"{did_you_mean(self.difficulty, DIFFICULTY_MIXES)}"
            )
        if self.n < 1:
            raise ConfigError(f"tenant {self.name!r} needs n >= 1, got {self.n}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"tenant {self.name!r} needs deadline > 0, got {self.deadline_s}"
            )
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ConfigError(
                f"tenant {self.name!r} needs ttft > 0, got {self.ttft_slo_s}"
            )
        if self.requests is not None and self.requests < 1:
            raise ConfigError(
                f"tenant {self.name!r} needs requests >= 1, got {self.requests}"
            )

    def arrival_process(self) -> ArrivalProcess:
        """Build this tenant's arrival process, defaulting derived params.

        ``diurnal`` defaults to a 4x peak over a 1-hour period; ``bursty``
        defaults to 10x bursts of mean 60 s separated by mean 240 s of
        background traffic.
        """
        if self.arrival == "diurnal":
            return build_arrival(
                "diurnal",
                rate_rps=self.rate_rps,
                peak_rate_rps=self.peak_rate_rps or 4.0 * self.rate_rps,
                period_s=self.period_s or 3600.0,
            )
        if self.arrival == "bursty":
            return build_arrival(
                "bursty",
                rate_rps=self.rate_rps,
                burst_rate_rps=self.burst_rate_rps or 10.0 * self.rate_rps,
                on_s=self.on_s or 60.0,
                off_s=self.off_s or 240.0,
            )
        return build_arrival("poisson", rate_rps=self.rate_rps)

    # -- compact CLI spec strings ---------------------------------------

    _SPEC_KEYS = {
        "arrival": ("arrival", str),
        "rate": ("rate_rps", float),
        "peak_rate": ("peak_rate_rps", float),
        "period": ("period_s", float),
        "burst_rate": ("burst_rate_rps", float),
        "on_s": ("on_s", float),
        "off_s": ("off_s", float),
        "dataset": ("dataset", str),
        "difficulty": ("difficulty", str),
        "algorithm": ("algorithm", str),
        "n": ("n", int),
        "deadline": ("deadline_s", float),
        "ttft": ("ttft_slo_s", float),
        "slo": ("slo_class", str),
        "requests": ("requests", int),
    }

    @classmethod
    def parse(cls, spec: str) -> "TenantSpec":
        """Parse ``name:key=value,key=value,...`` into a spec.

        The leading ``name:`` is optional (defaults to ``tenant``); keys
        are the CLI-facing short names (``rate``, ``deadline``, ``ttft``,
        ...). Unknown keys raise with a did-you-mean suggestion.
        """
        text = spec.strip()
        if not text:
            raise ConfigError("empty tenant spec")
        name = "tenant"
        if ":" in text:
            name, text = text.split(":", 1)
            name = name.strip()
        kwargs: dict[str, object] = {}
        if text.strip():
            for item in text.split(","):
                if "=" not in item:
                    raise ConfigError(
                        f"tenant spec items must be key=value, got {item!r} "
                        f"in {spec!r}"
                    )
                key, value = (part.strip() for part in item.split("=", 1))
                if key not in cls._SPEC_KEYS:
                    raise ConfigError(
                        f"unknown tenant spec key {key!r}"
                        f"{did_you_mean(key, cls._SPEC_KEYS)}; known: "
                        f"{', '.join(sorted(cls._SPEC_KEYS))}"
                    )
                field_name, cast = cls._SPEC_KEYS[key]
                try:
                    kwargs[field_name] = cast(value)
                except ValueError:
                    raise ConfigError(
                        f"tenant spec key {key!r} needs a {cast.__name__}, "
                        f"got {value!r}"
                    ) from None
        return cls(name=name, **kwargs)


def _problem_indices(
    spec: TenantSpec, count: int, rng: KeyedRng, pool: int, dataset_seed: int
) -> list[int]:
    """Difficulty-biased problem picks from the tenant's dataset pool.

    ``mixed`` draws uniformly over the pool. ``easy``/``hard`` rank the
    pool by difficulty and weight ranks geometrically from the preferred
    end, so the bias is strong but every problem stays reachable. The
    ranking is computed over the same ``(dataset, dataset_seed)`` pool
    the indices address at replay time.
    """
    if spec.difficulty == "mixed":
        return [
            rng.randint("problem", k, low=0, high=pool) for k in range(count)
        ]
    dataset = build_dataset(spec.dataset, seed=dataset_seed, size=pool)
    ranked = sorted(range(pool), key=lambda i: dataset.problems[i].difficulty)
    if spec.difficulty == "hard":
        ranked.reverse()
    weights = [(1.0 - _MIX_DECAY) ** r for r in range(pool)]
    return [
        ranked[rng.choice_index("problem", k, weights=weights)]
        for k in range(count)
    ]


def generate_trace(
    tenants: "list[TenantSpec] | tuple[TenantSpec, ...]",
    seed: int = 0,
    default_requests: int = 12,
    base_dataset: str | None = None,
) -> Trace:
    """Merge the tenants' streams into one sorted, replayable trace.

    Each tenant draws from an rng forked off ``(seed, tenant name)``, so
    traces compose: the same tenant spec under the same seed produces the
    same arrivals and problem picks regardless of which other tenants
    ride along. ``base_dataset`` (default: the first tenant's dataset)
    names the profile whose step-length dynamics the serving fleet uses.
    """
    if not tenants:
        raise ConfigError("generate_trace needs at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate tenant names: {', '.join(sorted(names))}")
    if default_requests < 1:
        raise ConfigError("default_requests must be >= 1")
    root = KeyedRng(seed)
    rows: list[tuple[float, str, int, TraceRequest]] = []
    for spec in tenants:
        rng = root.fork("tenant", spec.name)
        count = spec.requests if spec.requests is not None else default_requests
        times = spec.arrival_process().times(rng, count)
        # The problem pool is seeded per (trace, tenant) so two tenants
        # on the same dataset still see distinct problem streams.
        dataset_seed = root.fork("tenant-dataset", spec.name).seed % 2**31
        pool = max(_PROBLEM_POOL, min(count, 4 * _PROBLEM_POOL))
        indices = _problem_indices(spec, count, rng, pool, dataset_seed)
        for k, (arrival, index) in enumerate(zip(times, indices)):
            rows.append(
                (
                    arrival,
                    spec.name,
                    k,
                    TraceRequest(
                        request_id=f"{spec.name}-{k:04d}",
                        tenant=spec.name,
                        arrival_s=arrival,
                        dataset=spec.dataset,
                        dataset_seed=dataset_seed,
                        problem_index=index,
                        algorithm=spec.algorithm,
                        n=spec.n,
                        deadline_s=spec.deadline_s,
                        ttft_slo_s=spec.ttft_slo_s,
                        slo_class=spec.slo_class,
                    ),
                )
            )
    rows.sort(key=lambda row: row[:3])
    return Trace(
        seed=seed,
        requests=tuple(row[3] for row in rows),
        base_dataset=base_dataset or tenants[0].dataset,
    )
