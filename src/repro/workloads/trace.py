"""Trace records: serializable open-loop request streams.

A :class:`Trace` is the unit of reproducibility for open-loop serving
experiments: a sorted stream of :class:`TraceRequest` rows, each naming
*what* arrives (a problem index into a deterministic synthetic dataset,
a search algorithm and budget), *when* it arrives on the fleet timeline,
*who* sent it (tenant + SLO class), and the request's latency contract
(deadline and TTFT target). Because problems are pure functions of
``(dataset, seed, index)`` and every float survives JSON's repr
round-trip exactly, a trace serialized to JSONL and replayed yields
byte-identical fleet records to running the in-memory trace directly —
which is what lets traces be checked into goldens.

The JSONL layout is one header object followed by one object per
request::

    {"schema": "repro.trace", "version": 1, "seed": 0, "base_dataset": "amc23"}
    {"request_id": "chat-0000", "tenant": "chat", "arrival_s": 3.1, ...}

``base_dataset`` names the profile whose step-length dynamics the
serving fleet uses (see :func:`repro.core.fleet.run_trace`); each
request's *problem* comes from its own ``(dataset, dataset_seed,
problem_index)`` triple, so tenants can mix difficulty profiles freely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import ConfigError
from repro.workloads.datasets import list_datasets
from repro.workloads.problem import Problem

__all__ = ["TraceRequest", "Trace", "materialize_problems"]

TRACE_SCHEMA = "repro.trace"
TRACE_VERSION = 1


@dataclass(frozen=True, slots=True)
class TraceRequest:
    """One arrival in an open-loop trace.

    ``deadline_s`` and ``ttft_slo_s`` are relative to ``arrival_s``;
    ``None`` means the request carries no such target. ``problem_index``
    addresses the tenant's synthetic dataset built from ``(dataset,
    dataset_seed)`` — the problem itself is never serialized, only its
    coordinates, which is what keeps traces small and replay exact.
    """

    request_id: str
    tenant: str
    arrival_s: float
    dataset: str
    dataset_seed: int
    problem_index: int
    algorithm: str = "beam_search"
    n: int = 4
    deadline_s: float | None = None
    ttft_slo_s: float | None = None
    slo_class: str = "standard"

    def __post_init__(self) -> None:
        if not self.request_id:
            raise ValueError("request_id must be non-empty")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.problem_index < 0:
            raise ValueError("problem_index must be non-negative")
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive when set")

    def to_json_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json_dict(cls, payload: dict) -> "TraceRequest":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"trace request has unknown fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except (TypeError, ValueError) as error:
            raise ConfigError(f"bad trace request: {error}") from None


@dataclass(frozen=True, slots=True)
class Trace:
    """A sorted, replayable open-loop request stream."""

    seed: int
    requests: tuple[TraceRequest, ...]
    base_dataset: str = "amc23"

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a trace must contain at least one request")
        if self.base_dataset not in list_datasets():
            raise ValueError(f"unknown base_dataset {self.base_dataset!r}")
        seen: set[str] = set()
        last = 0.0
        for req in self.requests:
            if req.request_id in seen:
                raise ValueError(f"duplicate trace request id {req.request_id!r}")
            seen.add(req.request_id)
            if req.arrival_s < last:
                raise ValueError(
                    "trace requests must be sorted by arrival time "
                    f"({req.request_id!r} arrives at {req.arrival_s} after "
                    f"{last})"
                )
            last = req.arrival_s

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenant names appearing in the trace, sorted."""
        return tuple(sorted({r.tenant for r in self.requests}))

    @property
    def horizon_s(self) -> float:
        """The last arrival time."""
        return self.requests[-1].arrival_s

    # -- serialization ---------------------------------------------------

    def to_jsonl(self) -> str:
        header = {
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "seed": self.seed,
            "base_dataset": self.base_dataset,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(r.to_json_dict(), sort_keys=True) for r in self.requests
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ConfigError("empty trace: no header line")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise ConfigError(f"trace header is not JSON: {error}") from None
        if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
            raise ConfigError(
                f"trace header must set schema={TRACE_SCHEMA!r}; "
                f"got {header!r}"
            )
        if header.get("version") != TRACE_VERSION:
            raise ConfigError(
                f"unsupported trace version {header.get('version')!r} "
                f"(this build reads version {TRACE_VERSION})"
            )
        requests = []
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigError(
                    f"trace line {lineno} is not JSON: {error}"
                ) from None
            requests.append(TraceRequest.from_json_dict(payload))
        try:
            return cls(
                seed=header.get("seed", 0),
                requests=tuple(requests),
                base_dataset=header.get("base_dataset", "amc23"),
            )
        except ValueError as error:
            raise ConfigError(f"bad trace: {error}") from None

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_jsonl())

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise ConfigError(f"cannot read trace file {path}: {error}") from None
        return cls.from_jsonl(text)


def materialize_problems(trace: Trace) -> dict[str, Problem]:
    """Rebuild every trace request's :class:`Problem`, keyed by request id.

    Problems are pure functions of ``(dataset, dataset_seed, index)``, so
    replaying a serialized trace reconstructs bit-identical problems. One
    dataset is built per distinct ``(dataset, dataset_seed)`` pair, sized
    to the largest index the trace references.
    """
    from repro.workloads.datasets import build_dataset

    sizes: dict[tuple[str, int], int] = {}
    for req in trace:
        key = (req.dataset, req.dataset_seed)
        sizes[key] = max(sizes.get(key, 0), req.problem_index + 1)
    pools = {
        (name, seed): list(build_dataset(name, seed=seed, size=size))
        for (name, seed), size in sizes.items()
    }
    return {
        req.request_id: pools[(req.dataset, req.dataset_seed)][req.problem_index]
        for req in trace
    }
