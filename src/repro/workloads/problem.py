"""Problem and dataset containers for the synthetic benchmark workloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.traces import StepLengthModel

__all__ = ["Problem", "Dataset"]


@dataclass(frozen=True, slots=True)
class Problem:
    """One reasoning problem.

    Attributes
    ----------
    problem_id:
        Stable identifier, also the RNG key prefix for everything sampled
        about this problem.
    dataset:
        Name of the dataset the problem belongs to.
    difficulty:
        Latent difficulty on the same scale as model skill; correctness
        probability is a logistic function of (path quality - difficulty).
    answer:
        Ground-truth final answer (AIME-style integer in [0, 999]).
    prompt_tokens:
        Length of the problem statement in tokens (the shared KV root).
    """

    problem_id: str
    dataset: str
    difficulty: float
    answer: int
    prompt_tokens: int

    def __post_init__(self) -> None:
        if not 0 <= self.answer <= 999:
            raise ValueError("answer must be an AIME-style integer in [0, 999]")
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")


@dataclass(frozen=True, slots=True)
class Dataset:
    """A benchmark dataset plus its generation dynamics."""

    name: str
    problems: tuple[Problem, ...] = field(default=())
    step_model: StepLengthModel = field(default=None)  # type: ignore[assignment]
    min_steps: int = 2
    max_steps: int = 10
    termination_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.step_model is None:
            raise ValueError("step_model is required")
        if not self.problems:
            raise ValueError("dataset must contain at least one problem")
        if self.min_steps < 1 or self.max_steps < self.min_steps:
            raise ValueError("need 1 <= min_steps <= max_steps")
        if not 0.0 < self.termination_rate <= 1.0:
            raise ValueError("termination_rate must be in (0, 1]")

    def __len__(self) -> int:
        return len(self.problems)

    def __iter__(self):
        return iter(self.problems)
