"""Keyed-RNG arrival processes for open-loop trace generation.

A trace-driven workload is only reproducible if its arrival times are a
pure function of the seed — never of how many other tenants were
generated first, or in what order. Every draw here is therefore addressed
through :class:`~repro.utils.rng.KeyedRng` streams keyed by the draw's
*position* in the process (gap index, candidate index, phase index), so
two calls with the same root rng produce bit-identical times no matter
what else was drawn in between.

Three processes cover the serving literature's standard load shapes:

``poisson``
    Homogeneous Poisson arrivals at ``rate_rps`` — exponential
    inter-arrival gaps, the memoryless baseline.
``diurnal``
    Non-homogeneous Poisson whose rate swings sinusoidally between
    ``rate_rps`` (trough) and ``peak_rate_rps`` (peak) with period
    ``period_s`` — the day/night cycle every production trace shows.
    Realized by Lewis-Shedler thinning of a ``peak_rate_rps``
    candidate stream, with one keyed acceptance draw per candidate.
``bursty``
    Markov-modulated on/off process: exponentially distributed "on"
    phases (mean ``on_s``) at ``burst_rate_rps`` alternate with "off"
    phases (mean ``off_s``) at the background ``rate_rps`` — flash
    crowds and quiet tails, the overload shape SLO policies are
    judged on.

All processes are **count-based**: ``times(rng, count)`` returns exactly
``count`` strictly increasing arrival times starting after t=0.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import pi, sin
from typing import Callable

from repro.errors import ConfigError
from repro.utils.rng import KeyedRng

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "DiurnalProcess",
    "BurstyProcess",
    "build_arrival",
    "list_arrivals",
    "arrival_descriptions",
]


class ArrivalProcess(ABC):
    """One tenant's arrival-time generator.

    Subclasses draw exclusively through keyed streams of the ``rng``
    handed to :meth:`times`, so the times depend only on the rng's root
    seed and the process parameters.
    """

    name: str = "abstract"
    description: str = ""

    @abstractmethod
    def times(self, rng: KeyedRng, count: int) -> tuple[float, ...]:
        """Exactly ``count`` strictly increasing arrival times."""

    def _check_count(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")


@dataclass(frozen=True, slots=True)
class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_rps``."""

    rate_rps: float

    name = "poisson"
    description = "memoryless arrivals at a constant rate"

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigError("poisson arrivals need rate_rps > 0")

    def times(self, rng: KeyedRng, count: int) -> tuple[float, ...]:
        self._check_count(count)
        now, out = 0.0, []
        for i in range(count):
            gap = rng.stream("poisson-gap", i).exponential(1.0 / self.rate_rps)
            now += float(gap)
            out.append(now)
        return tuple(out)


@dataclass(frozen=True, slots=True)
class DiurnalProcess(ArrivalProcess):
    """Sinusoidally modulated Poisson between trough and peak rate.

    The instantaneous rate is ``rate + (peak - rate) * (1 + sin(2*pi*t /
    period)) / 2``: it starts at the midpoint, peaks a quarter period in,
    and bottoms out at three quarters. Candidates are drawn at the peak
    rate and thinned with one keyed acceptance draw each, the textbook
    Lewis-Shedler construction for a non-homogeneous Poisson process.
    """

    rate_rps: float
    peak_rate_rps: float
    period_s: float

    name = "diurnal"
    description = "sinusoidal day/night rate between trough and peak"

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigError("diurnal arrivals need rate_rps > 0")
        if self.peak_rate_rps < self.rate_rps:
            raise ConfigError(
                "diurnal arrivals need peak_rate_rps >= rate_rps "
                f"(got peak {self.peak_rate_rps} < trough {self.rate_rps})"
            )
        if self.period_s <= 0:
            raise ConfigError("diurnal arrivals need period_s > 0")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        swing = (self.peak_rate_rps - self.rate_rps) / 2.0
        return self.rate_rps + swing * (1.0 + sin(2.0 * pi * t / self.period_s))

    def times(self, rng: KeyedRng, count: int) -> tuple[float, ...]:
        self._check_count(count)
        now, out, candidate = 0.0, [], 0
        while len(out) < count:
            gap = rng.stream("diurnal-gap", candidate).exponential(
                1.0 / self.peak_rate_rps
            )
            now += float(gap)
            accept = rng.uniform("diurnal-accept", candidate)
            if accept < self.rate_at(now) / self.peak_rate_rps:
                out.append(now)
            candidate += 1
        return tuple(out)


@dataclass(frozen=True, slots=True)
class BurstyProcess(ArrivalProcess):
    """On/off Markov-modulated Poisson arrivals.

    Phase ``k`` is "on" for even ``k`` (rate ``burst_rate_rps``, duration
    exponential with mean ``on_s``) and "off" for odd ``k`` (background
    ``rate_rps``, mean ``off_s``). Within a phase, arrivals are Poisson
    at the phase rate, each gap keyed by ``(phase, index)``; an arrival
    falling past the phase boundary is discarded and the next phase
    starts at the boundary, so the realized process genuinely switches
    rates rather than smearing one long gap across phases.
    """

    rate_rps: float
    burst_rate_rps: float
    on_s: float
    off_s: float

    name = "bursty"
    description = "on/off flash crowds over a background rate"

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigError("bursty arrivals need rate_rps > 0")
        if self.burst_rate_rps <= 0:
            raise ConfigError("bursty arrivals need burst_rate_rps > 0")
        if self.on_s <= 0 or self.off_s <= 0:
            raise ConfigError("bursty arrivals need on_s > 0 and off_s > 0")

    def times(self, rng: KeyedRng, count: int) -> tuple[float, ...]:
        self._check_count(count)
        out: list[float] = []
        phase_start, phase = 0.0, 0
        while len(out) < count:
            on = phase % 2 == 0
            mean_len = self.on_s if on else self.off_s
            rate = self.burst_rate_rps if on else self.rate_rps
            length = float(
                rng.stream("bursty-phase", phase).exponential(mean_len)
            )
            phase_end = phase_start + length
            now, i = phase_start, 0
            while len(out) < count:
                gap = rng.stream("bursty-gap", phase, i).exponential(1.0 / rate)
                now += float(gap)
                if now >= phase_end:
                    break
                out.append(now)
                i += 1
            phase_start, phase = phase_end, phase + 1
        return tuple(out)


_ARRIVALS: dict[str, Callable[..., ArrivalProcess]] = {
    PoissonProcess.name: PoissonProcess,
    DiurnalProcess.name: DiurnalProcess,
    BurstyProcess.name: BurstyProcess,
}


def list_arrivals() -> list[str]:
    """Registered arrival-process names."""
    return sorted(_ARRIVALS)


def arrival_descriptions() -> dict[str, str]:
    """Process name → one-line description (for the CLI listing)."""
    return {name: _ARRIVALS[name].description for name in list_arrivals()}


def build_arrival(name: str, **params) -> ArrivalProcess:
    """Instantiate an arrival process by registry name.

    Unknown names raise :class:`~repro.errors.ConfigError` with a
    nearest-match suggestion; bad parameters raise from the process's
    own validator.
    """
    try:
        factory = _ARRIVALS[name]
    except KeyError:
        from repro.utils.suggest import did_you_mean

        raise ConfigError(
            f"unknown arrival process {name!r}{did_you_mean(name, _ARRIVALS)}; "
            f"registered: {', '.join(list_arrivals())}"
        ) from None
    try:
        return factory(**params)
    except TypeError as error:
        raise ConfigError(f"bad {name} arrival parameters: {error}") from None
