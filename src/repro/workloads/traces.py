"""Step-length models fitted to the paper's workload characterization.

Fig. 3 (right) profiles Qwen2.5-Math-1.5B on AIME: the token count of one
thinking step averages roughly 150-250 tokens while outliers reach ~1200,
and this avg-vs-max disparity persists across all step indices. A lognormal
with a hard cap reproduces both the heavy tail and the cap the serving
system imposes (``max_tokens`` per step).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, log

from repro.utils.rng import KeyedRng

__all__ = ["StepLengthModel"]


@dataclass(frozen=True, slots=True)
class StepLengthModel:
    """Lognormal step-length distribution with floor and cap.

    ``median_tokens`` is the distribution median (``exp(mu)``), ``sigma``
    the log-space spread. Draws are keyed, so a step's length depends only
    on what is being generated, never on scheduling order.
    """

    median_tokens: float
    sigma: float
    min_tokens: int = 8
    max_tokens: int = 1280

    def __post_init__(self) -> None:
        if self.median_tokens <= 0:
            raise ValueError("median_tokens must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 < self.min_tokens <= self.max_tokens:
            raise ValueError("need 0 < min_tokens <= max_tokens")

    @property
    def mean_tokens(self) -> float:
        """Uncapped lognormal mean (the cap pulls the realized mean down)."""
        return self.median_tokens * exp(self.sigma**2 / 2.0)

    def sample(self, rng: KeyedRng, *key, cap: int | None = None) -> int:
        """Draw one step length for the addressed key.

        ``cap`` lets a search algorithm impose a tighter per-step budget
        (the Varying Granularity variant does exactly this).
        """
        raw = rng.lognormal("step-len", *key, mean=log(self.median_tokens), sigma=self.sigma)
        limit = self.max_tokens if cap is None else min(cap, self.max_tokens)
        if limit < self.min_tokens:
            return max(1, limit)
        return int(min(max(raw, self.min_tokens), limit))
