"""Roofline latency model (paper Sec. 4.3.1).

The paper estimates the latency of one batch in each stage as::

    T_roof = max(FLOPs / P, Bytes / BW)

where ``P`` is the device's peak compute and ``BW`` its peak memory
bandwidth. The same model drives this reproduction's simulated clock: every
engine step is costed by the roofline over the FLOPs/bytes of the batch it
executes, which is what makes decode memory-bound (weight reads dominate)
and prefill compute-bound — the asymmetry behind Fig. 6 and the asymmetric
memory allocator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import DeviceSpec

__all__ = ["Roofline", "RooflinePoint"]


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """One costed operation: where it lands on the roofline."""

    flops: float
    bytes: float
    compute_time: float
    memory_time: float

    @property
    def latency(self) -> float:
        """The roofline latency: max of compute-bound and memory-bound time."""
        return max(self.compute_time, self.memory_time)

    @property
    def compute_bound(self) -> bool:
        """True when compute, not bandwidth, limits this operation."""
        return self.compute_time >= self.memory_time

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved (inf for pure-compute work)."""
        if self.bytes == 0:
            return float("inf")
        return self.flops / self.bytes


class Roofline:
    """Latency estimator bound to one device.

    An optional ``efficiency`` factor (0, 1] derates both peaks uniformly to
    model achievable rather than theoretical throughput; it scales all
    latencies equally and therefore never changes any comparison this
    library makes.
    """

    def __init__(self, device: DeviceSpec, efficiency: float = 0.6) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        self._device = device
        self._efficiency = efficiency

    @property
    def device(self) -> DeviceSpec:
        return self._device

    @property
    def efficiency(self) -> float:
        return self._efficiency

    def point(self, flops: float, num_bytes: float) -> RooflinePoint:
        """Cost one operation, returning the full roofline breakdown."""
        if flops < 0 or num_bytes < 0:
            raise ValueError("flops and bytes must be non-negative")
        peak = self._device.peak_flops * self._efficiency
        bandwidth = self._device.mem_bandwidth * self._efficiency
        return RooflinePoint(
            flops=flops,
            bytes=num_bytes,
            compute_time=flops / peak,
            memory_time=num_bytes / bandwidth,
        )

    def latency(self, flops: float, num_bytes: float) -> float:
        """Shorthand for ``point(...).latency``."""
        return self.point(flops, num_bytes).latency

    def batched_point(
        self,
        flops: float,
        num_bytes: float,
        shared_bytes: float,
        occupancy: int,
    ) -> RooflinePoint:
        """Cost one member of an ``occupancy``-wide co-scheduled batch step.

        ``shared_bytes`` is traffic the whole batch issues once per step —
        the weight read, for a decode or prefill launch — so each member
        is billed its ``1/occupancy`` share of it, while the rest of
        ``num_bytes`` (per-member KV reads and writes) and all FLOPs stay
        fully charged. Summed over the members, a batch step therefore
        reads the weights once and everything else in proportion to
        occupancy — the continuous-batching amortization. ``occupancy=1``
        degenerates to :meth:`point` exactly.
        """
        if occupancy < 1:
            raise ValueError("occupancy must be >= 1")
        if shared_bytes < 0:
            raise ValueError("shared_bytes must be non-negative")
        if occupancy == 1:
            return self.point(flops, num_bytes)
        shared = min(shared_bytes, num_bytes)
        return self.point(flops, (num_bytes - shared) + shared / occupancy)

    def batched_latency(
        self,
        flops: float,
        num_bytes: float,
        shared_bytes: float,
        occupancy: int,
    ) -> float:
        """Shorthand for ``batched_point(...).latency``."""
        return self.batched_point(flops, num_bytes, shared_bytes, occupancy).latency
