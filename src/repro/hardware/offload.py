"""Host<->device KV transfer model for the offloading strategy (Sec. 4.3.2).

When GPU memory is extremely constrained (e.g. the 8 GB RTX 3070 Ti run in
Fig. 15), FastTTS can offload the inactive model's KV cache to CPU memory,
letting each model use the full GPU cache while it runs. The price is a
PCIe transfer each time the active model switches. This module charges that
price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.device import DeviceSpec

__all__ = ["OffloadLink"]


@dataclass(frozen=True, slots=True)
class OffloadLink:
    """Transfer cost model over the host link.

    Attributes
    ----------
    device:
        The accelerator whose PCIe bandwidth bounds the transfer.
    fixed_latency:
        Per-transfer setup cost in seconds (driver + DMA ring setup). A few
        tens of microseconds on PCIe 4.0; it only matters for tiny KV sizes.
    """

    device: DeviceSpec
    fixed_latency: float = 50e-6

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` one way across the link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.fixed_latency + num_bytes / self.device.pcie_bandwidth

    def swap_time(self, out_bytes: int, in_bytes: int) -> float:
        """Seconds for an eviction + restore pair (not overlapped).

        The paper's ``T_offload_overhead`` for one generator/verifier switch:
        write the outgoing model's KV to host, then read the incoming
        model's KV back.
        """
        return self.transfer_time(out_bytes) + self.transfer_time(in_bytes)
