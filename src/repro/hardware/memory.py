"""GPU memory ledgers.

:class:`MemoryLedger` tracks how a device's usable VRAM is split between
model weights, per-model KV cache partitions, and the reserved slice
(Fig. 9 of the paper). The asymmetric allocator (Sec. 4.3) decides the KV
split; this ledger enforces that the decision is feasible and answers "how
much KV memory is left?".

:class:`KVLedger` tracks the *runtime* KV footprints of the sessions
co-resident on one device of a :class:`~repro.core.pool.DevicePool`. A
single session's plan is guaranteed to fit the device's KV budget by
admission control, but interleaving schedulers pause sessions with their
KV still resident — two KV-heavy sessions can together oversubscribe the
device. The ledger models that contention with whole-session granularity:
when the active session's growth (or a paused session's restore) does not
fit, the least-recently-run co-resident sessions are swapped out to host
memory, and the fleet charges the PCIe write/read time on the device
clock. Eviction is bookkeeping here; *time* is charged by the caller via
:class:`~repro.hardware.offload.OffloadLink`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError
from repro.hardware.device import DeviceSpec

__all__ = ["KVLedger", "MemoryLedger", "MemoryReservation"]


@dataclass(frozen=True, slots=True)
class MemoryReservation:
    """One named allocation inside the ledger."""

    owner: str
    kind: str  # "weights" | "kv"
    num_bytes: int


@dataclass
class MemoryLedger:
    """Accounting of VRAM across weights and KV partitions.

    The ledger is intentionally strict: over-allocation raises
    :class:`~repro.errors.CapacityError` instead of silently clamping,
    because a real serving system would fail to initialize in the same
    situation.
    """

    device: DeviceSpec
    _reservations: dict[tuple[str, str], MemoryReservation] = field(default_factory=dict)

    @property
    def capacity_bytes(self) -> int:
        """Usable VRAM (device capacity minus the reserved fraction)."""
        return self.device.usable_bytes

    @property
    def allocated_bytes(self) -> int:
        return sum(r.num_bytes for r in self._reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def reserve(self, owner: str, kind: str, num_bytes: int) -> MemoryReservation:
        """Reserve ``num_bytes`` for ``(owner, kind)``.

        Re-reserving the same key replaces the prior amount (the allocator
        re-partitions KV at runtime when system state changes, Sec. 4.3.1).
        """
        if kind not in ("weights", "kv"):
            raise ValueError("kind must be 'weights' or 'kv'")
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        key = (owner, kind)
        previous = self._reservations.get(key)
        available = self.free_bytes + (previous.num_bytes if previous else 0)
        if num_bytes > available:
            raise CapacityError(
                f"cannot reserve {num_bytes} bytes for {owner}/{kind}: "
                f"only {available} of {self.capacity_bytes} bytes available"
            )
        reservation = MemoryReservation(owner=owner, kind=kind, num_bytes=num_bytes)
        self._reservations[key] = reservation
        return reservation

    def release(self, owner: str, kind: str) -> None:
        """Drop a reservation; releasing a missing key is an error."""
        try:
            del self._reservations[(owner, kind)]
        except KeyError:
            raise CapacityError(f"no reservation for {owner}/{kind}") from None

    def reserved_for(self, owner: str, kind: str) -> int:
        """Bytes currently reserved under ``(owner, kind)`` (0 if none)."""
        reservation = self._reservations.get((owner, kind))
        return reservation.num_bytes if reservation else 0

    def breakdown(self) -> dict[str, int]:
        """Human-readable split: ``{"owner/kind": bytes, ..., "free": bytes}``."""
        result = {f"{o}/{k}": r.num_bytes for (o, k), r in sorted(self._reservations.items())}
        result["free"] = self.free_bytes
        return result


class KVLedger:
    """Runtime accounting of co-resident sessions' KV on one device.

    Each owner (a session id) has a device-resident byte count and a
    host-swapped byte count. The invariants the fleet relies on:

    * an owner's KV is fully device-resident while it runs (the fleet
      calls :meth:`restore` before resuming a paused owner);
    * when total residency would exceed capacity, *other* owners are
      evicted in least-recently-run order (whole-owner granularity — the
      simulation does not split one session's KV across device and host
      mid-run, matching the offload strategy's all-or-nothing transfers);
    * eviction never raises: a lone owner whose plan legitimately fills
      the budget simply occupies it. Oversubscription therefore costs
      swap *time* (charged by the caller from the returned byte counts),
      never correctness.

    All byte movements are tallied (``swapped_out_bytes`` /
    ``swapped_in_bytes`` / ``peak_resident_bytes``) for the per-device
    fleet metrics rollup.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        self._resident: dict[str, int] = {}
        self._swapped: dict[str, int] = {}
        self._stamp: dict[str, int] = {}
        self._tick = 0
        self.swapped_out_bytes = 0
        self.swapped_in_bytes = 0
        self.peak_resident_bytes = 0

    # -- introspection ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def resident_bytes(self) -> int:
        return sum(self._resident.values())

    @property
    def free_bytes(self) -> int:
        return self._capacity - self.resident_bytes

    @property
    def owners(self) -> list[str]:
        return sorted(self._resident)

    def resident_of(self, owner: str) -> int:
        return self._resident.get(owner, 0)

    def swapped_of(self, owner: str) -> int:
        return self._swapped.get(owner, 0)

    # -- mutation --------------------------------------------------------

    def _touch(self, owner: str) -> None:
        self._tick += 1
        self._stamp[owner] = self._tick
        self._resident.setdefault(owner, 0)
        self._swapped.setdefault(owner, 0)

    def _evict_for(self, need: int, keep: str) -> list[tuple[str, int]]:
        """Swap out other owners (LRU first) until ``need`` bytes are free.

        Returns ``(owner, bytes)`` per eviction so the caller can charge
        the PCIe writes. Stops when the deficit is covered or no victims
        remain (the latter only when ``keep`` alone fills the budget).
        """
        evicted: list[tuple[str, int]] = []
        if need <= 0:
            return evicted
        victims = sorted(
            (o for o, b in self._resident.items() if o != keep and b > 0),
            key=lambda o: (self._stamp.get(o, 0), o),
        )
        freed = 0
        for victim in victims:
            if freed >= need:
                break
            moved = self._resident[victim]
            self._resident[victim] = 0
            self._swapped[victim] += moved
            self.swapped_out_bytes += moved
            freed += moved
            evicted.append((victim, moved))
        return evicted

    def charge_growth(self, owner: str, total_bytes: int) -> list[tuple[str, int]]:
        """Record ``owner``'s post-round KV footprint as device-resident.

        Called after every round the owner runs (its KV is fully resident
        while it executes). Returns the evictions needed to make room —
        the *running* session pays for displacing its neighbours.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        self._touch(owner)
        self._resident[owner] = total_bytes
        self._swapped[owner] = 0
        evicted = self._evict_for(self.resident_bytes - self._capacity, keep=owner)
        self.peak_resident_bytes = max(self.peak_resident_bytes, self.resident_bytes)
        return evicted

    def restore(self, owner: str) -> tuple[int, list[tuple[str, int]]]:
        """Bring ``owner``'s swapped-out KV back before it resumes.

        Returns ``(restored_bytes, evictions)``; both are zero/empty when
        the owner was never evicted, so run-to-completion schedules pass
        through without any accounting (or cost).
        """
        back = self._swapped.get(owner, 0)
        if back == 0:
            return 0, []
        self._touch(owner)
        evicted = self._evict_for(back - self.free_bytes, keep=owner)
        self._swapped[owner] = 0
        self._resident[owner] += back
        self.swapped_in_bytes += back
        self.peak_resident_bytes = max(self.peak_resident_bytes, self.resident_bytes)
        return back, evicted

    def admit(self, owner: str, num_bytes: int) -> list[tuple[str, int]]:
        """Place ``num_bytes`` of migrated-in KV; evicts others to fit.

        Raises :class:`~repro.errors.CapacityError` when the incoming
        footprint exceeds the whole budget (the migration must be refused
        before any cost is charged).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes > self._capacity:
            raise CapacityError(
                f"cannot admit {num_bytes} B of KV for {owner!r}: device KV "
                f"budget is {self._capacity} B"
            )
        self._touch(owner)
        self._resident[owner] = num_bytes
        self._swapped[owner] = 0
        evicted = self._evict_for(self.resident_bytes - self._capacity, keep=owner)
        self.peak_resident_bytes = max(self.peak_resident_bytes, self.resident_bytes)
        return evicted

    def release(self, owner: str) -> int:
        """Drop an owner entirely (finished or migrated away); returns freed device bytes."""
        self._swapped.pop(owner, None)
        self._stamp.pop(owner, None)
        return self._resident.pop(owner, 0)
