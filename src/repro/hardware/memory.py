"""GPU memory ledger.

Tracks how a device's usable VRAM is split between model weights, per-model
KV cache partitions, and the reserved slice (Fig. 9 of the paper). The
asymmetric allocator (Sec. 4.3) decides the KV split; this ledger enforces
that the decision is feasible and answers "how much KV memory is left?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError
from repro.hardware.device import DeviceSpec

__all__ = ["MemoryLedger", "MemoryReservation"]


@dataclass(frozen=True, slots=True)
class MemoryReservation:
    """One named allocation inside the ledger."""

    owner: str
    kind: str  # "weights" | "kv"
    num_bytes: int


@dataclass
class MemoryLedger:
    """Accounting of VRAM across weights and KV partitions.

    The ledger is intentionally strict: over-allocation raises
    :class:`~repro.errors.CapacityError` instead of silently clamping,
    because a real serving system would fail to initialize in the same
    situation.
    """

    device: DeviceSpec
    _reservations: dict[tuple[str, str], MemoryReservation] = field(default_factory=dict)

    @property
    def capacity_bytes(self) -> int:
        """Usable VRAM (device capacity minus the reserved fraction)."""
        return self.device.usable_bytes

    @property
    def allocated_bytes(self) -> int:
        return sum(r.num_bytes for r in self._reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def reserve(self, owner: str, kind: str, num_bytes: int) -> MemoryReservation:
        """Reserve ``num_bytes`` for ``(owner, kind)``.

        Re-reserving the same key replaces the prior amount (the allocator
        re-partitions KV at runtime when system state changes, Sec. 4.3.1).
        """
        if kind not in ("weights", "kv"):
            raise ValueError("kind must be 'weights' or 'kv'")
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        key = (owner, kind)
        previous = self._reservations.get(key)
        available = self.free_bytes + (previous.num_bytes if previous else 0)
        if num_bytes > available:
            raise CapacityError(
                f"cannot reserve {num_bytes} bytes for {owner}/{kind}: "
                f"only {available} of {self.capacity_bytes} bytes available"
            )
        reservation = MemoryReservation(owner=owner, kind=kind, num_bytes=num_bytes)
        self._reservations[key] = reservation
        return reservation

    def release(self, owner: str, kind: str) -> None:
        """Drop a reservation; releasing a missing key is an error."""
        try:
            del self._reservations[(owner, kind)]
        except KeyError:
            raise CapacityError(f"no reservation for {owner}/{kind}") from None

    def reserved_for(self, owner: str, kind: str) -> int:
        """Bytes currently reserved under ``(owner, kind)`` (0 if none)."""
        reservation = self._reservations.get((owner, kind))
        return reservation.num_bytes if reservation else 0

    def breakdown(self) -> dict[str, int]:
        """Human-readable split: ``{"owner/kind": bytes, ..., "free": bytes}``."""
        result = {f"{o}/{k}": r.num_bytes for (o, k), r in sorted(self._reservations.items())}
        result["free"] = self.free_bytes
        return result
