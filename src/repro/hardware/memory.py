"""GPU memory ledgers.

:class:`MemoryLedger` tracks how a device's usable VRAM is split between
model weights, per-model KV cache partitions, and the reserved slice
(Fig. 9 of the paper). The asymmetric allocator (Sec. 4.3) decides the KV
split; this ledger enforces that the decision is feasible and answers "how
much KV memory is left?".

:class:`KVLedger` tracks the *runtime* KV footprints of the sessions
co-resident on one device of a :class:`~repro.core.pool.DevicePool`. A
single session's plan is guaranteed to fit the device's KV budget by
admission control, but interleaving schedulers pause sessions with their
KV still resident — two KV-heavy sessions can together oversubscribe the
device. The ledger models that contention with whole-session granularity:
when the active session's growth (or a paused session's restore) does not
fit, the least-recently-run co-resident sessions are swapped out to host
memory, and the fleet charges the PCIe write/read time on the device
clock. Eviction is bookkeeping here; *time* is charged by the caller via
:class:`~repro.hardware.offload.OffloadLink`.

:class:`SharedKVLedger` refines that accounting to *segment* granularity
against a per-lane :class:`~repro.kvcache.radix.RadixTree` (the paper's
Sec. 4.2 structure, lifted from one request's beams to the whole lane).
Sessions report their beams' KV as segment lineages
(:class:`KVSegment` claims); a segment resident on behalf of N sessions
is charged once and refcounted, eviction picks LRU leaf-frontier
segments that no *running* session's path needs, and restore charges
PCIe only for the unique bytes actually swapped. This is what makes
replica racing (First Finish Search) and multi-tenant lanes cheaper
than run-to-completion instead of merely differently scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import CapacityError
from repro.hardware.device import DeviceSpec
from repro.kvcache.radix import RadixTree
from repro.utils.rng import stable_hash64

__all__ = [
    "KVLedger",
    "KVSegment",
    "MemoryLedger",
    "MemoryReservation",
    "SharedKVLedger",
]


@dataclass(frozen=True, slots=True)
class MemoryReservation:
    """One named allocation inside the ledger."""

    owner: str
    kind: str  # "weights" | "kv"
    num_bytes: int


@dataclass
class MemoryLedger:
    """Accounting of VRAM across weights and KV partitions.

    The ledger is intentionally strict: over-allocation raises
    :class:`~repro.errors.CapacityError` instead of silently clamping,
    because a real serving system would fail to initialize in the same
    situation.
    """

    device: DeviceSpec
    _reservations: dict[tuple[str, str], MemoryReservation] = field(default_factory=dict)

    @property
    def capacity_bytes(self) -> int:
        """Usable VRAM (device capacity minus the reserved fraction)."""
        return self.device.usable_bytes

    @property
    def allocated_bytes(self) -> int:
        return sum(r.num_bytes for r in self._reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def reserve(self, owner: str, kind: str, num_bytes: int) -> MemoryReservation:
        """Reserve ``num_bytes`` for ``(owner, kind)``.

        Re-reserving the same key replaces the prior amount (the allocator
        re-partitions KV at runtime when system state changes, Sec. 4.3.1).
        """
        if kind not in ("weights", "kv"):
            raise ValueError("kind must be 'weights' or 'kv'")
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        key = (owner, kind)
        previous = self._reservations.get(key)
        available = self.free_bytes + (previous.num_bytes if previous else 0)
        if num_bytes > available:
            raise CapacityError(
                f"cannot reserve {num_bytes} bytes for {owner}/{kind}: "
                f"only {available} of {self.capacity_bytes} bytes available"
            )
        reservation = MemoryReservation(owner=owner, kind=kind, num_bytes=num_bytes)
        self._reservations[key] = reservation
        return reservation

    def release(self, owner: str, kind: str) -> None:
        """Drop a reservation; releasing a missing key is an error."""
        try:
            del self._reservations[(owner, kind)]
        except KeyError:
            raise CapacityError(f"no reservation for {owner}/{kind}") from None

    def reserved_for(self, owner: str, kind: str) -> int:
        """Bytes currently reserved under ``(owner, kind)`` (0 if none)."""
        reservation = self._reservations.get((owner, kind))
        return reservation.num_bytes if reservation else 0

    def breakdown(self) -> dict[str, int]:
        """Human-readable split: ``{"owner/kind": bytes, ..., "free": bytes}``."""
        result = {f"{o}/{k}": r.num_bytes for (o, k), r in sorted(self._reservations.items())}
        result["free"] = self.free_bytes
        return result


class KVLedger:
    """Runtime accounting of co-resident sessions' KV on one device.

    Each owner (a session id) has a device-resident byte count and a
    host-swapped byte count. The invariants the fleet relies on:

    * an owner's KV is fully device-resident while it runs (the fleet
      calls :meth:`restore` before resuming a paused owner);
    * when total residency would exceed capacity, *other* owners are
      evicted in least-recently-run order (whole-owner granularity — the
      simulation does not split one session's KV across device and host
      mid-run, matching the offload strategy's all-or-nothing transfers);
    * eviction never raises: a lone owner whose plan legitimately fills
      the budget simply occupies it. Oversubscription therefore costs
      swap *time* (charged by the caller from the returned byte counts),
      never correctness.

    All byte movements are tallied (``swapped_out_bytes`` /
    ``swapped_in_bytes`` / ``peak_resident_bytes``) for the per-device
    fleet metrics rollup.
    """

    #: Whether this ledger accounts segment lineages (``charge_growth_segments``)
    #: rather than opaque per-owner byte blobs. The fleet dispatches on it.
    segment_granular = False

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        self._resident: dict[str, int] = {}
        self._swapped: dict[str, int] = {}
        self._stamp: dict[str, int] = {}
        self._tick = 0
        self.swapped_out_bytes = 0
        self.swapped_in_bytes = 0
        self.peak_resident_bytes = 0

    # -- introspection ---------------------------------------------------

    @property
    def shared_bytes(self) -> int:
        """Bytes saved right now by cross-session sharing (0 without it)."""
        return 0

    @property
    def peak_shared_bytes(self) -> int:
        """Running peak of :attr:`shared_bytes` (0 without sharing)."""
        return 0

    @property
    def logical_resident_bytes(self) -> int:
        """Sum of every owner's logical footprint (= resident, no sharing)."""
        return self.resident_bytes

    @property
    def peak_logical_bytes(self) -> int:
        """Running peak of :attr:`logical_resident_bytes` (= resident peak)."""
        return self.peak_resident_bytes

    @property
    def dedup_ratio(self) -> float:
        """Logical over physical resident bytes (1.0 without sharing)."""
        return 1.0

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def resident_bytes(self) -> int:
        return sum(self._resident.values())

    @property
    def free_bytes(self) -> int:
        return self._capacity - self.resident_bytes

    @property
    def owners(self) -> list[str]:
        return sorted(self._resident)

    def resident_of(self, owner: str) -> int:
        return self._resident.get(owner, 0)

    def swapped_of(self, owner: str) -> int:
        return self._swapped.get(owner, 0)

    # -- planned-overlap probes (read-only) ------------------------------
    #
    # Sharing-aware placement and dedup-aware admission ask a lane "how
    # much of this request's planned KV do you already hold?" *before*
    # any session exists. A whole-session ledger cannot see segments, so
    # every probe reports zero overlap and the callers degrade to the
    # pre-sharing full-footprint behaviour.

    def resident_segment_bytes(self, node_id: int) -> int:
        """Resident device bytes of one lane-tree segment (0 without sharing)."""
        return 0

    def resident_overlap_bytes(self, claims: "Iterable[KVSegment]") -> int:
        """Bytes of ``claims`` already resident on this lane (0 without sharing).

        The guaranteed overlap: only the claims' own segments count, so
        the result is safe to *bill against* — a new session registering
        these claims will physically share at least this much.
        """
        return 0

    def resident_subtree_bytes(self, node_id: int) -> int:
        """Resident bytes at or below ``node_id`` in the lane tree (0 here)."""
        return 0

    def unique_planned_bytes(
        self, planned_bytes: int, claims: "Iterable[KVSegment]"
    ) -> int:
        """A request's planned footprint minus what this lane already holds.

        Dedup-aware admission bills this instead of ``planned_bytes``:
        segments of ``claims`` resident on the lane are shared, not
        duplicated, so only the remainder competes for ledger headroom.
        Identity (full footprint) on a whole-session ledger.
        """
        if planned_bytes < 0:
            raise ValueError("planned_bytes must be non-negative")
        return max(0, planned_bytes - self.resident_overlap_bytes(claims))

    # -- mutation --------------------------------------------------------

    def _touch(self, owner: str) -> None:
        self._tick += 1
        self._stamp[owner] = self._tick
        self._resident.setdefault(owner, 0)
        self._swapped.setdefault(owner, 0)

    def _evict_for(self, need: int, keep: str) -> list[tuple[str, int]]:
        """Swap out other owners (LRU first) until ``need`` bytes are free.

        Returns ``(owner, bytes)`` per eviction so the caller can charge
        the PCIe writes. Stops when the deficit is covered or no victims
        remain (the latter only when ``keep`` alone fills the budget).
        """
        evicted: list[tuple[str, int]] = []
        if need <= 0:
            return evicted
        victims = sorted(
            (o for o, b in self._resident.items() if o != keep and b > 0),
            key=lambda o: (self._stamp.get(o, 0), o),
        )
        freed = 0
        for victim in victims:
            if freed >= need:
                break
            moved = self._resident[victim]
            self._resident[victim] = 0
            self._swapped[victim] += moved
            self.swapped_out_bytes += moved
            freed += moved
            evicted.append((victim, moved))
        return evicted

    def charge_growth(
        self, owner: str, total_bytes: int
    ) -> tuple[int, list[tuple[str, int]]]:
        """Record ``owner``'s post-round KV footprint as device-resident.

        Called after every round the owner runs (its KV is fully resident
        while it executes). Returns ``(restored_bytes, evictions)``: if the
        owner had been (partially) swapped out since it last ran, growth
        implies its KV came back first, so the swapped bytes are charged as
        swapped-in — the caller bills the PCIe read exactly as it would for
        an explicit :meth:`restore` — and the evictions needed to make room
        are billed to the *running* session displacing its neighbours.
        """
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        self._touch(owner)
        restored = self._swapped[owner]
        if restored:
            # Growth on an evicted owner: its host-side KV must be read
            # back before it can grow. Route through restore accounting
            # instead of silently zeroing the swapped bytes.
            self.swapped_in_bytes += restored
        self._resident[owner] = total_bytes
        self._swapped[owner] = 0
        evicted = self._evict_for(self.resident_bytes - self._capacity, keep=owner)
        self.peak_resident_bytes = max(self.peak_resident_bytes, self.resident_bytes)
        return restored, evicted

    def restore(self, owner: str) -> tuple[int, list[tuple[str, int]]]:
        """Bring ``owner``'s swapped-out KV back before it resumes.

        Returns ``(restored_bytes, evictions)``; both are zero/empty when
        the owner was never evicted, so run-to-completion schedules pass
        through without any accounting (or cost).
        """
        back = self._swapped.get(owner, 0)
        if back == 0:
            return 0, []
        self._touch(owner)
        evicted = self._evict_for(back - self.free_bytes, keep=owner)
        self._swapped[owner] = 0
        self._resident[owner] += back
        self.swapped_in_bytes += back
        self.peak_resident_bytes = max(self.peak_resident_bytes, self.resident_bytes)
        return back, evicted

    def admit(self, owner: str, num_bytes: int) -> list[tuple[str, int]]:
        """Place ``num_bytes`` of migrated-in KV; evicts others to fit.

        Raises :class:`~repro.errors.CapacityError` when the incoming
        footprint exceeds the whole budget (the migration must be refused
        before any cost is charged).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes > self._capacity:
            raise CapacityError(
                f"cannot admit {num_bytes} B of KV for {owner!r}: device KV "
                f"budget is {self._capacity} B"
            )
        self._touch(owner)
        self._resident[owner] = num_bytes
        self._swapped[owner] = 0
        evicted = self._evict_for(self.resident_bytes - self._capacity, keep=owner)
        self.peak_resident_bytes = max(self.peak_resident_bytes, self.resident_bytes)
        return evicted

    def release(self, owner: str) -> int:
        """Drop an owner entirely (finished or migrated away); returns freed device bytes."""
        self._swapped.pop(owner, None)
        self._stamp.pop(owner, None)
        return self._resident.pop(owner, 0)

    def resize(self, capacity_bytes: int) -> list[tuple[str, int]]:
        """Change the budget at runtime; shrinking evicts LRU owners to fit.

        Models a KV pressure spike (a co-tenant claiming VRAM): residents
        above the new budget are swapped out immediately — the returned
        ``(owner, bytes)`` evictions are the storm the caller charges —
        and pay restores through the ordinary resume path. Growing the
        budget evicts nothing.
        """
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        return self._evict_for(self.resident_bytes - self._capacity, keep="")


@dataclass(frozen=True, slots=True)
class KVSegment:
    """One segment claim a session reports to a :class:`SharedKVLedger`.

    ``node_id``/``parent_id`` are lane-tree node ids (derived by the
    session from the stable ``(problem, lineage, step)`` segment hashes,
    namespaced so only sessions whose sampled content is actually
    identical collide); ``num_bytes`` is this owner's KV bytes for the
    segment. Claims arrive parent-before-child.
    """

    node_id: int
    parent_id: int | None
    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")


@dataclass(slots=True)
class _SharedSegment:
    """Ledger-side state of one lane-tree segment."""

    node_id: int
    resident: bool = False
    swapped: bool = False  # evicted to host (vs never materialized / freed)
    stamp: int = 0
    owners: dict[str, int] = field(default_factory=dict)  # owner -> bytes

    @property
    def num_bytes(self) -> int:
        """Unique device bytes this segment occupies when resident.

        Owners can disagree on length (a shared step one session has
        fully decoded while another still holds a truncated speculative
        head); the physical copy covers the longest claim.
        """
        return max(self.owners.values(), default=0)


class SharedKVLedger(KVLedger):
    """Segment-granular KV accounting with cross-session prefix sharing.

    Drop-in for :class:`KVLedger` on a pool lane, with one difference the
    fleet dispatches on (:attr:`segment_granular`): the running session
    reports its resident KV as a lineage of :class:`KVSegment` claims
    (:meth:`charge_growth_segments`) instead of one opaque byte count.
    The ledger keeps a per-lane :class:`~repro.kvcache.radix.RadixTree`
    over those claims; a segment resident on behalf of N sessions holds
    device bytes **once** and carries a refcount. Invariants:

    * ``resident_bytes`` is the sum of *unique* resident segment bytes —
      never double-billed across co-resident owners;
    * eviction operates on segments: LRU by last touch across owning
      sessions, leaf-frontier first (a prefix never leaves before its
      suffix), and never a segment the *running* session's paths need;
    * :meth:`restore` re-charges PCIe only for the unique bytes actually
      swapped out — segments a co-resident session kept alive come back
      for free, which is exactly the replica-racing dedup win;
    * an owner's logical footprint (``resident_of + swapped_of``) is
      conserved regardless of how much of it is physically shared.

    The byte-level API (:meth:`charge_growth` / :meth:`admit`) still
    works — the footprint is held as a single private root segment until
    the next segment report replaces it — so migration and byte-only
    callers need no special casing.
    """

    segment_granular = True

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._lane_tree = RadixTree()
        self._segments: dict[int, _SharedSegment] = {}
        self._owner_segs: dict[str, set[int]] = {}
        self._peak_shared = 0
        self._peak_logical = 0

    # -- introspection ---------------------------------------------------

    @property
    def tree(self) -> RadixTree:
        """The lane's radix tree over registered segments."""
        return self._lane_tree

    @property
    def resident_bytes(self) -> int:
        return sum(s.num_bytes for s in self._segments.values() if s.resident)

    @property
    def owners(self) -> list[str]:
        return sorted(self._owner_segs)

    @property
    def shared_bytes(self) -> int:
        # Bytes saved versus whole-session accounting: every owner's
        # logical claim minus the single physical copy (sized by the
        # longest claim).
        return sum(
            sum(seg.owners.values()) - seg.num_bytes
            for seg in self._segments.values()
            if seg.resident and len(seg.owners) > 1
        )

    @property
    def peak_shared_bytes(self) -> int:
        return self._peak_shared

    @property
    def peak_logical_bytes(self) -> int:
        return self._peak_logical

    @property
    def logical_resident_bytes(self) -> int:
        return sum(
            bytes_
            for seg in self._segments.values()
            if seg.resident
            for bytes_ in seg.owners.values()
        )

    @property
    def dedup_ratio(self) -> float:
        """Logical over physical bytes at the run's resident peak (>= 1)."""
        if self._peak_logical == 0 or self.peak_resident_bytes == 0:
            return 1.0
        return self._peak_logical / self.peak_resident_bytes

    def resident_of(self, owner: str) -> int:
        return sum(
            seg.owners[owner]
            for node in self._owner_segs.get(owner, ())
            if (seg := self._segments[node]).resident
        )

    def swapped_of(self, owner: str) -> int:
        return sum(
            seg.owners[owner]
            for node in self._owner_segs.get(owner, ())
            if not (seg := self._segments[node]).resident
        )

    def segment_owners(self, node_id: int) -> list[str]:
        """Owners currently claiming a segment (for tests/debugging)."""
        seg = self._segments.get(node_id)
        return sorted(seg.owners) if seg else []

    def resident_segment_bytes(self, node_id: int) -> int:
        """Resident device bytes of one lane-tree segment (0 if absent/swapped)."""
        seg = self._segments.get(node_id)
        return seg.num_bytes if seg is not None and seg.resident else 0

    def resident_overlap_bytes(self, claims: "Iterable[KVSegment]") -> int:
        """Bytes of ``claims`` this lane already holds device-resident.

        Per claim, the overlap is capped at the claim's own length (a
        longer resident copy shares only the prefix the claimant needs).
        Read-only: probing never touches stamps, refcounts or peaks, so
        placement and admission can ask freely without perturbing LRU
        order.
        """
        return sum(
            min(claim.num_bytes, self.resident_segment_bytes(claim.node_id))
            for claim in claims
        )

    def resident_subtree_bytes(self, node_id: int) -> int:
        """Resident device bytes at or below ``node_id`` in the lane tree.

        The *opportunistic* overlap probe behind ``prefix_affinity``
        placement: a canonical session re-derives the same step content
        as resident same-problem sessions (draws are keyed), so every
        resident byte under the request's planned root is potentially
        shareable — not just the root itself. Includes namespaced replica
        branches, which only share the root; placement treats the result
        as an affinity *score*, while admission bills the guaranteed
        :meth:`resident_overlap_bytes` only.
        """
        if node_id not in self._lane_tree:
            return 0
        total = 0
        stack = [node_id]
        while stack:
            node = stack.pop()
            seg = self._segments.get(node)
            if seg is not None and seg.resident:
                total += seg.num_bytes
            stack.extend(self._lane_tree.get(node).children)
        return total

    def owner_leaf(self, owner: str) -> int | None:
        """The owner's deepest registered lane-tree node (None if none).

        Deterministic: maximal depth, ties broken by ascending node id.
        The prefix-affinity scheduler anchors its successor choice here.
        """
        nodes = self._owner_segs.get(owner)
        if not nodes:
            return None
        return min(nodes, key=lambda n: (-self._lane_tree.get(n).depth, n))

    # -- mutation --------------------------------------------------------

    def _ensure_segment(self, claim: KVSegment) -> _SharedSegment:
        self._lane_tree.ensure_node(claim.node_id, claim.parent_id, claim.num_bytes)
        seg = self._segments.get(claim.node_id)
        if seg is None:
            seg = _SharedSegment(node_id=claim.node_id)
            self._segments[claim.node_id] = seg
        return seg

    def _drop_claim(self, owner: str, node_id: int) -> None:
        """Remove one owner's claim; free the segment when orphaned."""
        seg = self._segments[node_id]
        seg.owners.pop(owner, None)
        if not seg.owners:
            # Nobody needs it: the bytes are freed, not swapped — there
            # is no PCIe traffic for discarding dead KV. Drop the ledger
            # entry so per-round accounting scales with live sessions,
            # not requests ever served (the lane tree keeps the node, so
            # a later re-registration reuses the same lineage).
            del self._segments[node_id]

    def _evictable(self, node_id: int, keep: set[int]) -> bool:
        seg = self._segments[node_id]
        if not seg.resident or node_id in keep:
            return False
        # Leaf-frontier only: a resident child pins its prefix (a KV
        # suffix without its prefix is useless to attention).
        return not any(
            child in self._segments and self._segments[child].resident
            for child in self._lane_tree.get(node_id).children
        )

    def _evict_segments_for(
        self, need: int, keep: set[int]
    ) -> list[tuple[str, int]]:
        """Swap out LRU leaf-frontier segments until ``need`` bytes free."""
        evicted: list[tuple[str, int]] = []
        freed = 0
        while freed < need:
            candidates = [
                node for node in self._segments if self._evictable(node, keep)
            ]
            if not candidates:
                break  # only the running session's own paths remain
            victim = min(
                candidates,
                key=lambda n: (self._segments[n].stamp, n),
            )
            seg = self._segments[victim]
            moved = seg.num_bytes
            seg.resident = False
            seg.swapped = True
            self.swapped_out_bytes += moved
            freed += moved
            evicted.append((f"seg:{victim}", moved))
        return evicted

    def _note_peaks(self) -> None:
        resident = self.resident_bytes
        if resident > self.peak_resident_bytes:
            self.peak_resident_bytes = resident
        logical = self.logical_resident_bytes
        if logical > self._peak_logical:
            self._peak_logical = logical
        shared = self.shared_bytes
        if shared > self._peak_shared:
            self._peak_shared = shared

    def charge_growth_segments(
        self, owner: str, segments: Sequence[KVSegment] | Iterable[KVSegment]
    ) -> tuple[int, list[tuple[str, int]]]:
        """Replace ``owner``'s claims with its post-round segment lineage.

        Returns ``(restored_bytes, evictions)`` exactly like
        :meth:`KVLedger.charge_growth`: ``restored_bytes`` are unique
        bytes of previously swapped-out segments that had to come back
        over PCIe before the owner could run (segments a co-resident
        session kept alive cost nothing), and the evictions are what the
        growth displaced.
        """
        claims = list(segments)
        self._tick += 1
        new_ids = {claim.node_id for claim in claims}
        for node in self._owner_segs.get(owner, set()) - new_ids:
            self._drop_claim(owner, node)
        self._owner_segs[owner] = new_ids

        restored = 0
        for claim in claims:
            seg = self._ensure_segment(claim)
            # The host copy of a swapped segment holds its pre-growth
            # length; only those bytes cross PCIe — growth beyond them is
            # decoded on device.
            host_bytes = seg.num_bytes
            seg.owners[owner] = claim.num_bytes
            if not seg.resident:
                if seg.swapped:
                    # Previously evicted to host: the grower pays the read.
                    restored += host_bytes
                    self.swapped_in_bytes += host_bytes
                # else: freshly computed on device — no PCIe.
                seg.resident = True
                seg.swapped = False
            seg.stamp = self._tick
        evicted = self._evict_segments_for(
            self.resident_bytes - self._capacity, keep=new_ids
        )
        self._note_peaks()
        return restored, evicted

    def charge_growth(
        self, owner: str, total_bytes: int
    ) -> tuple[int, list[tuple[str, int]]]:
        """Byte-level fallback: the footprint becomes one private segment."""
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        return self.charge_growth_segments(
            owner, [KVSegment(self._private_node(owner), None, total_bytes)]
        )

    def restore(self, owner: str) -> tuple[int, list[tuple[str, int]]]:
        """Bring the owner's swapped-out segments back before it resumes.

        Unique bytes only: a shared segment some co-resident session kept
        resident needs no transfer — that discount is the whole point of
        the shared ledger.
        """
        nodes = self._owner_segs.get(owner)
        if not nodes:
            return 0, []
        missing = [n for n in nodes if not self._segments[n].resident]
        if not missing:
            return 0, []
        self._tick += 1
        restored = 0
        for node in sorted(missing, key=lambda n: self._lane_tree.get(n).depth):
            seg = self._segments[node]
            seg.resident = True
            if seg.swapped:
                restored += seg.num_bytes
                self.swapped_in_bytes += seg.num_bytes
            seg.swapped = False
            seg.stamp = self._tick
        for node in nodes:
            self._segments[node].stamp = self._tick
        evicted = self._evict_segments_for(
            self.resident_bytes - self._capacity, keep=set(nodes)
        )
        self._note_peaks()
        return restored, evicted

    def admit(self, owner: str, num_bytes: int) -> list[tuple[str, int]]:
        """Place migrated-in KV as a private segment; evicts others to fit."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes > self._capacity:
            raise CapacityError(
                f"cannot admit {num_bytes} B of KV for {owner!r}: device KV "
                f"budget is {self._capacity} B"
            )
        _, evicted = self.charge_growth(owner, num_bytes)
        return evicted

    def admit_segments(
        self, owner: str, segments: Sequence[KVSegment] | Iterable[KVSegment]
    ) -> list[tuple[str, int]]:
        """Place a migrated-in session as its segment lineage (delta-aware).

        Segment-granular twin of :meth:`admit`: claims whose segments are
        already resident here gain a refcount instead of a second copy —
        only the rest becomes newly resident, and only *that* much room is
        made. The handoff is transactional: the whole-footprint capacity
        check raises :class:`~repro.errors.CapacityError` before anything
        mutates, and room is evicted *before* the first claim registers —
        an eviction failure mid-handoff leaves every refcount (here and,
        because the caller releases the source only after this returns, at
        the source) untouched. No swap counters move for the incoming
        bytes themselves; migration traffic is the caller's to charge.
        """
        claims = list(segments)
        total = sum(claim.num_bytes for claim in claims)
        if total > self._capacity:
            raise CapacityError(
                f"cannot admit {total} B of KV for {owner!r}: device KV "
                f"budget is {self._capacity} B"
            )
        new_ids = {claim.node_id for claim in claims}
        incoming = sum(
            max(0, claim.num_bytes - self.resident_segment_bytes(claim.node_id))
            for claim in claims
        )
        evicted = self._evict_segments_for(
            self.resident_bytes + incoming - self._capacity, keep=new_ids
        )
        # Past this point nothing can fail: register the claims.
        self._tick += 1
        for node in self._owner_segs.get(owner, set()) - new_ids:
            self._drop_claim(owner, node)
        self._owner_segs[owner] = new_ids
        for claim in claims:
            seg = self._ensure_segment(claim)
            seg.owners[owner] = claim.num_bytes
            seg.resident = True
            seg.swapped = False
            seg.stamp = self._tick
        self._note_peaks()
        return evicted

    def release(self, owner: str) -> int:
        """Drop every claim of ``owner``; returns unique device bytes freed."""
        before = self.resident_bytes
        for node in self._owner_segs.pop(owner, set()):
            self._drop_claim(owner, node)
        return before - self.resident_bytes

    def resize(self, capacity_bytes: int) -> list[tuple[str, int]]:
        """Change the budget at runtime; shrinking evicts segments to fit.

        Segment-granular twin of :meth:`KVLedger.resize`: LRU
        leaf-frontier segments are swapped out until the resident set
        fits the new budget (no path is pinned — a pressure spike spares
        nobody), and victims pay restores when their owners next run.
        """
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        return self._evict_segments_for(
            self.resident_bytes - self._capacity, keep=set()
        )

    def _private_node(self, owner: str) -> int:
        return stable_hash64("shared-kv-private", owner)
