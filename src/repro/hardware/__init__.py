"""Hardware substrate: device specs, roofline model, memory ledger, offload."""

from repro.hardware.device import (
    A100_80GB,
    H100_SXM,
    RTX_3070_TI,
    RTX_4070_TI,
    RTX_4090,
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
)
from repro.hardware.memory import (
    KVLedger,
    KVSegment,
    MemoryLedger,
    MemoryReservation,
    SharedKVLedger,
)
from repro.hardware.offload import OffloadLink
from repro.hardware.roofline import Roofline, RooflinePoint

__all__ = [
    "DeviceSpec",
    "get_device",
    "list_devices",
    "register_device",
    "RTX_4090",
    "RTX_4070_TI",
    "RTX_3070_TI",
    "A100_80GB",
    "H100_SXM",
    "Roofline",
    "RooflinePoint",
    "KVLedger",
    "KVSegment",
    "SharedKVLedger",
    "MemoryLedger",
    "MemoryReservation",
    "OffloadLink",
]
