"""Device specifications for the edge GPUs used in the paper's evaluation.

The paper evaluates on a single NVIDIA RTX 4090 (24 GB) as the primary edge
platform (Sec. 6.1) and extends to an RTX 3070 Ti (8 GB) and RTX 4070 Ti
(12 GB) in Sec. 6.4. Cloud-class devices are included as references for the
Fig. 1 comparison. Peak numbers are dense FP16 tensor throughput and peak
DRAM bandwidth from vendor datasheets; the roofline model (Sec. 4.3.1 of
the paper) only consumes these two scalars plus VRAM capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelLookupError
from repro.utils.suggest import did_you_mean

__all__ = ["DeviceSpec", "get_device", "list_devices", "register_device"]

_GB = 1024**3


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """Static description of one accelerator.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"rtx4090"``.
    vram_bytes:
        Total device memory.
    peak_flops:
        Dense FP16 tensor throughput in FLOP/s.
    mem_bandwidth:
        Peak DRAM bandwidth in bytes/s.
    pcie_bandwidth:
        Effective host<->device transfer bandwidth in bytes/s, used by the
        KV-offloading strategy (Sec. 4.3.2).
    reserved_fraction:
        Fraction of VRAM reserved for CUDA graphs, activations and other
        intermediate state (Fig. 9), unavailable to weights or KV cache.
    """

    name: str
    vram_bytes: int
    peak_flops: float
    mem_bandwidth: float
    pcie_bandwidth: float = 25.0e9
    reserved_fraction: float = 0.08

    def __post_init__(self) -> None:
        if self.vram_bytes <= 0:
            raise ValueError("vram_bytes must be positive")
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError("peak_flops and mem_bandwidth must be positive")
        if not 0.0 <= self.reserved_fraction < 1.0:
            raise ValueError("reserved_fraction must be in [0, 1)")

    @property
    def usable_bytes(self) -> int:
        """VRAM available to model weights and KV cache."""
        return int(self.vram_bytes * (1.0 - self.reserved_fraction))

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (FLOP/byte) where the roofline bends."""
        return self.peak_flops / self.mem_bandwidth


_REGISTRY: dict[str, DeviceSpec] = {}


def register_device(spec: DeviceSpec) -> DeviceSpec:
    """Add a device to the registry (idempotent for identical specs)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"device {spec.name!r} already registered with a different spec")
    _REGISTRY[spec.name] = spec
    return spec


def get_device(name: str) -> DeviceSpec:
    """Look up a device by registry key."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelLookupError(
            f"unknown device {name!r}{did_you_mean(name, _REGISTRY)}; "
            f"known devices: {known}"
        ) from None


def list_devices() -> list[str]:
    """Sorted names of all registered devices."""
    return sorted(_REGISTRY)


# -- The paper's evaluation platforms (Sec. 6.1, 6.4) -----------------------

RTX_4090 = register_device(
    DeviceSpec(
        name="rtx4090",
        vram_bytes=24 * _GB,
        peak_flops=165.2e12,
        mem_bandwidth=1008.0e9,
    )
)

RTX_4070_TI = register_device(
    DeviceSpec(
        name="rtx4070ti",
        vram_bytes=12 * _GB,
        peak_flops=80.1e12,
        mem_bandwidth=504.0e9,
    )
)

RTX_3070_TI = register_device(
    DeviceSpec(
        name="rtx3070ti",
        vram_bytes=8 * _GB,
        peak_flops=43.5e12,
        mem_bandwidth=608.0e9,
    )
)

# Cloud reference points for the Fig. 1 comparison.
A100_80GB = register_device(
    DeviceSpec(
        name="a100-80gb",
        vram_bytes=80 * _GB,
        peak_flops=312.0e12,
        mem_bandwidth=2039.0e9,
        pcie_bandwidth=55.0e9,
    )
)

H100_SXM = register_device(
    DeviceSpec(
        name="h100-sxm",
        vram_bytes=80 * _GB,
        peak_flops=989.0e12,
        mem_bandwidth=3350.0e9,
        pcie_bandwidth=55.0e9,
    )
)
