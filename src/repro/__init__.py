"""FastTTS reproduction: test-time scaling serving for edge LLM reasoning.

A full-system, simulation-backed reproduction of *FastTTS: Accelerating
Test-Time Scaling for Edge LLM Reasoning* (ASPLOS 2026). The public API
mirrors a serving library:

>>> from repro import TTSServer, fasttts_config, build_dataset, BeamSearch
>>> dataset = build_dataset("aime24", seed=0, size=2)
>>> server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
>>> results = server.run(list(dataset)[:1], BeamSearch(n=8))
>>> results[0].goodput > 0
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core import (
    DevicePool,
    OffloadMode,
    PlacementPolicy,
    PooledDevice,
    RequestScheduler,
    ServerConfig,
    SessionState,
    SolveSession,
    TTSFleet,
    TTSServer,
    baseline_config,
    build_placement,
    build_scheduler,
    fasttts_config,
    list_placements,
    list_schedulers,
)
from repro.metrics import BeamRecord, ProblemRunResult, RunMetrics
from repro.search import (
    BeamSearch,
    BestOfN,
    DVTS,
    DynamicBranching,
    VaryingGranularity,
    build_algorithm,
    list_algorithms,
)
from repro.workloads import build_dataset, list_datasets

__version__ = "1.0.0"

__all__ = [
    "TTSServer",
    "TTSFleet",
    "SolveSession",
    "SessionState",
    "RequestScheduler",
    "build_scheduler",
    "list_schedulers",
    "DevicePool",
    "PooledDevice",
    "PlacementPolicy",
    "build_placement",
    "list_placements",
    "ServerConfig",
    "OffloadMode",
    "baseline_config",
    "fasttts_config",
    "BeamSearch",
    "BestOfN",
    "DVTS",
    "DynamicBranching",
    "VaryingGranularity",
    "build_algorithm",
    "list_algorithms",
    "build_dataset",
    "list_datasets",
    "BeamRecord",
    "ProblemRunResult",
    "RunMetrics",
    "__version__",
]
