"""Resumable solve sessions: the serving loop as an explicit state machine.

``TTSServer.solve_detailed`` used to be a run-to-completion monolith, which
meant a fleet could only serve requests FIFO with whole-request
granularity. :class:`SolveSession` decomposes that loop into explicit
states with a :meth:`SolveSession.step` method that advances exactly one
generation-or-verification round and then yields control::

    ADMITTED ──step()──▶ GENERATING ──step()──▶ VERIFYING ─┐
                              ▲                            │ survivors
                              └────────────────────────────┘
                                                           │ none / budget
                                                           ▼
                                      FINALIZING ──step()──▶ DONE

    cancel() from any live state ──▶ CANCELLED

* ``ADMITTED → GENERATING``: zero-cost setup — allocation plan, KV caches,
  workers, the initial beam set.
* ``GENERATING → VERIFYING``: one generation round (continuous beam
  batching + optional speculative extension).
* ``VERIFYING → GENERATING | FINALIZING``: one verification round (when
  the algorithm scores steps), terminal collection, selection, expansion.
* ``FINALIZING → DONE``: best-of-N outcome scoring (if any) and result
  assembly; :attr:`SolveSession.outcome` becomes available.
* ``cancel()`` aborts a session between rounds (the First-Finish-Search
  scheduler uses this to kill losing replicas).

Every piece of per-request state — active paths, KV caches, phase timers,
the simulated clock — lives on the session, so multiple sessions can
interleave round-by-round on one simulated device. A session driven
straight to completion is byte-identical (results, traces, metrics) to the
pre-refactor monolith; the goldens under ``tests/goldens/`` pin this.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.core.allocator import AllocationPlan
from repro.core.generation_round import ChildStepPlan, GenerationRound
from repro.core.prefix_sched import lineage_order, random_order
from repro.core.spec_select import speculative_potential
from repro.core.verification_round import VerificationRound
from repro.engine.clock import SimClock
from repro.engine.jobs import GenJob, VerifyJob
from repro.engine.telemetry import Phase, PhaseTimer, TokenCounters, UtilizationTracker
from repro.engine.tracing import SolveTrace
from repro.engine.worker import GeneratorWorker, VerifierWorker
from repro.errors import SchedulingError
from repro.hardware.memory import KVSegment
from repro.kvcache.cache import PagedKVCache
from repro.llm.generator import SimulatedGenerator, StepPlan
from repro.llm.verifier import SimulatedPRM
from repro.metrics.goodput import BeamRecord
from repro.metrics.latency import LatencyBreakdown
from repro.metrics.report import ProblemRunResult
from repro.search.base import SearchAlgorithm
from repro.search.tree import ReasoningPath, prompt_segment_id, step_segment_id
from repro.utils.rng import KeyedRng, stable_hash64
from repro.workloads.problem import Problem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (server builds sessions)
    from repro.core.config import ServerConfig
    from repro.core.server import TTSServer

__all__ = ["SessionState", "SolveOutcome", "SolveSession", "RoundContribution",
           "path_segments", "planned_kv_segments", "schedule_jobs",
           "lookahead_worthy"]

_TRUNCATION_STD = 0.05  # spread of the R-truncation draw (Alg. 1, line 19)


def _lane_node_id(
    model_tag: str, namespace: str | None, segment_id: int, is_root: bool
) -> int:
    """Lane-tree node id for one cache segment of one session.

    Root segments (the prompt) hold rng-independent content — every
    session of the problem shares them, so they hash without a
    namespace. Step segments carry sampled tokens: sessions on forked
    RNGs would store *different* content under the same stable segment
    id, so their steps are namespaced apart (canonical sessions pass
    ``namespace=None`` and genuinely share).
    """
    ns = "" if is_root or namespace is None else namespace
    return stable_hash64("lane-kv", model_tag, ns, segment_id)


class SessionState(str, Enum):
    """Lifecycle states of a :class:`SolveSession`."""

    ADMITTED = "admitted"
    GENERATING = "generating"
    VERIFYING = "verifying"
    FINALIZING = "finalizing"
    DONE = "done"
    CANCELLED = "cancelled"

    @property
    def live(self) -> bool:
        """Whether the session still accepts :meth:`SolveSession.step`."""
        return self not in (SessionState.DONE, SessionState.CANCELLED)


@dataclass(frozen=True, slots=True)
class SolveOutcome:
    """Low-level solve artifacts, for tests and deep-dive benches."""

    result: ProblemRunResult
    collected: tuple[ReasoningPath, ...]
    plan: AllocationPlan
    trace: "SolveTrace | None" = None


@dataclass(frozen=True, slots=True)
class RoundContribution:
    """One session's share of a (possibly co-batched) generation round.

    Produced by :meth:`SolveSession.begin_generation_round`: the prepared
    :class:`~repro.core.generation_round.GenerationRound` executor plus
    the scheduled jobs it should run. A driver (the session's own
    ``step()``, or the fleet's :class:`~repro.core.batcher.RoundBatcher`)
    runs ``round.run(jobs)`` and hands the result back through
    :meth:`SolveSession.finish_generation_round`.
    """

    round: GenerationRound
    jobs: list[GenJob]


# -- stateless policy helpers (shared by server compat shims and sessions) --


def path_segments(
    config: "ServerConfig",
    problem: Problem,
    lineage: tuple[int, ...],
    steps_done: int,
) -> tuple[int, ...]:
    """KV segment ids for a path's prompt + generated steps.

    With prefix caching, ids derive from lineage *prefixes*, so ancestors
    and siblings share segments (vLLM automatic prefix caching / native
    fork). Without it, ids derive from the *full* lineage: every sequence
    owns private copies, is re-prefilled from scratch each engine call, and
    occupies un-deduplicated memory — the search-and-learn-on-vLLM baseline.
    """
    if config.prefix_caching:
        segments = [prompt_segment_id(problem)]
        segments.extend(
            step_segment_id(problem, lineage, i) for i in range(steps_done)
        )
        return tuple(segments)
    segments = [stable_hash64("private-prompt", problem.problem_id, lineage)]
    segments.extend(
        stable_hash64("private-segment", problem.problem_id, lineage, i)
        for i in range(steps_done)
    )
    return tuple(segments)


def planned_kv_segments(
    server: "TTSServer", problem: Problem, namespace: str | None = None
) -> tuple[KVSegment, ...]:
    """The lane-tree claims a session for ``problem`` registers at setup —
    computable *before* any session exists.

    Mirrors the start of :meth:`SolveSession.kv_segments`: setup registers
    the prompt segment on both model caches (``_step_admit``), sized
    ``prompt_tokens * kv_bytes_per_token`` per model. Prompt roots hold
    rng-independent content, so they hash without a namespace and every
    session of the problem — canonical or racing replica — shares them.
    Sharing-aware placement and dedup-aware admission probe lane ledgers
    with these claims to ask "what would this request claim, and how much
    of it is already here?".
    """
    root = prompt_segment_id(problem)
    return tuple(
        KVSegment(
            _lane_node_id(tag, namespace, root, True),
            None,
            problem.prompt_tokens * bytes_per_token,
        )
        for tag, bytes_per_token in (
            ("gen", server.gen_model.kv_bytes_per_token),
            ("ver", server.ver_model.kv_bytes_per_token),
        )
    )


def schedule_jobs(
    config: "ServerConfig",
    rng: KeyedRng,
    problem: Problem,
    jobs: list,
    round_idx: int,
    stage: str,
) -> list:
    """Order a round's jobs per the scheduling policy.

    Prefix-aware scheduling groups siblings while preserving parent order
    (Sec. 4.2). The naive policy is a keyed shuffle: under vLLM's FCFS
    scheduler, beams arrive in completion order of the previous iteration,
    which scatters tree-adjacent beams (the paper's Fig. 5 right heatmap).
    The shuffle changes execution order only — all draws are keyed, so
    search results are untouched.
    """
    if config.prefix_aware:
        return lineage_order(jobs, lambda j: j.lineage)
    return random_order(
        jobs,
        rng.fork("naive-order", problem.problem_id, stage),
        salt=round_idx,
    )


def lookahead_worthy(path: ReasoningPath, algorithm: SearchAlgorithm) -> bool:
    """Gate LookAhead Verification by speculative potential.

    Pre-verifying a speculated step only pays off if the search keeps the
    beam; for beams outside the top score bin the extra verifier prefill
    (expensive for a 7B PRM) is usually wasted. The gate reuses SelectSPEC's
    zero-overhead proxy: previous-step score in bin C1.
    """
    potential = speculative_potential(path.last_score, algorithm.branching_factor)
    return potential == algorithm.branching_factor


class SolveSession:
    """One request's solve, advanced round-by-round.

    Parameters
    ----------
    server:
        The :class:`~repro.core.server.TTSServer` providing models, cost
        models and the keyed RNG. Sessions never mutate server state, so
        any number of them can interleave on one server.
    problem / algorithm:
        What to solve and with which search budget.
    arrivals:
        Times on *this session's clock* at which another request shows up;
        speculative execution is preempted from the first arrival onward
        (Sec. 4.1.2 Phase-2 preemption). A scheduler can also signal an
        arrival later via :meth:`notify_arrival`.
    trace:
        Record a round-level JSONL-able event log on the outcome.
    rng:
        Override the keyed RNG (and with it the simulated generator and
        PRM). The First-Finish-Search scheduler uses forked RNGs to race
        divergent replicas of one request; everyone else leaves this None
        for byte-identity with the server's own solve.
    session_id:
        Optional label used by fleet schedulers and error messages.
    """

    def __init__(
        self,
        server: "TTSServer",
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] = (),
        trace: bool = False,
        rng: KeyedRng | None = None,
        session_id: str | None = None,
    ) -> None:
        self._server = server
        self._problem = problem
        self._algorithm = algorithm
        self._session_id = session_id or f"session-{problem.problem_id}"
        self._want_trace = trace
        self._state = SessionState.ADMITTED

        if rng is None:
            self._rng = server.rng
            self._generator = server.generator
            self._prm = server.prm
        else:
            self._rng = rng
            self._generator = SimulatedGenerator(server.gen_model, server.dataset, rng)
            self._prm = SimulatedPRM(server.ver_model, self._generator.oracle, rng)

        # Engine state (one simulated device's worth, private to the session).
        self._clock = SimClock()
        self._timer = PhaseTimer()
        self._util = UtilizationTracker()
        self._trace: SolveTrace | None = None
        self._plan: AllocationPlan | None = None
        self._gen_worker: GeneratorWorker | None = None
        self._ver_worker: VerifierWorker | None = None
        self._gen_cache: PagedKVCache | None = None
        self._ver_cache: PagedKVCache | None = None
        self._active_model = "generator"

        # Search state.
        self._plan_cache: dict[tuple[tuple[int, ...], int], StepPlan] = {}
        self._active: list[ReasoningPath] = []
        self._collected: list[ReasoningPath] = []
        self._counters = TokenCounters()
        self._score_cache: dict[tuple[tuple[int, ...], int], float] = {}
        self._heads_kept: dict[tuple[int, ...], int] = {}
        self._round_idx = 0
        self._slot_budget = 0
        self._batch_pre = 0

        # Per-round carry between the GENERATING and VERIFYING states.
        self._plans: dict[tuple[int, ...], StepPlan] = {}
        self._gen_result = None
        self._first_token_s: float | None = None

        # Preemption inputs.
        self._preempt_at: float | None = min(arrivals) if arrivals else None
        self._preempt_signalled = False

        self._outcome: SolveOutcome | None = None

    # -- public surface --------------------------------------------------

    @property
    def server(self) -> "TTSServer":
        return self._server

    @property
    def session_id(self) -> str:
        return self._session_id

    @property
    def state(self) -> SessionState:
        return self._state

    @property
    def problem(self) -> Problem:
        return self._problem

    @property
    def algorithm(self) -> SearchAlgorithm:
        return self._algorithm

    @property
    def clock(self) -> SimClock:
        """The session-private clock; ``clock.now`` is service time so far."""
        return self._clock

    @property
    def rounds_completed(self) -> int:
        return self._round_idx

    @property
    def first_token_s(self) -> float | None:
        """Session-clock time of the first generated token (None until then).

        Service time, not fleet time: the fleet adds the session's clock
        anchor to place it on the shared timeline for the TTFT metric.
        """
        return self._first_token_s

    @property
    def outcome(self) -> SolveOutcome:
        """The finished solve's artifacts (only after reaching ``DONE``)."""
        if self._outcome is None:
            raise SchedulingError(
                f"{self._session_id} has no outcome in state {self._state.value}"
            )
        return self._outcome

    @property
    def plan_cache(self) -> dict[tuple[tuple[int, ...], int], StepPlan]:
        """Per-session step-plan memo (exposed for tests and debugging)."""
        return self._plan_cache

    @property
    def resident_kv_bytes(self) -> int:
        """This session's device-resident KV footprint right now.

        Zero before setup (``ADMITTED``). Under an offloading plan only
        the active model's cache occupies the device (the inactive one
        lives in host memory between :meth:`_swap_to` transfers), so the
        footprint is the active cache alone; otherwise both caches count.
        The per-device :class:`~repro.hardware.memory.KVLedger` uses this
        to model cross-session contention.
        """
        if self._gen_cache is None or self._ver_cache is None:
            return 0
        gen_bytes = (
            self._gen_cache.resident_tokens
            * self._server.gen_model.kv_bytes_per_token
        )
        ver_bytes = (
            self._ver_cache.resident_tokens
            * self._server.ver_model.kv_bytes_per_token
        )
        if self._plan is not None and self._plan.offload:
            return gen_bytes if self._active_model == "generator" else ver_bytes
        return gen_bytes + ver_bytes

    @property
    def kv_namespace(self) -> str | None:
        """Content namespace for cross-session KV sharing.

        ``None`` marks a *canonical* session — one sampling from the
        server's own keyed RNG, whose draws for a given ``(problem,
        lineage, step)`` are identical to every other canonical session's.
        Such sessions may physically share step KV. A session on a forked
        RNG (a First-Finish replica) samples *different* tokens under the
        same stable segment ids, so its steps are namespaced by session
        id and only rng-independent segments (the prompt) dedup.
        """
        return None if self._rng is self._server.rng else self._session_id

    def kv_segments(self) -> tuple[KVSegment, ...]:
        """This session's resident KV as lane-tree segment claims.

        The segment-granular view behind :attr:`resident_kv_bytes`
        (claim bytes always sum to it): one :class:`KVSegment` per
        resident cache segment, parents before children, with lane node
        ids derived from the stable ``(problem, lineage, step)`` segment
        hashes — namespaced per :attr:`kv_namespace`, and per model
        (generator and verifier KV are physically distinct even for the
        same reasoning step). A :class:`~repro.hardware.memory
        .SharedKVLedger` refcounts claims with equal node ids across
        co-resident sessions and bills the bytes once. Under an
        offloading plan only the active model's cache is device-resident,
        exactly as in :attr:`resident_kv_bytes`.
        """
        if self._gen_cache is None or self._ver_cache is None:
            return ()
        views = [
            ("gen", self._gen_cache, self._server.gen_model.kv_bytes_per_token),
            ("ver", self._ver_cache, self._server.ver_model.kv_bytes_per_token),
        ]
        if self._plan is not None and self._plan.offload:
            views = [views[0] if self._active_model == "generator" else views[1]]
        namespace = self.kv_namespace
        claims: list[KVSegment] = []
        for tag, cache, bytes_per_token in views:
            tree = cache.tree
            for state in cache.resident_segments():
                node = tree.get(state.segment_id)
                node_id = _lane_node_id(
                    tag, namespace, state.segment_id, node.parent_id is None
                )
                if node.parent_id is None:
                    parent_id = None
                else:
                    grandparent = tree.get(node.parent_id).parent_id
                    parent_id = _lane_node_id(
                        tag, namespace, node.parent_id, grandparent is None
                    )
                claims.append(
                    KVSegment(node_id, parent_id, state.token_len * bytes_per_token)
                )
        return tuple(claims)

    def planned_segments(self) -> tuple[KVSegment, ...]:
        """The claims this session will register at setup (pre-admission).

        Available in every live state — including ``ADMITTED``, before
        any cache exists — so admission control can ask "what would this
        session claim" without stepping it. Once setup has run, these are
        exactly the root claims of :meth:`kv_segments`.
        """
        return planned_kv_segments(self._server, self._problem, self.kv_namespace)

    def charge_kv_swap(self, dt: float) -> None:
        """Charge cross-session KV swap time against this session.

        The fleet calls this when resuming the session requires restoring
        its evicted KV from host memory, or when its growth evicts a
        co-resident session's KV. The time lands on this session's clock
        (it is part of serving this request) under the SWAP phase, exactly
        like the intra-session offload transfers in :meth:`_swap_to`.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0:
            return
        if not self._state.live:
            raise SchedulingError(
                f"cannot charge swap time to {self._session_id} in state "
                f"{self._state.value}"
            )
        self._clock.advance(dt)
        self._timer.add(Phase.SWAP, dt)
        if self._trace is not None:
            self._trace.record(
                self._clock.now, "kv_contention_swap", -1, seconds=round(dt, 6)
            )

    def rebind_device(self, server: "TTSServer") -> None:
        """Move this session onto another device's server (migration).

        The destination must serve the same model pairing and dataset —
        the KV caches carry over byte-for-byte (identical per-token sizes)
        and only the roofline cost model changes, so the workers are
        rebuilt against the new device while keeping their caches, clock,
        timers and utilization tracker. The PCIe cost of physically moving
        the KV is charged by :meth:`~repro.core.pool.DevicePool.migrate`,
        not here.
        """
        if not self._state.live:
            raise SchedulingError(
                f"cannot migrate {self._session_id} in state {self._state.value}"
            )
        old = self._server
        if (
            server.gen_model.name != old.gen_model.name
            or server.ver_model.name != old.ver_model.name
        ):
            raise SchedulingError(
                f"cannot migrate {self._session_id} between servers with "
                f"different model pairings"
            )
        self._server = server
        if self._gen_worker is not None:
            self._gen_worker = GeneratorWorker(
                server.gen_model, server.roofline, self._gen_cache, self._clock,
                self._timer, self._util,
            )
            self._ver_worker = VerifierWorker(
                server.ver_model, server.roofline, self._ver_cache, self._clock,
                self._timer, self._util,
            )

    def notify_arrival(self) -> None:
        """Signal that another request is waiting *now*.

        From the next generation round on, speculative execution is
        preempted — the scheduler-driven equivalent of the ``arrivals``
        constructor argument for arrivals not known at session start.
        """
        self._preempt_signalled = True

    def set_arrival_offsets(self, offsets: tuple[float, ...]) -> None:
        """Install arrival times (on this session's clock) after creation.

        Fleet schedulers only learn a session's service start time when
        they first pick it; this lets them translate absolute arrival times
        into session-clock offsets at that moment.
        """
        if offsets:
            first = min(offsets)
            if self._preempt_at is None or first < self._preempt_at:
                self._preempt_at = first

    def cancel(self) -> None:
        """Abort the session; no outcome will be produced."""
        if self._state is SessionState.DONE:
            raise SchedulingError(f"cannot cancel finished {self._session_id}")
        self._state = SessionState.CANCELLED

    def step(self) -> SessionState:
        """Advance exactly one lifecycle transition and return the new state.

        One call performs one unit of simulated device work: setup
        (zero-cost), one generation round, one verification-and-selection
        round, or finalization (result assembly, plus the single
        best-of-N outcome-scoring pass for algorithms that skip per-step
        verification).
        """
        if not self._state.live:
            raise SchedulingError(
                f"cannot step {self._session_id}: state is {self._state.value}"
            )
        if self._state is SessionState.ADMITTED:
            self._step_admit()
        elif self._state is SessionState.GENERATING:
            self._step_generate()
        elif self._state is SessionState.VERIFYING:
            self._step_verify()
        elif self._state is SessionState.FINALIZING:
            self._step_finalize()
        return self._state

    def run(self) -> SolveOutcome:
        """Drive the session to completion and return the outcome."""
        while self._state.live:
            self.step()
        if self._state is SessionState.CANCELLED:
            raise SchedulingError(f"{self._session_id} was cancelled")
        return self.outcome

    # -- state handlers --------------------------------------------------

    def _step_admit(self) -> None:
        """ADMITTED → GENERATING: allocation plan, caches, workers, beams."""
        server = self._server
        cfg = server.config
        plan = server.plan_allocation(self._algorithm.n)
        self._plan = plan
        self._trace = SolveTrace(self._problem.problem_id) if self._want_trace else None

        gen_cache = PagedKVCache(
            plan.kv_dec_bytes, server.gen_model.kv_bytes_per_token, cfg.block_tokens
        )
        ver_cache = PagedKVCache(
            plan.kv_pre_bytes, server.ver_model.kv_bytes_per_token, cfg.block_tokens
        )
        root = prompt_segment_id(self._problem)
        gen_cache.register_segment(root, None, self._problem.prompt_tokens)
        ver_cache.register_segment(root, None, self._problem.prompt_tokens)
        self._gen_cache = gen_cache
        self._ver_cache = ver_cache
        self._gen_worker = GeneratorWorker(
            server.gen_model, server.roofline, gen_cache, self._clock,
            self._timer, self._util,
        )
        self._ver_worker = VerifierWorker(
            server.ver_model, server.roofline, ver_cache, self._clock,
            self._timer, self._util,
        )

        self._slot_budget = min(plan.b_dec, cfg.max_slots)
        self._batch_pre = min(plan.b_pre, cfg.max_slots)
        self._active = [
            ReasoningPath(lineage=(i,))
            for i in range(self._algorithm.initial_width())
        ]
        self._round_idx = 0
        if self._active and self._round_idx < server.dataset.max_steps:
            self._state = SessionState.GENERATING
        else:  # pragma: no cover - empty searches cannot be constructed
            self._state = SessionState.FINALIZING

    def _step_generate(self) -> None:
        """GENERATING → VERIFYING: one generation round for the active set."""
        contribution = self.begin_generation_round()
        gen_result = contribution.round.run(contribution.jobs)
        self.finish_generation_round(gen_result)

    def begin_generation_round(self, occupancy: int = 1) -> RoundContribution:
        """Prepare this session's next generation round without running it.

        Plans the active beams' steps, schedules the jobs, swaps the
        generator in (under an offloading plan), and returns the round
        executor plus its jobs as a :class:`RoundContribution`. With
        ``occupancy > 1`` the generator worker amortizes its weight reads
        across that many co-batched sessions for the duration of the
        round (reset by :meth:`finish_generation_round`); at the default
        of 1 the whole begin/run/finish sequence is byte-identical to the
        former monolithic generate step.
        """
        if self._state is not SessionState.GENERATING:
            raise SchedulingError(
                f"cannot begin a generation round for {self._session_id} in "
                f"state {self._state.value}"
            )
        server = self._server
        cfg = server.config
        algorithm = self._algorithm
        round_idx = self._round_idx

        plans = {
            path.lineage: self._plan_step(
                path.lineage, round_idx, algorithm.step_cap(round_idx)
            )
            for path in self._active
        }
        jobs = [
            self._gen_job(path, plans[path.lineage], round_idx)
            for path in self._active
        ]
        jobs = self._schedule(jobs, round_idx, "gen")

        self._swap_to("generator")
        self._gen_worker.batch_share = occupancy
        self._plans = plans
        gen_round = GenerationRound(
            worker=self._gen_worker,
            slot_budget=self._slot_budget,
            speculation=cfg.speculation,
            branching_factor=algorithm.branching_factor,
            child_planner=(
                self._child_planner(plans, round_idx) if cfg.speculation else None
            ),
            preempt_check=self._preempt_check(),
            spec_bandwidth_fraction=cfg.spec_bandwidth_fraction,
        )
        return RoundContribution(round=gen_round, jobs=jobs)

    def finish_generation_round(self, gen_result) -> None:
        """Account a completed generation round and advance to VERIFYING.

        Counterpart of :meth:`begin_generation_round`; the caller (the
        session's own step, or the fleet's round batcher) passes the
        :class:`~repro.core.generation_round.GenerationRoundResult` the
        contributed round produced.
        """
        if self._state is not SessionState.GENERATING:
            raise SchedulingError(
                f"cannot finish a generation round for {self._session_id} in "
                f"state {self._state.value}"
            )
        cfg = self._server.config
        round_idx = self._round_idx
        self._gen_worker.batch_share = 1
        self._counters.recomputed += gen_result.stats.recomputed_tokens
        self._counters.committed += gen_result.stats.decoded_tokens
        if (
            self._first_token_s is None
            and gen_result.stats.first_token_time is not None
        ):
            self._first_token_s = gen_result.stats.first_token_time
        if self._trace is not None:
            self._trace.record(
                self._clock.now, "generation_round", round_idx,
                active_beams=len(self._active),
                decoded_tokens=gen_result.stats.decoded_tokens,
                speculative_tokens=gen_result.stats.speculative_tokens,
                recomputed_tokens=gen_result.stats.recomputed_tokens,
                round_time=round(gen_result.stats.round_time, 6),
                head_starts=len(gen_result.head_starts),
            )
        if not cfg.prefix_caching:
            # No automatic prefix caching: KV dies with the engine call,
            # exactly like the search-and-learn-on-vLLM baseline.
            self._gen_cache.evict_all(now=self._clock.now)

        for path in self._active:
            step = self._plans[path.lineage]
            path.record_step(step.n_tokens, step.soundness)

        self._gen_result = gen_result
        self._state = SessionState.VERIFYING

    def step_verification(self, occupancy: int = 1) -> SessionState:
        """One VERIFYING step with verifier weight reads amortized.

        The round batcher's verify phase: same transition as a plain
        ``step()`` from VERIFYING, but the verifier's prefill launches
        bill this session only ``1/occupancy`` of the weight traffic —
        co-batched sessions' scoring passes share one weight read, just
        as generation rounds share theirs.
        """
        if self._state is not SessionState.VERIFYING:
            raise SchedulingError(
                f"cannot run a verification step for {self._session_id} in "
                f"state {self._state.value}"
            )
        if self._ver_worker is not None:
            self._ver_worker.batch_share = occupancy
        try:
            self._step_verify()
        finally:
            if self._ver_worker is not None:
                self._ver_worker.batch_share = 1
        return self._state

    def _step_verify(self) -> None:
        """VERIFYING → GENERATING | FINALIZING: verify, collect, select."""
        algorithm = self._algorithm
        round_idx = self._round_idx

        if algorithm.verifies_steps:
            self._verify_active(round_idx)

        survivors: list[ReasoningPath] = []
        for path in self._active:
            if self._plans[path.lineage].is_terminal:
                self._finalize_path(path)
                self._collected.append(path)
            else:
                survivors.append(path)
        if not survivors:
            self._active = []
            self._state = SessionState.FINALIZING
            return

        decision = algorithm.select(survivors, round_idx, self._rng.fork("select"))
        if self._trace is not None:
            self._trace.record(
                self._clock.now, "selection", round_idx,
                survivors=len(survivors),
                kept=len(decision.expansions),
                children=decision.total_children,
            )
        self._active = self._expand(decision, round_idx)
        self._round_idx = round_idx + 1
        if self._active and self._round_idx < self._server.dataset.max_steps:
            self._state = SessionState.GENERATING
        else:
            self._state = SessionState.FINALIZING

    def _step_finalize(self) -> None:
        """FINALIZING → DONE: outcome scoring (BoN) and result assembly."""
        if not self._algorithm.verifies_steps and self._collected:
            self._final_scoring()
        result = self._build_result()
        self._outcome = SolveOutcome(
            result=result,
            collected=tuple(self._collected),
            plan=self._plan,
            trace=self._trace,
        )
        self._state = SessionState.DONE

    # -- step planning ---------------------------------------------------

    def _plan_step(
        self, lineage: tuple[int, ...], step_idx: int, cap: int | None
    ) -> StepPlan:
        key = (lineage, step_idx)
        cached = self._plan_cache.get(key)
        if cached is None:
            cached = self._generator.plan_step(self._problem, lineage, step_idx, cap)
            self._plan_cache[key] = cached
        return cached

    def _schedule(self, jobs: list, round_idx: int, stage: str) -> list:
        return schedule_jobs(
            self._server.config, self._rng, self._problem, jobs, round_idx, stage
        )

    def _new_segment(self, lineage: tuple[int, ...], step_idx: int) -> int:
        if self._server.config.prefix_caching:
            return step_segment_id(self._problem, lineage, step_idx)
        return stable_hash64(
            "private-segment", self._problem.problem_id, lineage, step_idx
        )

    def _gen_job(
        self, path: ReasoningPath, step: StepPlan, round_idx: int
    ) -> GenJob:
        head = min(self._heads_kept.pop(path.lineage, 0), step.n_tokens)
        segments = path_segments(
            self._server.config, self._problem, path.lineage, path.steps_done
        )
        tokens = (self._problem.prompt_tokens, *path.step_tokens)
        return GenJob(
            lineage=path.lineage,
            path_segments=segments,
            path_segment_tokens=tokens,
            new_segment=self._new_segment(path.lineage, round_idx),
            step_tokens=step.n_tokens,
            head_start=head,
            prev_score=path.last_score,
        )

    def _child_planner(
        self, plans: dict[tuple[int, ...], StepPlan], round_idx: int
    ):
        """Closure resolving speculative branches to child step identities."""
        problem, algorithm = self._problem, self._algorithm
        next_cap = algorithm.step_cap(round_idx + 1)

        def planner(
            parent_lineage: tuple[int, ...], child_index: int
        ) -> ChildStepPlan | None:
            parent_plan = plans.get(parent_lineage)
            if parent_plan is None or parent_plan.is_terminal:
                return None
            if round_idx + 1 >= self._server.dataset.max_steps:
                return None
            child_lineage = parent_lineage + (child_index,)
            child_step = self._plan_step(child_lineage, round_idx + 1, next_cap)
            return ChildStepPlan(
                child_lineage=child_lineage,
                segment_id=step_segment_id(problem, child_lineage, round_idx + 1),
                parent_leaf_segment=step_segment_id(problem, parent_lineage, round_idx),
                n_tokens=child_step.n_tokens,
            )

        return planner

    def _preempt_check(self):
        """Preemption hook: True once an arrival has landed (or was signalled)."""
        if self._preempt_signalled:
            return lambda: True
        if self._preempt_at is None:
            return None
        first = self._preempt_at

        def check() -> bool:
            return self._preempt_signalled or self._clock.now >= first

        return check

    # -- verification ----------------------------------------------------

    def _verify_active(self, round_idx: int) -> None:
        cfg = self._server.config
        self._swap_to("verifier")
        vjobs = []
        for path in self._active:
            vjobs.append(self._verify_job(path, round_idx))
        vjobs = self._schedule(vjobs, round_idx, "verify")
        verification = VerificationRound(
            self._ver_worker, self._prm, self._batch_pre, lookahead=cfg.lookahead
        )
        cached_scores = sum(
            1 for job in vjobs if (job.lineage, job.step_idx) in self._score_cache
        )
        ver_result = verification.run(self._problem, vjobs, self._score_cache)
        self._score_cache.update(ver_result.lookahead_scores)
        for path in self._active:
            path.record_score(ver_result.scores[path.lineage])
        if self._trace is not None:
            self._trace.record(
                self._clock.now, "verification_round", round_idx,
                jobs=len(vjobs),
                prefilled_tokens=ver_result.stats.prefilled_tokens,
                cache_hit_tokens=ver_result.stats.cache_hit_tokens,
                lookahead_scores=len(ver_result.lookahead_scores),
                cached_scores=cached_scores,
            )
        if not cfg.prefix_caching:
            self._ver_worker.cache.evict_all(now=self._clock.now)

    def _verify_job(self, path: ReasoningPath, round_idx: int) -> VerifyJob:
        # path already recorded this round's step: last segment is the new one.
        cfg = self._server.config
        problem, algorithm = self._problem, self._algorithm
        all_segments = path_segments(cfg, problem, path.lineage, path.steps_done)
        all_tokens = (problem.prompt_tokens, *path.step_tokens)
        job_kwargs = dict(
            lineage=path.lineage,
            step_idx=round_idx,
            path_segments=all_segments[:-1],
            path_segment_tokens=all_tokens[:-1],
            new_segment=all_segments[-1],
            new_tokens=path.step_tokens[-1],
            mean_soundness=path.mean_soundness,
        )
        step = self._plans[path.lineage]
        if cfg.lookahead and not step.is_terminal and lookahead_worthy(path, algorithm):
            child_lineage = path.lineage + (0,)
            head = self._gen_result.head_starts.get(child_lineage)
            if head is not None and round_idx + 1 < self._server.dataset.max_steps:
                child_step = self._plan_step(
                    child_lineage, round_idx + 1, algorithm.step_cap(round_idx + 1)
                )
                if head.tokens >= child_step.n_tokens:
                    soundness = path.soundness + [child_step.soundness]
                    job_kwargs.update(
                        lookahead_child=child_lineage,
                        lookahead_segment=head.segment_id,
                        lookahead_tokens=child_step.n_tokens,
                        lookahead_soundness=sum(soundness) / len(soundness),
                    )
        return VerifyJob(**job_kwargs)

    # -- expansion ---------------------------------------------------------

    def _expand(self, decision, round_idx: int) -> list[ReasoningPath]:
        new_active: list[ReasoningPath] = []
        adopted: set[tuple[int, ...]] = set()
        gen_result = self._gen_result
        for expansion in decision.expansions:
            for child_index in range(expansion.n_children):
                child = expansion.path.make_child(child_index)
                head = gen_result.head_starts.get(child.lineage)
                if head is not None:
                    kept = self._truncate_head(child.lineage, child_index, head.tokens)
                    if kept < head.tokens:
                        self._gen_cache.truncate_segment(
                            head.segment_id, kept, now=self._clock.now
                        )
                    if kept > 0:
                        self._heads_kept[child.lineage] = kept
                    self._counters.speculative_used += kept
                    self._counters.speculative_wasted += head.tokens - kept
                    adopted.add(child.lineage)
                new_active.append(child)
        for lineage, head in gen_result.head_starts.items():
            if lineage not in adopted:
                self._counters.speculative_wasted += head.tokens
        return new_active

    def _truncate_head(
        self, child_lineage: tuple[int, ...], child_index: int, head_tokens: int
    ) -> int:
        """Alg. 1 line 19: the original keeps all, duplicates keep ~R."""
        if child_index == 0:
            return head_tokens
        fraction = self._rng.normal(
            "spec-truncation",
            self._problem.problem_id,
            child_lineage,
            loc=self._server.config.spec_truncation_ratio,
            scale=_TRUNCATION_STD,
        )
        fraction = min(1.0, max(0.0, fraction))
        return int(round(fraction * head_tokens))

    # -- termination -------------------------------------------------------

    def _finalize_path(self, path: ReasoningPath) -> None:
        path.terminal = True
        outcome = self._gen_result.outcomes[path.lineage]
        path.completion_time = outcome.finish_time
        correct, answer = self._generator.final_answer(
            self._problem, path.lineage, path.mean_soundness
        )
        path.answer = answer
        path.answer_correct = correct

    def _final_scoring(self) -> None:
        """Best-of-N outcome scoring: one full-path verification at the end."""
        cfg = self._server.config
        problem = self._problem
        self._swap_to("verifier")
        vjobs = []
        for path in self._collected:
            segments = path_segments(cfg, problem, path.lineage, path.steps_done)
            tokens = (problem.prompt_tokens, *path.step_tokens)
            vjobs.append(
                VerifyJob(
                    lineage=path.lineage,
                    step_idx=path.steps_done - 1,
                    path_segments=segments[:-1],
                    path_segment_tokens=tokens[:-1],
                    new_segment=segments[-1],
                    new_tokens=path.step_tokens[-1],
                    mean_soundness=path.mean_soundness,
                )
            )
        vjobs = self._schedule(vjobs, -1, "final")
        verification = VerificationRound(self._ver_worker, self._prm, self._batch_pre)
        ver_result = verification.run(problem, vjobs)
        for path in self._collected:
            path.record_score(ver_result.scores[path.lineage])

    # -- offloading --------------------------------------------------------

    def _swap_to(self, model: str) -> None:
        """Charge PCIe time when the active model changes under offloading."""
        if self._plan is None or not self._plan.offload:
            return
        if self._active_model == model:
            return
        outgoing, incoming = (
            (self._gen_worker, self._ver_worker)
            if model == "verifier"
            else (self._ver_worker, self._gen_worker)
        )
        out_bytes = outgoing.cache.resident_tokens * outgoing.model.kv_bytes_per_token
        in_bytes = incoming.cache.resident_tokens * incoming.model.kv_bytes_per_token
        dt = self._server.link.swap_time(out_bytes, in_bytes)
        self._clock.advance(dt)
        self._timer.add(Phase.SWAP, dt)
        if self._trace is not None:
            self._trace.record(
                self._clock.now, "swap", -1,
                to=model, out_bytes=out_bytes, in_bytes=in_bytes,
                seconds=round(dt, 6),
            )
        self._active_model = model

    # -- result assembly -----------------------------------------------

    def _build_result(self) -> ProblemRunResult:
        beams = tuple(
            BeamRecord(
                lineage=path.lineage,
                tokens=path.total_tokens,
                completion_time=path.completion_time or self._clock.now,
                answer=path.answer if path.answer is not None else -1,
                correct=bool(path.answer_correct),
                score=path.final_score,
            )
            for path in self._collected
        )
        latency = LatencyBreakdown(
            total=self._clock.now,
            generation=self._timer.get(Phase.GENERATION),
            verification=self._timer.get(Phase.VERIFICATION),
            swap=self._timer.get(Phase.SWAP),
        )
        return ProblemRunResult(
            problem_id=self._problem.problem_id,
            algorithm=self._algorithm.name,
            n=self._algorithm.n,
            beams=beams,
            latency=latency,
            tokens=self._counters,
            util_spans=tuple(self._util.spans),
            gen_cache_hit_rate=self._gen_cache.stats.hit_rate,
            ver_cache_hit_rate=self._ver_cache.stats.hit_rate,
            gen_evicted_segments=self._gen_cache.stats.evicted_segments,
            ver_evicted_segments=self._ver_cache.stats.evicted_segments,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SolveSession({self._session_id}, state={self._state.value}, "
            f"round={self._round_idx}, t={self._clock.now:.3f})"
        )
