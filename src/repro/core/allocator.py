"""Asymmetric Multi-Model Memory Allocation (paper Sec. 4.3).

The generator (decode, memory-bandwidth-bound) and verifier (prefill,
compute-bound) share one KV budget but have wildly different throughput
sensitivity to it (Fig. 6). The roofline-guided search below reproduces the
paper's formulation:

    T_tot = ceil(N / B_pre) * T_roof_pre(B_pre, S)
          + ceil(N / B_dec) * S_dec * T_roof_dec(B_dec, S_cache)

subject to  B_pre * KVBytes_pre(1, S) + B_dec * KVBytes_dec(1, S_ctx) <= M,

solved by exhaustive linear search over integer B_pre (the optimum lies on
the budget boundary because stage latency is monotone in memory); ties
favour the decode batch. The offloading extension (Sec. 4.3.2) relaxes the
coupled constraint into two independent ones and charges PCIe swap time,
and the policy picks whichever strategy is faster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError
from repro.hardware.offload import OffloadLink
from repro.hardware.roofline import Roofline
from repro.models.costs import decode_step_cost, prefill_cost
from repro.models.spec import ModelSpec
from repro.workloads.problem import Dataset

__all__ = ["WorkloadProfile", "AllocationPlan", "RooflineAllocator", "static_split_plan"]


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Expected per-iteration workload shape for allocation planning.

    Attributes
    ----------
    n_requests:
        N — beams processed per TTS iteration.
    verify_tokens:
        S — new tokens one verification request prefills.
    decode_tokens:
        S_dec — tokens one beam decodes per iteration (mean step length).
    decode_context:
        Per-sequence resident KV footprint in tokens while decoding
        (prompt + accumulated steps + the growing step).
    """

    n_requests: int
    verify_tokens: int
    decode_tokens: int
    decode_context: int
    max_path_tokens: int

    def __post_init__(self) -> None:
        for name in ("n_requests", "verify_tokens", "decode_tokens",
                     "decode_context", "max_path_tokens"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_path_tokens < self.decode_context:
            raise ValueError("max_path_tokens must cover the decode context")

    @classmethod
    def from_dataset(cls, dataset: Dataset, n: int) -> "WorkloadProfile":
        """Plan from dataset statistics: mean step length and mid-search depth.

        ``verify_tokens`` (the paper's S) is the expected *full path* length
        a verification request carries — the discriminative PRM re-reads the
        whole reasoning path. ``max_path_tokens`` bounds the worst-case
        single path (hard step caps times max depth), the floor below which
        a KV partition cannot serve even one request.
        """
        step = int(dataset.step_model.mean_tokens)
        mid_depth = max(1, (dataset.min_steps + dataset.max_steps) // 2)
        prompt = 128  # planning constant; actual prompts vary per problem
        path = prompt + step * mid_depth
        # Worst case includes paged-block fragmentation: every segment
        # (prompt + one per step) rounds up to a 16-token block boundary.
        fragmentation = 16 * (dataset.max_steps + 2)
        worst = (
            2 * prompt
            + dataset.step_model.max_tokens * dataset.max_steps
            + fragmentation
        )
        return cls(
            n_requests=max(1, n),
            verify_tokens=path,
            decode_tokens=step,
            decode_context=path,
            max_path_tokens=max(worst, path),
        )


@dataclass(frozen=True, slots=True)
class AllocationPlan:
    """One memory-partition decision."""

    b_pre: int
    b_dec: int
    kv_pre_bytes: int
    kv_dec_bytes: int
    est_total_time: float
    offload: bool = False
    est_offload_overhead: float = 0.0

    @property
    def kv_total_bytes(self) -> int:
        """Bytes the plan consumes at once on-device.

        Under offloading only one model's KV is resident at a time, so the
        device-resident footprint is the max, not the sum.
        """
        if self.offload:
            return max(self.kv_pre_bytes, self.kv_dec_bytes)
        return self.kv_pre_bytes + self.kv_dec_bytes


def _estimate_total_time(
    verifier: ModelSpec,
    generator: ModelSpec,
    roofline: Roofline,
    profile: WorkloadProfile,
    b_pre: int,
    b_dec: int,
) -> float:
    """The paper's T_tot for one candidate (B_pre, B_dec) pair."""
    pre_cost = prefill_cost(verifier, b_pre, profile.verify_tokens)
    t_pre = math.ceil(profile.n_requests / b_pre) * roofline.latency(
        pre_cost.flops, pre_cost.bytes
    )
    # Average cache length during decoding ~ context + S_dec / 2.
    avg_cache = profile.decode_context - profile.decode_tokens / 2.0
    dec_cost = decode_step_cost(generator, b_dec, max(avg_cache, 1.0))
    t_dec = (
        math.ceil(profile.n_requests / b_dec)
        * profile.decode_tokens
        * roofline.latency(dec_cost.flops, dec_cost.bytes)
    )
    return t_pre + t_dec


def _per_seq_bytes(model: ModelSpec, tokens: int) -> int:
    return tokens * model.kv_bytes_per_token


def _floors(
    verifier: ModelSpec, generator: ModelSpec, profile: WorkloadProfile
) -> tuple[int, int]:
    """Minimum KV bytes each worker needs to host one worst-case path."""
    return (
        _per_seq_bytes(verifier, profile.max_path_tokens),
        _per_seq_bytes(generator, profile.max_path_tokens),
    )


def static_split_plan(
    verifier: ModelSpec,
    generator: ModelSpec,
    roofline: Roofline,
    profile: WorkloadProfile,
    kv_budget_bytes: int,
) -> AllocationPlan:
    """The baseline's naive partition: two instances, half the KV each.

    The halves are shifted only as far as needed to respect the worst-case
    single-path floor on each side — a real deployment would likewise bump
    ``gpu_memory_utilization`` until one request fits.
    """
    if kv_budget_bytes <= 0:
        raise CapacityError("no KV budget left after weights")
    floor_pre, floor_dec = _floors(verifier, generator, profile)
    if floor_pre + floor_dec > kv_budget_bytes:
        raise CapacityError(
            "KV budget cannot host one worst-case path per worker; "
            "use offloading or a smaller model pair"
        )
    kv_pre = min(max(kv_budget_bytes // 2, floor_pre), kv_budget_bytes - floor_dec)
    kv_dec = kv_budget_bytes - kv_pre
    b_pre = max(1, kv_pre // _per_seq_bytes(verifier, profile.verify_tokens))
    b_dec = max(1, kv_dec // _per_seq_bytes(generator, profile.decode_context))
    b_pre = min(b_pre, profile.n_requests)
    b_dec = min(b_dec, profile.n_requests)
    return AllocationPlan(
        b_pre=b_pre,
        b_dec=b_dec,
        kv_pre_bytes=kv_pre,
        kv_dec_bytes=kv_dec,
        est_total_time=_estimate_total_time(
            verifier, generator, roofline, profile, b_pre, b_dec
        ),
    )


class RooflineAllocator:
    """The paper's allocator: linear search over the budget boundary."""

    def __init__(
        self,
        verifier: ModelSpec,
        generator: ModelSpec,
        roofline: Roofline,
        offload_link: OffloadLink | None = None,
        swaps_per_iteration: int = 2,
    ) -> None:
        self._verifier = verifier
        self._generator = generator
        self._roofline = roofline
        self._link = offload_link
        self._swaps = swaps_per_iteration

    def search(self, profile: WorkloadProfile, kv_budget_bytes: int) -> AllocationPlan:
        """Optimal coupled-constraint plan (no offloading)."""
        if kv_budget_bytes <= 0:
            raise CapacityError("no KV budget left after weights")
        floor_pre, floor_dec = _floors(self._verifier, self._generator, profile)
        if floor_pre + floor_dec > kv_budget_bytes:
            raise CapacityError(
                "KV budget cannot host one worst-case path per worker; "
                "use offloading or a smaller model pair"
            )
        pre_seq = _per_seq_bytes(self._verifier, profile.verify_tokens)
        dec_seq = _per_seq_bytes(self._generator, profile.decode_context)
        max_pre = min(
            profile.n_requests,
            max(1, (kv_budget_bytes - floor_dec) // pre_seq),
        )
        best: AllocationPlan | None = None
        for b_pre in range(1, max_pre + 1):
            kv_pre = max(b_pre * pre_seq, floor_pre)
            kv_dec = kv_budget_bytes - kv_pre
            if kv_dec < floor_dec:
                break
            b_dec = min(kv_dec // dec_seq, profile.n_requests)  # paper Eq. (1)
            if b_dec < 1:
                break
            t_tot = _estimate_total_time(
                self._verifier, self._generator, self._roofline, profile, b_pre, b_dec
            )
            # Ties resolve in favour of the larger decode batch (the paper's
            # rule); candidates iterate with growing b_pre, i.e. shrinking
            # b_dec, so strict improvement is required to replace.
            if best is None or t_tot < best.est_total_time:
                best = AllocationPlan(
                    b_pre=b_pre,
                    b_dec=b_dec,
                    kv_pre_bytes=kv_pre,
                    kv_dec_bytes=kv_dec,
                    est_total_time=t_tot,
                )
        if best is None:
            # Degenerate budget: hand each side its floor.
            kv_pre = floor_pre
            return AllocationPlan(
                b_pre=1,
                b_dec=1,
                kv_pre_bytes=kv_pre,
                kv_dec_bytes=kv_budget_bytes - kv_pre,
                est_total_time=_estimate_total_time(
                    self._verifier, self._generator, self._roofline, profile, 1, 1
                ),
            )
        return self._return_surplus(best, profile, pre_seq, dec_seq)

    def _return_surplus(
        self,
        plan: AllocationPlan,
        profile: WorkloadProfile,
        pre_seq: int,
        dec_seq: int,
    ) -> AllocationPlan:
        """Shift decode-side surplus back to the verifier.

        When the decode batch already saturates the workload width, extra
        generator KV buys nothing, while the verifier can use it to retain
        path KV across iterations. This mirrors the paper's run-time
        re-invocation of the allocator as system state changes: memory
        follows whoever can still convert it into throughput.
        """
        if plan.b_dec < profile.n_requests:
            return plan
        surplus = plan.kv_dec_bytes - plan.b_dec * dec_seq
        verifier_room = profile.n_requests * pre_seq - plan.kv_pre_bytes
        # Keep at least 3/4 of the decode partition: the generator also
        # retains the reasoning tree across iterations.
        shift = min(surplus, plan.kv_dec_bytes // 4, max(verifier_room, 0))
        if shift <= 0:
            return plan
        kv_pre = plan.kv_pre_bytes + shift
        return AllocationPlan(
            b_pre=min(max(1, kv_pre // pre_seq), profile.n_requests),
            b_dec=plan.b_dec,
            kv_pre_bytes=kv_pre,
            kv_dec_bytes=plan.kv_dec_bytes - shift,
            est_total_time=plan.est_total_time,
        )

    def search_offload(self, profile: WorkloadProfile, kv_budget_bytes: int) -> AllocationPlan:
        """Relaxed independent-constraint plan plus PCIe swap overhead."""
        if self._link is None:
            raise CapacityError("offload search requires an OffloadLink")
        if kv_budget_bytes <= 0:
            raise CapacityError("no KV budget left after weights")
        floor_pre, floor_dec = _floors(self._verifier, self._generator, profile)
        if max(floor_pre, floor_dec) > kv_budget_bytes:
            raise CapacityError(
                "even with offloading, one worst-case path exceeds the KV budget"
            )
        pre_seq = _per_seq_bytes(self._verifier, profile.verify_tokens)
        dec_seq = _per_seq_bytes(self._generator, profile.decode_context)
        b_pre = min(profile.n_requests, max(1, kv_budget_bytes // pre_seq))
        b_dec = min(profile.n_requests, max(1, kv_budget_bytes // dec_seq))
        t_tot = _estimate_total_time(
            self._verifier, self._generator, self._roofline, profile, b_pre, b_dec
        )
        swapped_pre = min(b_pre * pre_seq, kv_budget_bytes)
        swapped_dec = min(b_dec * dec_seq, kv_budget_bytes)
        overhead = self._swaps * self._link.swap_time(swapped_pre, swapped_dec)
        return AllocationPlan(
            b_pre=b_pre,
            b_dec=b_dec,
            kv_pre_bytes=kv_budget_bytes,
            kv_dec_bytes=kv_budget_bytes,
            est_total_time=t_tot + overhead,
            offload=True,
            est_offload_overhead=overhead,
        )

    def best_plan(
        self, profile: WorkloadProfile, kv_budget_bytes: int, allow_offload: bool
    ) -> AllocationPlan:
        """The dual-strategy policy: pick the faster of the two searches."""
        plan = self.search(profile, kv_budget_bytes)
        if not allow_offload or self._link is None:
            return plan
        offload_plan = self.search_offload(profile, kv_budget_bytes)
        if offload_plan.est_total_time < plan.est_total_time:
            return offload_plan
        return plan
