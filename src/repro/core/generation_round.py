"""The generation stage executor: Continuous Beam Batching + Speculative
Beam Extension (paper Sec. 4.1, Algorithm 1).

One TTS iteration's generation phase runs here as an event-driven decode
loop. Between events the batch composition is constant, so time advances in
*spans* of ``min(remaining)`` lockstep token steps costed by the roofline —
an exact but O(events) simulation of per-token decoding.

Two-phase scheduling (Sec. 4.1.2):

* **Phase 1 — Continuous Beam Batching**: freed slots are refilled from the
  waiting queue of thinking paths belonging to this request (both the
  baseline and FastTTS do this; vLLM's continuous batching provides it).
* **Phase 2 — Speculative Beam Extension** (FastTTS only): when the waiting
  queue is empty, freed slots are filled with speculative continuations of
  already-finished beams, chosen by :class:`~repro.core.spec_select.SelectSpec`.
  Speculation is strictly terminated the moment the last standard beam
  finishes — it can never add tail latency — and is fully preemptible via
  the ``preempt_check`` hook.

Algorithmic equivalence holds by construction: speculative tokens are drawn
from the same keyed streams a future non-speculative execution would use,
and verification never sees them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.engine.jobs import GenJob, GenOutcome, RoundStats, SpecHeadStart
from repro.engine.telemetry import Phase
from repro.engine.worker import GeneratorWorker
from repro.errors import CapacityError, SchedulingError
from repro.core.spec_select import SelectSpec

__all__ = ["ChildStepPlan", "GenerationRound", "GenerationRoundResult"]

# Resolves (parent lineage, child index) to the child's next-step identity,
# or None when the child cannot exist (e.g. the parent's step was terminal).
ChildPlanner = Callable[[tuple[int, ...], int], "ChildStepPlan | None"]


@dataclass(frozen=True, slots=True)
class ChildStepPlan:
    """What a speculative branch would generate for one prospective child."""

    child_lineage: tuple[int, ...]
    segment_id: int
    parent_leaf_segment: int
    n_tokens: int

    def __post_init__(self) -> None:
        if self.n_tokens <= 0:
            raise ValueError("n_tokens must be positive")


@dataclass(frozen=True, slots=True)
class GenerationRoundResult:
    """Per-beam outcomes plus speculative head starts for the next round."""

    outcomes: dict[tuple[int, ...], GenOutcome]
    head_starts: dict[tuple[int, ...], SpecHeadStart]
    stats: RoundStats


@dataclass(slots=True)
class _Pending:
    """A waiting standard job (possibly re-queued after preemption)."""

    job: GenJob
    remaining: int
    progress: int = 0  # tokens decoded before a preemption, if any


@dataclass(slots=True)
class _Slot:
    """One occupied batch slot."""

    segment: int
    remaining: int
    context_len: int
    progress: int = 0
    prior_progress: int = 0  # decoded in an earlier occupancy (preemption)
    job: GenJob | None = None
    spec_parent: tuple[int, ...] | None = None
    spec_child: int = -1
    spec_lineage: tuple[int, ...] | None = None

    @property
    def is_spec(self) -> bool:
        return self.job is None


class GenerationRound:
    """Executes one generation stage over an ordered list of jobs."""

    def __init__(
        self,
        worker: GeneratorWorker,
        slot_budget: int,
        speculation: bool = False,
        branching_factor: int = 4,
        child_planner: ChildPlanner | None = None,
        preempt_check: Callable[[], bool] | None = None,
        spec_bandwidth_fraction: float = 0.25,
    ) -> None:
        if slot_budget < 1:
            raise ValueError("slot_budget must be positive")
        if speculation and child_planner is None:
            raise ValueError("speculation requires a child_planner")
        if spec_bandwidth_fraction <= 0:
            raise ValueError("spec_bandwidth_fraction must be positive")
        self._worker = worker
        self._slot_budget = slot_budget
        self._speculation = speculation
        self._branching = branching_factor
        self._child_planner = child_planner
        self._preempt_check = preempt_check
        self._spec_bandwidth_fraction = spec_bandwidth_fraction

    def run(self, jobs: list[GenJob]) -> GenerationRoundResult:
        """Run the round; ``jobs`` must already be in scheduling order."""
        stats = RoundStats()
        outcomes: dict[tuple[int, ...], GenOutcome] = {}
        heads: dict[tuple[int, ...], SpecHeadStart] = {}
        if not jobs:
            return GenerationRoundResult(outcomes, heads, stats)

        start_time = self._worker.clock.now
        waiting: deque[_Pending] = deque(
            _Pending(job=j, remaining=j.remaining_tokens) for j in jobs
        )
        selector = SelectSpec(self._branching) if self._speculation else None
        running: list[_Slot] = []
        capacity = min(self._slot_budget, max(1, len(jobs)))
        speculation_enabled = self._speculation

        self._admit_standard(waiting, running, outcomes, stats, selector)
        self._check_progress(running, waiting)

        while running:
            if self._preempt_check is not None and self._preempt_check():
                # A new request arrived: Phase 2 halts immediately.
                speculation_enabled = False
                self._kill_spec_slots(running, heads, stats)
                if not running and not waiting:
                    break
                if not running:
                    self._admit_standard(waiting, running, outcomes, stats, selector)
                    self._check_progress(running, waiting)
                    continue

            delta = min(slot.remaining for slot in running)
            busy = len(running)
            spec_slots = sum(1 for s in running if s.is_spec)
            avg_cache = (
                sum(s.context_len + s.progress for s in running) / busy + delta / 2.0
            )
            span_start = self._worker.clock.now
            span_dt = self._worker.decode_span(
                n_steps=delta,
                busy_slots=busy,
                capacity_slots=capacity,
                avg_cache_len=avg_cache,
                speculative_slots=spec_slots,
            )
            if stats.first_token_time is None:
                # The span decodes lockstep: its first token lands one
                # per-step latency after the span begins.
                stats.first_token_time = span_start + span_dt / delta
            self._grow_slots(running, waiting, heads, delta, stats)

            still_running: list[_Slot] = []
            for slot in running:
                if slot.remaining > 0:
                    still_running.append(slot)
                elif slot.is_spec:
                    self._finish_spec(slot, heads, stats)
                else:
                    self._finish_standard(slot, outcomes, stats, selector)
            running = still_running

            self._admit_standard(waiting, running, outcomes, stats, selector)
            self._check_progress(running, waiting)
            if speculation_enabled and not waiting and selector is not None:
                self._fill_with_speculation(running, selector, stats, capacity)
            if not waiting and running and all(s.is_spec for s in running):
                # All standard beams done: strict speculative termination.
                self._kill_spec_slots(running, heads, stats)
                running = []

        stats.round_time = self._worker.clock.now - start_time
        stats.head_starts = list(heads.values())
        return GenerationRoundResult(outcomes, heads, stats)

    # -- admission and slot lifecycle --------------------------------------

    @staticmethod
    def _check_progress(running: list[_Slot], waiting: deque[_Pending]) -> None:
        """Detect a stuck round: work waiting but nothing can be admitted."""
        if waiting and not running:
            raise SchedulingError(
                "generation round stalled: the generator KV budget cannot "
                "host even one waiting beam"
            )

    def _admit_standard(
        self,
        waiting: deque[_Pending],
        running: list[_Slot],
        outcomes: dict[tuple[int, ...], GenOutcome],
        stats: RoundStats,
        selector: SelectSpec | None,
    ) -> None:
        """Admit waiting beams into free slots, batching the prefill charge.

        All beams admitted in one burst share a single batched prefill
        launch for their missing KV (recompute after eviction, prompt
        prefill on round 0) — as vLLM's chunked prefill would.
        """
        cache = self._worker.cache
        burst: list[tuple[GenJob, int, int, _Pending]] = []  # job, missing, hit, pending
        burst_slots = 0  # entries that will occupy a slot (remaining > 0)
        claimed_blocks = 0  # growth already promised to this burst
        while waiting and len(running) + burst_slots < self._slot_budget:
            pending = waiting[0]
            job = pending.job
            register_chain(cache, job.path_segments, job.path_segment_tokens)
            parent = job.path_segments[-1]
            cache.register_segment(job.new_segment, parent, cache_token_len(cache, job))
            needed, reclaimable = cache.path_block_demand(
                job.new_segment, extra_tokens=pending.remaining
            )
            if claimed_blocks + needed > reclaimable:
                break  # wave is full; wait for running beams to drain
            claimed_blocks += needed
            waiting.popleft()
            outcome = cache.materialize(
                job.new_segment, now=self._worker.clock.now, pin=True
            )
            stats.recomputed_tokens += outcome.recomputed_tokens
            stats.cache_hit_tokens += outcome.hit_tokens
            stats.evicted_segments += outcome.evicted_segments
            burst.append(
                (job, outcome.recomputed_tokens, outcome.hit_tokens, pending)
            )
            if pending.remaining > 0:
                burst_slots += 1
        if not burst:
            return
        self._worker.prefill_batch(
            [missing for _, missing, _, _ in burst],
            [hit for _, _, hit, _ in burst],
            phase=Phase.GENERATION,
            capacity_slots=self._slot_budget,
        )
        for job, _, _, pending in burst:
            context = cache.tree.path_tokens(job.new_segment)
            if pending.remaining == 0:
                # Step already fully generated: a speculative head start,
                # or a preempted beam whose decode had finished.
                self._worker.release_path(job.new_segment)
                outcomes[job.lineage] = GenOutcome(
                    lineage=job.lineage,
                    finish_time=self._worker.clock.now,
                    tokens_generated=pending.progress,
                )
                if selector is not None and self._eligible_for_spec(job):
                    selector.offer(job.lineage, job.prev_score)
                continue
            running.append(
                _Slot(
                    segment=job.new_segment,
                    remaining=pending.remaining,
                    context_len=context,
                    prior_progress=pending.progress,
                    job=job,
                )
            )

    def _finish_standard(
        self,
        slot: _Slot,
        outcomes: dict[tuple[int, ...], GenOutcome],
        stats: RoundStats,
        selector: SelectSpec | None,
    ) -> None:
        assert slot.job is not None
        self._worker.release_path(slot.segment)
        outcomes[slot.job.lineage] = GenOutcome(
            lineage=slot.job.lineage,
            finish_time=self._worker.clock.now,
            tokens_generated=slot.prior_progress + slot.progress,
        )
        stats.decoded_tokens += slot.progress
        if selector is not None and self._eligible_for_spec(slot.job):
            selector.offer(slot.job.lineage, slot.job.prev_score)

    def _eligible_for_spec(self, job: GenJob) -> bool:
        if self._child_planner is None:
            return False
        return self._child_planner(job.lineage, 0) is not None

    def _spec_slot_cap(self, running: list[_Slot]) -> int:
        """Bound speculation by its marginal memory-bandwidth cost.

        Straggler steps read the weights regardless; a speculative slot
        only adds its KV traffic. Once the combined speculative KV reads
        per step approach the weight traffic, speculation starts slowing
        the straggler it is meant to hide, so slots are capped at
        ``spec_bandwidth_fraction`` of the weight bytes. At small n this
        cap is far above the free-slot count and never binds.
        """
        contexts = [s.context_len + s.progress for s in running if not s.is_spec]
        avg_ctx = max(1.0, sum(contexts) / len(contexts)) if contexts else 512.0
        bytes_per_spec_step = avg_ctx * self._worker.cache.kv_bytes_per_token
        budget = self._spec_bandwidth_fraction * self._worker.model.weight_bytes
        return max(1, int(budget / bytes_per_spec_step))

    def _fill_with_speculation(
        self,
        running: list[_Slot],
        selector: SelectSpec,
        stats: RoundStats,
        capacity: int,
    ) -> None:
        """Fill freed slots up to the round's batch width (never beyond:
        the paper's policy maintains a constant batch size) and within the
        marginal-bandwidth cap."""
        assert self._child_planner is not None
        spec_cap = self._spec_slot_cap(running)
        while (
            len(running) < min(self._slot_budget, capacity)
            and sum(1 for s in running if s.is_spec) < spec_cap
        ):
            claim = selector.next_branch()
            if claim is None:
                return
            parent_lineage, child_index = claim
            plan = self._child_planner(parent_lineage, child_index)
            if plan is None:
                continue
            cache = self._worker.cache
            cache.register_segment(plan.segment_id, plan.parent_leaf_segment, 0)
            if not cache.can_fit_path(plan.segment_id, extra_tokens=plan.n_tokens):
                continue  # never evict standard work for speculation
            try:
                self._worker.cache.materialize(
                    plan.segment_id, now=self._worker.clock.now, pin=True
                )
            except CapacityError:
                continue
            running.append(
                _Slot(
                    segment=plan.segment_id,
                    remaining=plan.n_tokens,
                    context_len=cache.tree.path_tokens(plan.segment_id),
                    spec_parent=parent_lineage,
                    spec_child=child_index,
                    spec_lineage=plan.child_lineage,
                )
            )

    def _finish_spec(
        self,
        slot: _Slot,
        heads: dict[tuple[int, ...], SpecHeadStart],
        stats: RoundStats,
    ) -> None:
        assert slot.spec_lineage is not None and slot.spec_parent is not None
        self._worker.release_path(slot.segment)
        stats.speculative_tokens += slot.progress
        if slot.progress > 0:
            heads[slot.spec_lineage] = SpecHeadStart(
                parent_lineage=slot.spec_parent,
                child_index=slot.spec_child,
                tokens=slot.progress,
                segment_id=slot.segment,
            )

    def _kill_spec_slots(
        self,
        running: list[_Slot],
        heads: dict[tuple[int, ...], SpecHeadStart],
        stats: RoundStats,
    ) -> None:
        """Terminate speculative slots, keeping partial progress as heads."""
        for slot in [s for s in running if s.is_spec]:
            self._finish_spec(slot, heads, stats)
            running.remove(slot)

    # -- decode-time KV growth ---------------------------------------------

    def _grow_slots(
        self,
        running: list[_Slot],
        waiting: deque[_Pending],
        heads: dict[tuple[int, ...], SpecHeadStart],
        delta: int,
        stats: RoundStats,
    ) -> None:
        """Extend every running tail by ``delta`` tokens, preempting on OOM.

        Victim policy mirrors vLLM recompute-mode preemption: speculative
        slots die first (their progress is kept as a head start), then the
        most recently admitted standard slot is pushed back to the waiting
        queue — its generated text survives, so re-admission recomputes its
        KV via prefill rather than re-decoding.
        """
        for slot in list(running):
            if slot not in running:
                continue  # preempted as a victim earlier in this span
            while True:
                try:
                    self._worker.cache.extend_segment(
                        slot.segment, delta, now=self._worker.clock.now
                    )
                    slot.progress += delta
                    slot.remaining -= delta
                    break
                except CapacityError:
                    victim = self._pick_victim(running, slot)
                    if victim is None:
                        raise SchedulingError(
                            "decode batch cannot grow: a single sequence "
                            "exceeds the generator KV budget"
                        ) from None
                    if victim.is_spec:
                        self._finish_spec(victim, heads, stats)
                    else:
                        self._preempt_standard(victim, waiting, stats)
                    running.remove(victim)

    def _pick_victim(self, running: list[_Slot], protected: _Slot) -> _Slot | None:
        for slot in reversed(running):
            if slot is not protected and slot.is_spec:
                return slot
        for slot in reversed(running):
            if slot is not protected:
                return slot
        return None

    def _preempt_standard(
        self, slot: _Slot, waiting: deque[_Pending], stats: RoundStats
    ) -> None:
        assert slot.job is not None
        self._worker.release_path(slot.segment)
        self._worker.cache.evict_path(slot.segment, now=self._worker.clock.now)
        stats.decoded_tokens += slot.progress  # text exists; KV recomputes
        waiting.appendleft(
            _Pending(
                job=slot.job,
                remaining=slot.remaining,
                progress=slot.prior_progress + slot.progress,
            )
        )


def cache_token_len(cache, job: GenJob) -> int:
    """Current registered length of the job's tail segment.

    A head-started segment already exists (written by last round's
    speculation) and keeps its length; a fresh segment starts empty.
    """
    if job.new_segment in cache.tree:
        return cache.tree.get(job.new_segment).token_len
    return job.head_start


def register_chain(
    cache, segments: tuple[int, ...], token_lens: tuple[int, ...]
) -> None:
    """Idempotently register a root->leaf segment chain."""
    parent: int | None = None
    for seg_id, tokens in zip(segments, token_lens):
        if seg_id not in cache.tree:
            cache.register_segment(seg_id, parent, tokens)
        parent = seg_id
