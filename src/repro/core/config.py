"""Server configuration: one dataclass, every optimization a switch.

FastTTS and the vLLM-style baseline are the *same* serving loop with
different switches, which is what makes the ablation study (Fig. 16) and
the algorithmic-equivalence tests meaningful: flipping a switch changes
timing, never search results.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from enum import Enum

from repro.errors import ConfigError
from repro.utils.suggest import did_you_mean

__all__ = ["OffloadMode", "ServerConfig", "baseline_config", "fasttts_config"]


class OffloadMode(str, Enum):
    """KV offloading strategy selection (paper Sec. 4.3.2)."""

    OFF = "off"      # never offload
    AUTO = "auto"    # allocator picks the lower-latency strategy
    FORCE = "force"  # always offload (for ablations)


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Full configuration of one serving system instance.

    Attributes
    ----------
    device_name / model_config:
        Hardware and the paper's generator+verifier pairing
        (``"1.5B+1.5B"``, ``"1.5B+7B"``, ``"7B+1.5B"``).
    memory_fraction:
        Fraction of the device's usable VRAM handed to this system; the
        paper uses 0.9 for the heavy configs and 0.4 for the
        memory-constrained 1.5B+1.5B setting.
    speculation:
        Speculative Beam Extension (S).
    prefix_caching:
        Whether KV survives across engine calls (vLLM's automatic prefix
        caching). The Sec. 6.1 baseline follows HuggingFace's
        search-and-learn, which leaves it off — every TTS iteration
        re-prefills full contexts. FastTTS requires it.
    prefix_aware:
        Dynamic Prefix-Aware Scheduling (P); only meaningful with
        ``prefix_caching`` on.
    asymmetric_alloc:
        Asymmetric Multi-Model Memory Allocation (M). Off means a static
        50/50 KV split, as two independent vLLM instances would get.
    lookahead:
        LookAhead Verification (needs speculation to have any effect).
    spec_truncation_ratio:
        The paper's R: the mean fraction of speculative tokens a duplicated
        beam retains (the original always keeps everything).
    offload:
        KV offloading policy for extremely constrained devices.
    efficiency:
        Roofline derating factor (uniform; never changes comparisons).
    """

    device_name: str = "rtx4090"
    model_config: str = "1.5B+1.5B"
    memory_fraction: float = 0.9
    seed: int = 0
    speculation: bool = False
    prefix_caching: bool = False
    prefix_aware: bool = False
    asymmetric_alloc: bool = False
    lookahead: bool = False
    spec_truncation_ratio: float = 0.85
    spec_bandwidth_fraction: float = 0.25
    offload: OffloadMode = OffloadMode.OFF
    quantization: str | None = None  # e.g. "int8"; None = fp16 deployment
    block_tokens: int = 16
    efficiency: float = 0.6
    max_slots: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 < self.memory_fraction <= 1.0:
            raise ConfigError("memory_fraction must be in (0, 1]")
        if not 0.0 <= self.spec_truncation_ratio <= 1.0:
            raise ConfigError("spec_truncation_ratio must be in [0, 1]")
        if self.spec_bandwidth_fraction <= 0.0:
            raise ConfigError("spec_bandwidth_fraction must be positive")
        if self.block_tokens <= 0:
            raise ConfigError("block_tokens must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigError("efficiency must be in (0, 1]")
        if self.max_slots < 1:
            raise ConfigError("max_slots must be positive")
        if self.lookahead and not self.speculation:
            raise ConfigError("lookahead verification requires speculation")
        if self.prefix_aware and not self.prefix_caching:
            raise ConfigError("prefix-aware scheduling requires prefix caching")
        if self.speculation and not self.prefix_caching:
            raise ConfigError(
                "speculative beam extension stores head starts in the prefix "
                "cache and requires prefix caching"
            )

    def with_overrides(self, **kwargs) -> "ServerConfig":
        """Functional update (configs are frozen).

        Unknown keys raise :class:`ConfigError` naming the offender (and
        suggesting the nearest known key), rather than surfacing dataclass
        internals as a raw ``TypeError``.
        """
        known = {f.name for f in fields(self)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            labelled = ", ".join(
                f"{key}{did_you_mean(key, known)}" for key in unknown
            )
            raise ConfigError(f"unknown ServerConfig key(s): {labelled}")
        return replace(self, **kwargs)


def baseline_config(**overrides) -> ServerConfig:
    """The naive-but-robust vLLM baseline of Sec. 6.1: all switches off."""
    return ServerConfig(**overrides)


def fasttts_config(**overrides) -> ServerConfig:
    """FastTTS with all three optimizations (plus lookahead) enabled."""
    defaults = dict(
        speculation=True,
        prefix_caching=True,
        prefix_aware=True,
        asymmetric_alloc=True,
        lookahead=True,
        offload=OffloadMode.AUTO,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)
