"""FastTTS core: the paper's contribution and the baseline it replaces."""

from repro.core.allocator import (
    AllocationPlan,
    RooflineAllocator,
    WorkloadProfile,
    static_split_plan,
)
from repro.core.config import OffloadMode, ServerConfig, baseline_config, fasttts_config
from repro.core.fleet import FleetReport, FleetRequest, TTSFleet, generate_arrivals
from repro.core.generation_round import (
    ChildStepPlan,
    GenerationRound,
    GenerationRoundResult,
)
from repro.core.pool import (
    DevicePool,
    FirstFitPlacement,
    KvBalancedPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    PooledDevice,
    build_placement,
    list_placements,
    placement_descriptions,
)
from repro.core.scheduler import (
    FifoScheduler,
    FirstFinishScheduler,
    PrefixAffinityScheduler,
    RequestScheduler,
    RoundRobinScheduler,
    SessionHandle,
    SjfScheduler,
    build_scheduler,
    list_schedulers,
    predict_cost,
    predict_rounds,
)
from repro.core.session import SessionState, SolveSession
from repro.core.prefix_sched import (
    eviction_cost,
    greedy_order,
    greedy_successor,
    lineage_order,
    random_order,
    schedule_tries,
    worst_case_order,
)
from repro.core.server import SolveOutcome, TTSServer
from repro.core.spec_select import SelectSpec, SpecCandidate, speculative_potential
from repro.core.verification_round import VerificationRound, VerificationRoundResult

__all__ = [
    "ServerConfig",
    "OffloadMode",
    "baseline_config",
    "fasttts_config",
    "TTSServer",
    "SolveOutcome",
    "SolveSession",
    "SessionState",
    "RequestScheduler",
    "SessionHandle",
    "FifoScheduler",
    "SjfScheduler",
    "RoundRobinScheduler",
    "FirstFinishScheduler",
    "PrefixAffinityScheduler",
    "build_scheduler",
    "list_schedulers",
    "predict_rounds",
    "predict_cost",
    "TTSFleet",
    "FleetRequest",
    "FleetReport",
    "generate_arrivals",
    "DevicePool",
    "PooledDevice",
    "PlacementPolicy",
    "FirstFitPlacement",
    "LeastLoadedPlacement",
    "KvBalancedPlacement",
    "build_placement",
    "list_placements",
    "placement_descriptions",
    "AllocationPlan",
    "WorkloadProfile",
    "RooflineAllocator",
    "static_split_plan",
    "GenerationRound",
    "GenerationRoundResult",
    "ChildStepPlan",
    "VerificationRound",
    "VerificationRoundResult",
    "SelectSpec",
    "SpecCandidate",
    "speculative_potential",
    "greedy_order",
    "greedy_successor",
    "lineage_order",
    "random_order",
    "worst_case_order",
    "schedule_tries",
    "eviction_cost",
]
