"""Dynamic Prefix-Aware Scheduling (paper Sec. 4.2).

At each TTS iteration the scheduler orders the active reasoning paths so
that consecutively scheduled paths share maximal KV prefixes, minimizing
evictions under a constrained cache. The paper proves (Appendix A) that the
greedy invariant

    T_{k+1} = argmax_{c_i in Q} P(c_k, c_i)

is locally optimal under a pairwise-interchange argument, and implements it
in practice by grouping beams spawned from the same parent while preserving
the parents' relative order across iterations.

This module provides:

* :func:`greedy_order` — the literal argmax greedy schedule;
* :func:`lineage_order` — the paper's practical sibling-grouping
  implementation (O(k log k), empirically near the greedy schedule);
* :func:`random_order` / :func:`worst_case_order` — the Fig. 18 baselines;
* :func:`eviction_cost` — the paper's cost model
  ``sum_i (Nodes(T_i) - P(T_i, T_{i+1}))`` evaluated for any order, used by
  benches and the scheduler's own regression tests.
"""

from __future__ import annotations

import warnings
from typing import Callable, Sequence, TypeVar

from repro.kvcache.radix import RadixTree
from repro.utils.rng import KeyedRng

__all__ = [
    "greedy_order",
    "greedy_successor",
    "lineage_order",
    "max_overlap_choice",
    "random_order",
    "worst_case_order",
    "eviction_cost",
    "schedule_tries",
]

T = TypeVar("T")

# A scheduling item is anything that can name its KV path: the callers pass
# (item, leaf_segment_id) accessors so this module stays agnostic of jobs.
LeafFn = Callable[[T], int]
LineageFn = Callable[[T], tuple[int, ...]]


def lineage_order(items: Sequence[T], lineage_of: LineageFn) -> list[T]:
    """Group siblings, preserving parent order across iterations.

    Sorting by lineage tuple does exactly what the paper describes: beams
    spawned from the same parent become adjacent (their lineage shares a
    prefix), and the relative order of parents is inherited lexically.
    """
    return sorted(items, key=lineage_of)


def max_overlap_choice(
    items: Sequence[T],
    overlap_of: Callable[[T], int],
    tie_key: Callable[[T], object],
) -> T:
    """Argmax-overlap selection with a deterministic tie-break.

    The single greedy invariant behind *both* notions of prefix affinity
    in the fleet: the ``prefix_affinity`` scheduler picks the next
    session whose KV path shares the most tokens with the last one run
    (:func:`greedy_successor`), and the ``prefix_affinity`` *placement*
    (:class:`~repro.core.pool.PrefixAffinityPlacement`) picks the lane
    already holding the most bytes of a request's planned claims. Both
    route through this helper so the two argmaxes cannot drift apart.
    Maximal ``overlap_of`` wins; ties fall to the minimal ``tie_key``.
    """
    if not items:
        raise ValueError("max_overlap_choice needs at least one candidate")
    return min(items, key=lambda it: (-overlap_of(it), tie_key(it)))


def greedy_successor(
    items: Sequence[T], tree: RadixTree, leaf_of: LeafFn, last_leaf: int
) -> T:
    """The paper's greedy invariant: argmax shared prefix with ``last_leaf``.

    The tie-break is the documented deterministic one — the *lowest* leaf
    id among maximal sharers — stated explicitly here so the anchor sort
    in :func:`greedy_order` (ascending leaf id) and this successor argmax
    can never drift apart again. Also used by the fleet's
    ``prefix_affinity`` scheduler to pick the next *session* on a lane.
    """
    if not items:
        raise ValueError("greedy_successor needs at least one candidate")
    return max_overlap_choice(
        items,
        lambda it: tree.shared_prefix_tokens(last_leaf, leaf_of(it)),
        leaf_of,
    )


def greedy_order(items: Sequence[T], tree: RadixTree, leaf_of: LeafFn) -> list[T]:
    """The argmax-greedy schedule from the paper's formulation.

    Starts from the item with the deepest path (the densest prefix to
    anchor on) and repeatedly appends the remaining item sharing the most
    prefix tokens with the last scheduled one. Ties break deterministically
    on ascending leaf id — in the anchor sort and the successor argmax
    alike (:func:`greedy_successor`). O(k^2 * depth); fine for the
    paper's n <= 512.
    """
    if not items:
        return []
    remaining = list(items)
    remaining.sort(key=lambda it: (-tree.get(leaf_of(it)).depth, leaf_of(it)))
    schedule = [remaining.pop(0)]
    while remaining:
        best = greedy_successor(remaining, tree, leaf_of, leaf_of(schedule[-1]))
        remaining.remove(best)
        schedule.append(best)
    return schedule


def random_order(items: Sequence[T], rng: KeyedRng, salt: int = 0) -> list[T]:
    """Uniform random shuffle (the vLLM baseline in Fig. 18)."""
    order = list(items)
    stream = rng.stream("random-order", salt)
    perm = stream.permutation(len(order))
    return [order[i] for i in perm]


def worst_case_order(items: Sequence[T], tree: RadixTree, leaf_of: LeafFn) -> list[T]:
    """Adversarial schedule: always pick the *least*-sharing successor."""
    if not items:
        return []
    remaining = list(items)
    remaining.sort(key=leaf_of)
    schedule = [remaining.pop(0)]
    while remaining:
        last_leaf = leaf_of(schedule[-1])
        worst_idx = min(
            range(len(remaining)),
            key=lambda i: (
                tree.shared_prefix_tokens(last_leaf, leaf_of(remaining[i])),
                leaf_of(remaining[i]),
            ),
        )
        schedule.append(remaining.pop(worst_idx))
    return schedule


def schedule_tries(
    ordered: Sequence[T], tree: RadixTree, leaf_of: LeafFn, capacity_nodes: int
) -> list[set[int]]:
    """Partition an ordered schedule into Tries that fit the cache.

    Each Trie T_i is the largest group of consecutively scheduled paths
    whose union of nodes fits ``capacity_nodes`` (the paper's batching
    model). Returns the node-id set of each Trie. A single path that by
    itself exceeds the capacity is scheduled as its own oversized Trie
    with a ``RuntimeWarning`` — downstream costs over it are lower
    bounds, not realizable cache behaviour.
    """
    if capacity_nodes < 1:
        raise ValueError("capacity_nodes must be positive")
    tries: list[set[int]] = []
    current: set[int] = set()
    for item in ordered:
        nodes = set(tree.path(leaf_of(item)))
        if len(nodes) > capacity_nodes:
            # A lone path bigger than the cache can never be co-resident:
            # it becomes its own Trie, and any cost computed over it is a
            # *lower bound* (the real cache would thrash within the path).
            # Surface that instead of silently reporting an unrealizable
            # cost.
            warnings.warn(
                f"path to leaf {leaf_of(item)} needs {len(nodes)} nodes but "
                f"the cache holds only {capacity_nodes}; scheduling it as an "
                "oversized trie whose eviction cost understates the real "
                "thrashing",
                RuntimeWarning,
                stacklevel=2,
            )
        union = current | nodes
        if current and len(union) > capacity_nodes:
            tries.append(current)
            current = set(nodes)
        else:
            current = union
    if current:
        tries.append(current)
    return tries


def eviction_cost(
    ordered: Sequence[T], tree: RadixTree, leaf_of: LeafFn, capacity_nodes: int
) -> int:
    """The paper's objective: ``sum_i (Nodes(T_i) - P(T_i, T_{i+1}))``.

    ``P`` between consecutive Tries is their shared node count — nodes that
    survive the batch switch in cache. Lower is better; the greedy schedule
    should (and in tests does) dominate random and worst-case orders.
    """
    tries = schedule_tries(ordered, tree, leaf_of, capacity_nodes)
    if not tries:
        return 0
    cost = 0
    for i, nodes in enumerate(tries):
        shared_next = len(nodes & tries[i + 1]) if i + 1 < len(tries) else 0
        cost += len(nodes) - shared_next
    return cost
