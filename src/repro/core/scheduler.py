"""Pluggable request schedulers for round-granular fleet serving.

A :class:`~repro.core.fleet.TTSFleet` no longer runs requests to
completion: every admitted request becomes one or more resumable
:class:`~repro.core.session.SolveSession` objects, and between rounds the
fleet asks a :class:`RequestScheduler` *which session gets the device
next*. Policies shipped here:

``fifo``
    Arrival order, run-to-completion — byte-identical to the pre-session
    fleet (pinned by ``tests/goldens/fleet_fifo_goldens.json``).
``sjf``
    Shortest-Job-First by predicted rounds: when the device frees up, the
    arrived request whose search is predicted to need the fewest
    generation rounds starts first (non-preemptive). Classic SJF queueing
    gains: mean/p95 queueing delay drop under contention.
``round_robin``
    Fair time-slicing: the runnable session that ran least recently gets
    the next round, so short requests are not stuck behind long ones.
``first_finish``
    First-Finish-Search-style redundancy (Agarwal et al., 2025): each
    request is raced by ``replicas`` divergent sessions (forked RNG — a
    different sampled search), the first replica whose finish the
    verifier trusts (answer-confidence threshold on the observable PRM
    scores) wins, and the losers are cancelled mid-flight. If nobody
    clears the threshold, the canonical replica's result is used — an
    unverified race degrades to exactly the FIFO answer.
``prefix_affinity``
    Dynamic Prefix-Aware Scheduling lifted to sessions: the runnable
    session sharing the most resident KV prefix with the last-run one
    goes next (the Sec. 4.2 greedy invariant, evaluated over the lane's
    :class:`~repro.hardware.memory.SharedKVLedger` radix tree), so a
    shared-ledger lane evicts and restores as few unique bytes as
    possible. Without a shared ledger it degrades to lineage grouping —
    sessions of the same problem run back to back.

Schedulers are deliberately small: they see opaque :class:`SessionHandle`
rows and return one. All device bookkeeping (clock mapping, admission,
records) stays in the fleet.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.session import SolveSession
from repro.engine.clock import ClockBinding
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fleet import FleetRequest
    from repro.core.pool import PlacementPolicy, PooledDevice
    from repro.core.server import TTSServer

__all__ = [
    "SessionHandle",
    "RequestScheduler",
    "FifoScheduler",
    "SjfScheduler",
    "RoundRobinScheduler",
    "FirstFinishScheduler",
    "PrefixAffinityScheduler",
    "predict_rounds",
    "predict_cost",
    "build_scheduler",
    "list_schedulers",
    "scheduler_descriptions",
]


@dataclass(slots=True)
class SessionHandle:
    """One schedulable session plus the fleet bookkeeping around it.

    ``seq`` is the request's position in arrival order (ties broken by
    submission order); ``replica`` distinguishes racing sessions of one
    request. ``last_stepped`` is the fleet's turn counter at this
    session's most recent round, ``start_s`` the fleet time service began
    (None until first picked). ``binding`` maps the session's private
    clock onto the clock of ``device`` — the
    :class:`~repro.core.pool.PooledDevice` lane the request was placed on
    (None only for handles built outside a pool-driven fleet).
    ``kv_swap_s`` accumulates the cross-session KV contention and
    migration time charged to this session. ``first_token_s`` is the
    fleet time the session produced its first generated token (None
    until then) — the fleet captures it for the TTFT metric by mapping
    the session's private first-token time through its clock binding.
    """

    request_id: str
    arrival_s: float
    seq: int
    replica: int
    session: SolveSession
    binding: ClockBinding
    device: "PooledDevice | None" = None
    start_s: float | None = None
    last_stepped: int = -1
    predicted_cost: tuple[int, int] | None = None
    kv_swap_s: float = 0.0
    first_token_s: float | None = None

    @property
    def runnable(self) -> bool:
        return self.session.state.live


def predict_rounds(server: "TTSServer", problem, algorithm) -> int:
    """Predict how many generation rounds a request's search will take."""
    return predict_cost(server, problem, algorithm)[0]


def predict_cost(server: "TTSServer", problem, algorithm) -> tuple[int, int]:
    """Predict a request's search length: (rounds, decode tokens).

    Runs the serving-free reference search
    (:func:`~repro.experiments.reference.pure_search`) — the simulation
    analogue of the SJF literature's request-length predictor: a cheap
    profile pass over the sampling recipe, with none of the serving costs
    (no clock, batching, caches) that the real solve will pay. Because
    every draw is keyed, the profile is deterministic and side-effect
    free; it predicts *work*, not seconds, so it stays an estimator of
    service time, not an oracle.
    """
    from repro.experiments.reference import pure_search

    ref = pure_search(
        problem,
        server.dataset,
        algorithm,
        model_config=server.config.model_config,
        seed=server.config.seed,
    )
    tokens = 0
    for round_idx, lineages in enumerate(ref.rounds):
        cap = algorithm.step_cap(round_idx)
        for lineage in lineages:
            tokens += server.generator.plan_step(
                problem, lineage, round_idx, cap
            ).n_tokens
    return ref.n_rounds, tokens


class RequestScheduler(ABC):
    """Policy interface: who gets the simulated device for the next round.

    The fleet calls :meth:`sessions_for` once per admitted request (the
    policy decides how many racing replicas to spawn), :meth:`pick` every
    scheduling turn with the runnable handles, and :meth:`race_decided`
    whenever a session reaches ``DONE`` (the policy decides whether that
    settles the request). Policies must be deterministic functions of
    their inputs — fleets are replayable end to end.
    """

    name: str = "abstract"
    description: str = ""

    def choose_device(
        self,
        request: "FleetRequest",
        devices: "Sequence[PooledDevice]",
        placement: "PlacementPolicy",
        now: float,
    ) -> "PooledDevice":
        """Placement hook: which pool device serves this new request.

        ``devices`` holds only the lanes whose allocator can plan the
        request's beam budget (the fleet filters eligibility first). The
        default delegates to the fleet's placement policy, keeping
        placement an independent axis; a scheduler that wants to co-decide
        placement and ordering (e.g. racing replicas across devices)
        overrides this.
        """
        return placement.choose(request, devices, now)

    def replica_lanes(
        self,
        request: "FleetRequest",
        chosen: "PooledDevice",
        devices: "Sequence[PooledDevice]",
    ) -> "list[PooledDevice]":
        """Lanes a request's racing replicas cycle across.

        The fleet places replica ``i`` on ``lanes[i % len(lanes)]`` of the
        returned non-empty list. The default co-locates every replica on
        the chosen lane — the single-placement behaviour every
        non-racing policy expects. A racing scheduler can spread its
        replicas across lanes, which buys *implicit redundancy*: a lane
        crash then kills one replica, not the request.
        """
        return [chosen]

    def sessions_for(
        self, server: "TTSServer", request: "FleetRequest"
    ) -> list[SolveSession]:
        """Create this request's session(s); default is one canonical session."""
        return [
            server.session(
                request.problem,
                request.algorithm,
                session_id=f"{request.request_id}/r0",
            )
        ]

    def drop_expired(
        self, request: "FleetRequest", now: float, late_policy: str
    ) -> bool:
        """Deadline-aware admission hook: shed this still-queued request?

        Consulted by the open-loop fleet driver whenever a request whose
        service has not started is considered for the device: with
        ``late_policy="drop"`` the default drops it once ``now`` passes
        ``arrival_s + deadline_s`` (requests without a deadline, and the
        ``"serve_late"`` policy, are never dropped). A policy that wants
        tenant- or class-aware shedding (e.g. never drop a gold tenant)
        overrides this; the decision must stay a deterministic function
        of ``(request, now, late_policy)``.
        """
        if late_policy != "drop" or request.deadline_s is None:
            return False
        return now >= request.arrival_s + request.deadline_s

    @abstractmethod
    def pick(self, runnable: Sequence[SessionHandle], now: float) -> SessionHandle:
        """Choose which runnable session advances by one round."""

    def race_decided(
        self, finished: SessionHandle, siblings: Sequence[SessionHandle]
    ) -> bool:
        """Whether ``finished`` settles its request (default: always)."""
        return True


def _arrival_key(handle: SessionHandle) -> tuple[float, int, int]:
    return (handle.arrival_s, handle.seq, handle.replica)


class FifoScheduler(RequestScheduler):
    """Arrival order, one request at a time, run to completion."""

    name = "fifo"
    description = "arrival order, run-to-completion (the legacy fleet policy)"

    def pick(self, runnable: Sequence[SessionHandle], now: float) -> SessionHandle:
        return min(runnable, key=_arrival_key)


class SjfScheduler(RequestScheduler):
    """Non-preemptive Shortest-Job-First by predicted search length.

    Jobs are ordered by predicted (rounds, decode tokens) from
    :func:`predict_cost`; when the device frees up, the shortest predicted
    job among the arrived requests starts first and runs to completion.
    """

    name = "sjf"
    description = "shortest predicted search first (non-preemptive)"

    def pick(self, runnable: Sequence[SessionHandle], now: float) -> SessionHandle:
        started = [h for h in runnable if h.start_s is not None]
        if started:
            # Non-preemptive: the job on the device keeps it.
            return min(started, key=_arrival_key)
        for handle in runnable:
            if handle.predicted_cost is None:
                handle.predicted_cost = predict_cost(
                    handle.session.server,
                    handle.session.problem,
                    handle.session.algorithm,
                )
        return min(
            runnable,
            key=lambda h: (h.predicted_cost, h.arrival_s, h.seq, h.replica),
        )


class RoundRobinScheduler(RequestScheduler):
    """Cycle the device across all arrived requests, one round each."""

    name = "round_robin"
    description = "time-slice one round per runnable request in rotation"

    def pick(self, runnable: Sequence[SessionHandle], now: float) -> SessionHandle:
        return min(runnable, key=lambda h: (h.last_stepped, h.seq, h.replica))


class FirstFinishScheduler(RequestScheduler):
    """Race divergent replicas per request; first verified finish wins.

    Replica 0 is the canonical session (identical to what FIFO would run);
    replicas 1..K-1 fork the server RNG, so they explore genuinely
    different sampled searches. Requests themselves are served in arrival
    order; within the active request the replicas are round-robined.

    "Verified finish" is decided on an *observable* signal only: a replica
    that reaches ``DONE`` settles the race iff the verifier-score mass
    behind its majority answer (:func:`~repro.metrics.accuracy
    .answer_confidence`) reaches ``verify_threshold`` — the serving-time
    analogue of FFS accepting the first answer its verifier trusts; the
    ground truth is never consulted. If every replica finishes below the
    threshold, the canonical replica's result stands, so an unverified
    race degrades to exactly the FIFO answer. The high default threshold
    makes early cancellation conservative: it fires on near-unanimous
    verifier agreement, which is also why the answer served is, in
    practice, never worse than FIFO's on the same seed (asserted as a
    seeded property test).
    """

    name = "first_finish"
    description = "race forked replicas per request, cancel losers on first verified finish"

    def __init__(self, replicas: int = 2, verify_threshold: float = 0.9) -> None:
        if replicas < 1:
            raise ConfigError("first_finish needs at least 1 replica")
        if not 0.0 < verify_threshold <= 1.0:
            raise ConfigError("verify_threshold must be in (0, 1]")
        self._replicas = replicas
        self._verify_threshold = verify_threshold

    @property
    def replicas(self) -> int:
        return self._replicas

    @property
    def verify_threshold(self) -> float:
        return self._verify_threshold

    def sessions_for(
        self, server: "TTSServer", request: "FleetRequest"
    ) -> list[SolveSession]:
        sessions = []
        for replica in range(self._replicas):
            rng = None
            if replica > 0:
                rng = server.rng.fork("ffs-replica", request.request_id, replica)
            sessions.append(
                server.session(
                    request.problem,
                    request.algorithm,
                    rng=rng,
                    session_id=f"{request.request_id}/r{replica}",
                )
            )
        return sessions

    def replica_lanes(self, request, chosen, devices):
        """Spread replicas across eligible lanes for implicit redundancy.

        Replica 0 (canonical) stays on the placement-chosen lane; the
        others cycle through the remaining eligible lanes by index, so on
        a multi-lane pool a crash takes out at most one replica of the
        race. On a single-lane pool this degrades to co-location.
        """
        others = sorted(
            (lane for lane in devices if lane is not chosen),
            key=lambda lane: lane.index,
        )
        return [chosen, *others]

    def pick(self, runnable: Sequence[SessionHandle], now: float) -> SessionHandle:
        front = min(runnable, key=_arrival_key)
        race = [h for h in runnable if h.seq == front.seq]
        return min(race, key=lambda h: (h.last_stepped, h.replica))

    def race_decided(
        self, finished: SessionHandle, siblings: Sequence[SessionHandle]
    ) -> bool:
        from repro.metrics.accuracy import answer_confidence

        beams = finished.session.outcome.result.beams
        return answer_confidence(beams) >= self._verify_threshold


class PrefixAffinityScheduler(RequestScheduler):
    """Greedy shared-prefix successor over the lane's KV radix tree.

    The serving-level analogue of Dynamic Prefix-Aware Scheduling
    (Sec. 4.2): instead of ordering one request's *beams*, order the
    lane's *sessions* so that consecutively run sessions share the most
    resident KV prefix. On a lane whose :class:`~repro.hardware.memory
    .SharedKVLedger` tracks segment lineages, the next session is the
    :func:`~repro.core.prefix_sched.greedy_successor` of the last-run
    one — maximal shared prefix bytes with its leaf, ties on ascending
    leaf id — which minimizes the unique bytes the ledger must evict and
    restore per switch. Sessions that have not registered segments yet
    (not yet started) are started only when no registered session is
    runnable, mirroring the paper's preference for draining warm paths
    before cold ones.

    Fallback (no shared ledger, or nothing registered yet): the
    practical sibling-grouping schedule — :func:`~repro.core.prefix_sched
    .lineage_order` over ``(problem, arrival, replica)`` — which still
    runs sessions of the same problem back to back.
    """

    name = "prefix_affinity"
    description = (
        "run the session sharing the most resident KV prefix with the last one"
    )

    def __init__(self) -> None:
        self._last_owner: dict[int, str] = {}  # lane index -> session id

    @staticmethod
    def _lineage_key(handle: SessionHandle):
        return (
            handle.session.problem.problem_id,
            handle.arrival_s,
            handle.seq,
            handle.replica,
        )

    def pick(self, runnable: Sequence[SessionHandle], now: float) -> SessionHandle:
        from repro.core.prefix_sched import greedy_successor

        lane = runnable[0].device
        ledger = lane.ledger if lane is not None else None
        choice: SessionHandle | None = None
        if ledger is not None and ledger.segment_granular:
            leaves = {
                h.session.session_id: ledger.owner_leaf(h.session.session_id)
                for h in runnable
            }
            registered = [
                h for h in runnable if leaves[h.session.session_id] is not None
            ]
            anchor_owner = self._last_owner.get(lane.index)
            anchor = (
                ledger.owner_leaf(anchor_owner) if anchor_owner is not None else None
            )
            if registered and anchor is not None:
                choice = greedy_successor(
                    sorted(registered, key=_arrival_key),
                    ledger.tree,
                    lambda h: leaves[h.session.session_id],
                    anchor,
                )
            elif registered:
                # No anchor yet: start from the warmest (deepest) path,
                # exactly like greedy_order's anchor choice.
                choice = min(
                    registered,
                    key=lambda h: (
                        -ledger.tree.get(leaves[h.session.session_id]).depth,
                        leaves[h.session.session_id],
                        _arrival_key(h),
                    ),
                )
        if choice is None:
            # The head of lineage_order(runnable, _lineage_key): sessions
            # of the same problem drain back to back.
            choice = min(runnable, key=self._lineage_key)
        if lane is not None:
            self._last_owner[lane.index] = choice.session.session_id
        return choice


_SCHEDULERS: dict[str, Callable[[], RequestScheduler]] = {
    FifoScheduler.name: FifoScheduler,
    SjfScheduler.name: SjfScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
    FirstFinishScheduler.name: FirstFinishScheduler,
    PrefixAffinityScheduler.name: PrefixAffinityScheduler,
}


def list_schedulers() -> list[str]:
    """Registered scheduler policy names."""
    return sorted(_SCHEDULERS)


def scheduler_descriptions() -> dict[str, str]:
    """Policy name → one-line description (for the CLI listing)."""
    return {name: _SCHEDULERS[name].description for name in list_schedulers()}


def build_scheduler(name: str, **kwargs) -> RequestScheduler:
    """Instantiate a scheduler policy by registry name."""
    try:
        factory = _SCHEDULERS[name]
    except KeyError:
        from repro.utils.suggest import did_you_mean

        raise ConfigError(
            f"unknown scheduler {name!r}{did_you_mean(name, _SCHEDULERS)}; "
            f"registered: {', '.join(list_schedulers())}"
        ) from None
    return factory(**kwargs)
