"""SelectSPEC: speculative-candidate selection (paper Sec. 4.1.1).

When a beam finishes its step early and the waiting queue is empty, its
slot can speculate. Verifier scores between consecutive steps correlate, so
the *previous* step's score is a zero-overhead proxy for whether the search
will keep the beam — and therefore whether speculative work on its children
will be useful.

The policy partitions scores into ``B`` equal bins (``B`` = the search's
branching factor); a beam whose score lands in bin ``C_j`` (``C_1`` highest)
has speculative potential ``M_i = B - j + 1``: an upper bound on how many
child continuations it may pre-generate, and its scheduling priority. Slots
are filled lazily from the highest-potential finished beams.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["speculative_potential", "SpecCandidate", "SelectSpec"]

_DEFAULT_SCORE = 0.5  # first round has no verifier history: middle bin


def speculative_potential(score: float | None, branching_factor: int) -> int:
    """``M_i`` for a beam with previous-step ``score`` under ``B`` bins."""
    if branching_factor < 1:
        raise ValueError("branching_factor must be positive")
    s = _DEFAULT_SCORE if score is None else score
    if not 0.0 <= s <= 1.0:
        raise ValueError("scores live in [0, 1]")
    bin_j = min(branching_factor, int((1.0 - s) * branching_factor) + 1)
    return branching_factor - bin_j + 1


@dataclass(order=True)
class SpecCandidate:
    """One finished beam eligible for speculative extension.

    Heap-ordered by descending potential, then FIFO arrival for stability.
    """

    sort_index: tuple[int, int] = field(init=False, repr=False)
    lineage: tuple[int, ...] = field(compare=False)
    potential: int = field(compare=False)
    arrival: int = field(compare=False)
    branches_started: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.potential < 0:
            raise ValueError("potential must be non-negative")
        self.sort_index = (-self.potential, self.arrival)

    @property
    def exhausted(self) -> bool:
        return self.branches_started >= self.potential


class SelectSpec:
    """Priority allocator of freed slots to speculative branches."""

    def __init__(self, branching_factor: int) -> None:
        if branching_factor < 1:
            raise ValueError("branching_factor must be positive")
        self._branching = branching_factor
        self._heap: list[SpecCandidate] = []
        self._arrivals = 0

    @property
    def branching_factor(self) -> int:
        return self._branching

    def offer(self, lineage: tuple[int, ...], prev_score: float | None) -> SpecCandidate:
        """Register a newly finished beam as a speculative candidate."""
        candidate = SpecCandidate(
            lineage=lineage,
            potential=speculative_potential(prev_score, self._branching),
            arrival=self._arrivals,
        )
        self._arrivals += 1
        if not candidate.exhausted:
            heapq.heappush(self._heap, candidate)
        return candidate

    def next_branch(self) -> tuple[tuple[int, ...], int] | None:
        """Claim one speculative slot: ``(parent lineage, child index)``.

        Returns ``None`` when no candidate has remaining potential. The
        same parent can be drawn repeatedly up to its ``M_i``.
        """
        while self._heap:
            candidate = self._heap[0]
            if candidate.exhausted:
                heapq.heappop(self._heap)
                continue
            child_index = candidate.branches_started
            candidate.branches_started += 1
            if candidate.exhausted:
                heapq.heappop(self._heap)
            return candidate.lineage, child_index
        return None

    def __len__(self) -> int:
        return sum(1 for c in self._heap if not c.exhausted)
