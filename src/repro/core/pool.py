"""Multi-device serving: ``DevicePool`` lanes, placement policies, migration.

The fleet used to be hard-wired to one :class:`~repro.core.server.TTSServer`.
A :class:`DevicePool` generalizes that to N simulated devices, each a
:class:`PooledDevice` lane holding

* its own :class:`~repro.core.server.TTSServer` (the pool only requires a
  shared dataset and seed; model pairing, dtype, device spec and memory
  fraction are per-lane axes via :class:`~repro.routing.lanes.LaneSpec` —
  lanes of one *lane class*, same deployed pairing, are interchangeable
  for a session, and the router decides which class sees a request),
* its own :class:`~repro.engine.clock.SimClock` timeline (all lanes share
  one time origin, so lane times are directly comparable and the fleet can
  interleave them deterministically), and
* a per-device :class:`~repro.hardware.memory.KVLedger` that accounts the
  KV footprints of the sessions co-resident on that device. Interleaving
  schedulers pause sessions with KV still resident; when co-residents
  oversubscribe the budget, the ledger swaps the least-recently-run
  sessions to host memory and the fleet charges the PCIe time — closing
  the "paused KV is free" simplification flagged in the ROADMAP. With
  ``kv_sharing="prefix"`` the lane gets a
  :class:`~repro.hardware.memory.SharedKVLedger` instead: KV is
  accounted per *segment* against a lane-wide radix tree, so prefix
  bytes shared by co-resident sessions (racing replicas, same-problem
  requests) are billed once and swapped only in unique bytes.

Placement — *which device serves a new request* — is a policy axis
orthogonal to request scheduling (*which session gets the next round on a
device*). :class:`PlacementPolicy` implementations ship in a registry
mirroring the scheduler one (``first_fit``, ``least_loaded``,
``kv_balanced``, ``prefix_affinity``), and
:meth:`~repro.core.scheduler.RequestScheduler.choose_device` lets a
scheduler override the fleet's placement policy outright. Note that
``prefix_affinity`` names *two* policies on purpose: the scheduler of
that name (``--scheduler prefix_affinity``) orders the sessions already
resident on one lane so consecutive rounds share maximal KV prefixes,
while the placement of that name (``--placement prefix_affinity``,
:class:`PrefixAffinityPlacement`) decides which lane a request lands on
in the first place — it routes to the lane already holding the most of
the request's planned prefix bytes, with a least-loaded tie-break. Both
argmaxes go through :func:`~repro.core.prefix_sched.max_overlap_choice`
so the two notions of affinity cannot drift apart.

:meth:`DevicePool.migrate` moves a live session between lanes. On
whole-session ledgers its device-resident KV is written out over the
source link and its full footprint read back over the destination link;
when both lanes carry segment-granular shared ledgers the handoff is a
**delta-migration** instead — segments already resident at the
destination cross no link in either direction (they gain a refcount),
host-swapped segments skip the write-out, and only the remaining unique
bytes pay PCIe (the savings land in ``migration_bytes_saved``). Either
way the transfer is charged to the session's clock (migration is part of
serving that request) and to both lane timelines, the ledgers hand the
claims over transactionally, and the session's workers are rebuilt
against the destination roofline via
:meth:`~repro.core.session.SolveSession.rebind_device`.

A single-device pool with the fifo scheduler is byte-identical to the
pre-pool fleet (pinned by ``tests/goldens/fleet_fifo_goldens.json``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.server import TTSServer
from repro.engine.clock import SimClock
from repro.errors import ConfigError, FaultError, SchedulingError
from repro.hardware.memory import KVLedger, KVSegment, SharedKVLedger
from repro.hardware.offload import OffloadLink
from repro.utils.suggest import did_you_mean

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ServerConfig
    from repro.core.fleet import FleetRequest
    from repro.core.scheduler import SessionHandle
    from repro.routing.lanes import LaneSpec
    from repro.workloads.problem import Dataset

__all__ = [
    "LaneHealth",
    "PooledDevice",
    "DevicePool",
    "PlacementPolicy",
    "FirstFitPlacement",
    "LeastLoadedPlacement",
    "KvBalancedPlacement",
    "PrefixAffinityPlacement",
    "delta_transfer_bytes",
    "build_placement",
    "list_placements",
    "placement_descriptions",
]


class LaneHealth(Enum):
    """Lifecycle state of one pool lane.

    ``UP`` serves normally, ``DEGRADED`` serves with a handicap (scaled
    PCIe link and/or a shrunk KV budget), ``DOWN`` serves nothing — its
    resident KV is gone and placement must route around it until
    :meth:`PooledDevice.recover_lane` brings it back empty.
    """

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass
class PooledDevice:
    """One device lane of a :class:`DevicePool`.

    Owns the lane's server, clock and KV ledger, plus the load statistics
    placement policies read (maintained by the fleet as requests are
    placed and settled) and the migration/swap counters the per-device
    metrics rollup reports.
    """

    index: int
    server: TTSServer
    clock: SimClock = field(default=None)  # type: ignore[assignment]
    ledger: KVLedger = field(default=None)  # type: ignore[assignment]
    #: KV accounting granularity: ``"off"`` bills every co-resident
    #: session its full footprint (:class:`KVLedger`), ``"prefix"``
    #: dedups shared prefix segments across sessions
    #: (:class:`~repro.hardware.memory.SharedKVLedger`). Only consulted
    #: when the default ledger is built.
    kv_sharing: str = "off"
    #: Round coalescing: ``"off"`` serves one session's round at a time
    #: (time-slicing), ``"continuous"`` drives the lane through the
    #: fleet's :class:`~repro.core.batcher.RoundBatcher` — co-resident
    #: sessions' rounds run as one jointly-costed batch per iteration.
    batching: str = "off"
    # -- fleet-maintained load state (placement inputs) -------------------
    live_requests: int = 0
    planned_kv_bytes: int = 0
    #: Planned-claim refcounts of admitted-but-live requests: lane-tree
    #: node id → ``[refcount, claim bytes]``. Lets dedup-aware admission
    #: and ``prefix_affinity`` placement see a same-prefix *burst* —
    #: requests admitted back to back before any of them has registered
    #: real KV on the ledger. Maintained symmetrically by the fleet's
    #: place/release paths; empty on non-sharing lanes.
    planned_segments: dict[int, list[int]] = field(default_factory=dict)
    # -- rollup counters ---------------------------------------------------
    requests_served: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    kv_swap_s: float = 0.0
    #: Placement decisions that landed a request here, and how many of
    #: them found some of the request's planned prefix already on the
    #: lane (their ratio is the fleet's affinity hit ratio).
    placements: int = 0
    affinity_hits: int = 0
    #: Admission accounting on segment-granular lanes: full planned
    #: footprints versus the unique bytes actually billed after dedup.
    planned_admitted_bytes: int = 0
    unique_admitted_bytes: int = 0
    #: PCIe bytes delta-migration avoided moving (vs a full-footprint
    #: transfer), split per lane by transfer direction.
    migration_bytes_saved: int = 0
    #: Batched-iteration rollups (filled by the round batcher): how many
    #: generation sub-batches the lane launched, the total member rounds
    #: they contained, and the widest batch seen.
    batch_iterations: int = 0
    batch_member_rounds: int = 0
    batch_peak_occupancy: int = 0
    # -- fault state (driven by the fleet's fault injector) ----------------
    health: LaneHealth = LaneHealth.UP
    #: Multiplier on the lane's PCIe bandwidth (1.0 = nominal).
    link_scale: float = 1.0
    #: Current KV-budget shrink factor (1.0 = full budget).
    kv_pressure_fraction: float = 1.0
    #: Full KV capacity, remembered across pressure windows.
    kv_base_capacity: int | None = None
    failures: int = 0
    recoveries: int = 0
    downtime_s: float = 0.0
    failed_at_s: float | None = None
    stall_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kv_sharing not in ("off", "prefix"):
            raise ConfigError(
                f"kv_sharing must be 'off' or 'prefix', got {self.kv_sharing!r}"
            )
        if self.batching not in ("off", "continuous"):
            raise ConfigError(
                f"batching must be 'off' or 'continuous', got {self.batching!r}"
            )
        if self.clock is None:
            self.clock = SimClock(label=self.device_id)
        if self.ledger is None:
            ledger_cls = SharedKVLedger if self.kv_sharing == "prefix" else KVLedger
            self.ledger = ledger_cls(self.server.kv_budget_bytes)

    @property
    def device_id(self) -> str:
        """Stable lane identifier, e.g. ``"dev0:rtx4090"``.

        The ``dev{index}:`` prefix keeps ids unique even when several
        lanes share one device spec (``--devices rtx4090,rtx4090``).
        """
        return f"dev{self.index}:{self.spec.name}"

    @property
    def lane_class(self) -> str:
        """The deployed model pairing this lane serves, e.g.
        ``"qwen2.5-math-1.5b-int8+skywork-o1-prm-1.5b-int8"``.

        Lanes of one class are interchangeable for a session (same search
        results, :meth:`~repro.core.session.SolveSession.rebind_device`
        works between them); routing and per-class metrics key off this.
        """
        return f"{self.server.gen_model.name}+{self.server.ver_model.name}"

    @property
    def model_cost_bytes(self) -> int:
        """Deployed weight bytes of the lane's pairing — the routers' cost axis."""
        return self.server.gen_model.weight_bytes + self.server.ver_model.weight_bytes

    @property
    def spec(self):
        return self.server.device

    @property
    def link(self):
        if self.link_scale == 1.0:
            return self.server.link
        base = self.server.link
        return OffloadLink(
            device=replace(
                base.device,
                pcie_bandwidth=base.device.pcie_bandwidth * self.link_scale,
            ),
            fixed_latency=base.fixed_latency,
        )

    @property
    def kv_load_fraction(self) -> float:
        """Planned KV claims of live requests over the lane's KV budget."""
        return self.planned_kv_bytes / self.ledger.capacity_bytes

    # -- sharing-aware placement/admission probes --------------------------

    def prefix_overlap_bytes(self, claims: Sequence[KVSegment]) -> int:
        """Bytes of ``claims`` this lane holds or is committed to hold.

        The *guaranteed* overlap dedup-aware admission bills against: per
        claim, the larger of the ledger's resident copy and a co-admitted
        request's planned claim (:attr:`planned_segments`), never more
        than the claim itself. Zero on non-sharing lanes — whole-session
        ledgers cannot see segments, so billing stays full-footprint.
        """
        total = 0
        for claim in claims:
            held = self.ledger.resident_segment_bytes(claim.node_id)
            planned = self.planned_segments.get(claim.node_id)
            if planned is not None and planned[1] > held:
                held = planned[1]
            total += min(claim.num_bytes, held)
        return total

    def prefix_affinity_bytes(self, claims: Sequence[KVSegment]) -> int:
        """Affinity score of this lane for a request planning ``claims``.

        The *opportunistic* overlap ``prefix_affinity`` placement ranks
        lanes by: everything resident under each planned root's lane-tree
        subtree (same-problem canonical sessions re-derive identical step
        content, so their whole resident lineage is shareable), or a
        co-admitted request's still-pending planned claim when that is
        larger. A score, not a bill — admission uses the conservative
        :meth:`prefix_overlap_bytes` instead.
        """
        total = 0
        for claim in claims:
            held = self.ledger.resident_subtree_bytes(claim.node_id)
            planned = self.planned_segments.get(claim.node_id)
            if planned is not None and planned[1] > held:
                held = planned[1]
            total += held
        return total

    def note_planned_segments(self, claims: Sequence[KVSegment]) -> None:
        """Refcount a placed request's planned claims (burst dedup)."""
        for claim in claims:
            entry = self.planned_segments.setdefault(claim.node_id, [0, 0])
            entry[0] += 1
            if claim.num_bytes > entry[1]:
                entry[1] = claim.num_bytes

    def forget_planned_segments(self, claims: Sequence[KVSegment]) -> None:
        """Drop one placed request's planned-claim refcounts."""
        for claim in claims:
            entry = self.planned_segments.get(claim.node_id)
            if entry is None:
                continue
            entry[0] -= 1
            if entry[0] <= 0:
                del self.planned_segments[claim.node_id]

    # -- fault lifecycle ---------------------------------------------------

    @property
    def serving(self) -> bool:
        """Whether the lane can run or accept sessions (not DOWN)."""
        return self.health is not LaneHealth.DOWN

    def fail_lane(self, now: float | None = None) -> list[str]:
        """Kill the lane: mark it DOWN and drop every resident KV owner.

        The lane clock advances to the crash instant (a dead lane cannot
        be behind the failure it suffered); the ledger releases every
        owner — under a :class:`~repro.hardware.memory.SharedKVLedger`
        that walks the refcounted segment claims, so shared segments are
        freed exactly when their last co-resident owner dies. Returns the
        released owner ids so the fleet can map them back to requests.
        """
        if self.health is LaneHealth.DOWN:
            raise FaultError(f"lane {self.device_id} is already down")
        if now is not None:
            self.clock.advance_to(max(now, self.clock.now))
        self.health = LaneHealth.DOWN
        self.failures += 1
        self.failed_at_s = self.clock.now
        released = list(self.ledger.owners)
        for owner in released:
            self.ledger.release(owner)
        return released

    def recover_lane(self, now: float | None = None) -> None:
        """Bring a DOWN lane back UP, empty, at time ``now``.

        The repair window (``now - failed_at``) accrues to ``downtime_s``
        — the numerator of the fleet's MTTR metric. Degradations do not
        survive a rebuild: link scale and KV budget reset to nominal.
        """
        if self.health is not LaneHealth.DOWN:
            raise FaultError(
                f"lane {self.device_id} is {self.health.value}, not down"
            )
        if now is not None:
            self.clock.advance_to(max(now, self.clock.now))
        self.downtime_s += self.clock.now - self.failed_at_s
        self.recoveries += 1
        self.failed_at_s = None
        self.link_scale = 1.0
        if self.kv_pressure_fraction != 1.0:
            self.ledger.resize(self.kv_base_capacity)
            self.kv_pressure_fraction = 1.0
        self.health = LaneHealth.UP

    def stall(self, duration_s: float) -> None:
        """Freeze the lane for ``duration_s``: its clock jumps, work waits."""
        if duration_s <= 0:
            raise FaultError(f"stall duration must be > 0 (got {duration_s})")
        self.clock.advance(duration_s)
        self.stall_s += duration_s

    def degrade_link(self, factor: float) -> None:
        """Scale the lane's PCIe bandwidth by ``factor``."""
        if not 0.0 < factor <= 1.0:
            raise FaultError(f"link factor must be in (0, 1] (got {factor})")
        self.link_scale = factor
        self._refresh_health()

    def restore_link(self) -> None:
        """Return the PCIe link to nominal bandwidth."""
        self.link_scale = 1.0
        self._refresh_health()

    def apply_kv_pressure(self, fraction: float) -> list[tuple[str, int]]:
        """Shrink the KV budget to ``fraction`` of capacity; returns evictions.

        Resident KV above the shrunk budget is evicted immediately (LRU,
        shared segments by leaf frontier) — the eviction storm's PCIe
        write-out is the caller's to charge; victims pay their restores
        through the ordinary resume path.
        """
        if not 0.0 < fraction < 1.0:
            raise FaultError(f"kv fraction must be in (0, 1) (got {fraction})")
        if self.kv_base_capacity is None:
            self.kv_base_capacity = self.ledger.capacity_bytes
        evicted = self.ledger.resize(
            max(1, int(self.kv_base_capacity * fraction))
        )
        self.kv_pressure_fraction = fraction
        self._refresh_health()
        return evicted

    def relieve_kv_pressure(self) -> None:
        """Restore the full KV budget after a pressure window."""
        if self.kv_pressure_fraction == 1.0:
            return
        self.ledger.resize(self.kv_base_capacity)
        self.kv_pressure_fraction = 1.0
        self._refresh_health()

    def _refresh_health(self) -> None:
        if self.health is LaneHealth.DOWN:
            return
        degraded = self.link_scale != 1.0 or self.kv_pressure_fraction != 1.0
        self.health = LaneHealth.DEGRADED if degraded else LaneHealth.UP

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PooledDevice({self.device_id}, t={self.clock.now:.3f}, "
            f"live={self.live_requests}, health={self.health.value})"
        )


def delta_transfer_bytes(
    source: KVLedger, destination: KVLedger, claims: Sequence[KVSegment]
) -> tuple[int, int]:
    """PCIe bytes a delta-migration moves: ``(write_out, read_in)``.

    The conservation law the property tests pin: ``read_in`` equals the
    session's footprint (the claims' byte sum) minus the bytes already
    resident at the destination — shared segments cross no link.
    ``write_out`` is the subset of ``read_in`` resident on the *source*
    device; host-swapped segments already live in host memory, which the
    lanes share, so they skip the write-out but still pay the read-in.
    """
    out_bytes = in_bytes = 0
    for claim in claims:
        needed = claim.num_bytes - min(
            claim.num_bytes, destination.resident_segment_bytes(claim.node_id)
        )
        if not needed:
            continue
        in_bytes += needed
        if source.resident_segment_bytes(claim.node_id):
            out_bytes += needed
    return out_bytes, in_bytes


class DevicePool:
    """N simulated devices a fleet schedules sessions across.

    Build one from a shared config with :meth:`build` (one server per
    device name, identical models/dataset/seed), or from per-lane
    :class:`~repro.routing.lanes.LaneSpec`s (``lanes=``) for a
    *heterogeneous* pool — big-model lanes next to quantized small-model
    lanes — or hand in prepared :class:`PooledDevice` lanes. The pool only
    validates that every lane shares the seed and dataset: search results
    are content-keyed, so any lane of one *lane class* (same deployed
    pairing) serves a request identically, and the router decides which
    class sees it. Migration stays within a lane class
    (:meth:`migrate` refuses cross-class destinations).
    """

    def __init__(self, devices: Sequence[PooledDevice]) -> None:
        if not devices:
            raise ConfigError("a DevicePool needs at least one device")
        reference = devices[0].server
        for lane in devices[1:]:
            server = lane.server
            if (
                server.config.seed != reference.config.seed
                or server.dataset is not reference.dataset
            ):
                raise ConfigError(
                    "every pool device must share the seed and dataset so "
                    "answers stay content-keyed; models, dtypes and device "
                    "specs may differ per lane "
                    f"(lane {lane.device_id} disagrees with "
                    f"{devices[0].device_id})"
                )
        self._devices = tuple(devices)

    @classmethod
    def build(
        cls,
        config: "ServerConfig",
        dataset: "Dataset",
        device_names: Sequence[str] | None = None,
        kv_sharing: str = "off",
        batching: str = "off",
        lanes: "Sequence[LaneSpec] | None" = None,
    ) -> "DevicePool":
        """One lane per device name, servers sharing everything but the device.

        ``device_names=None`` builds the single-device pool of
        ``config.device_name`` — the exact pre-pool fleet.
        ``kv_sharing="prefix"`` gives every lane a
        :class:`~repro.hardware.memory.SharedKVLedger` that dedups
        prefix segments across co-resident sessions.
        ``batching="continuous"`` marks every lane for the fleet's
        :class:`~repro.core.batcher.RoundBatcher`, which coalesces
        co-resident sessions' rounds into jointly-costed batches.
        ``lanes=[LaneSpec(...), ...]`` builds a *heterogeneous* pool
        instead: each lane gets its own model pairing, device, dtype
        (via :func:`~repro.models.quantize.quantized`) and optional
        per-lane memory fraction, all anchored on ``config``'s seed and
        remaining knobs. Mutually exclusive with ``device_names``.
        """
        if lanes is not None:
            if device_names is not None:
                raise ConfigError(
                    "pass either lanes=[LaneSpec...] or device_names, not both"
                )
            if not lanes:
                raise ConfigError("lanes must not be empty")
            devices = []
            for index, spec in enumerate(lanes):
                overrides: dict[str, object] = {
                    "device_name": spec.device_name,
                    "model_config": spec.model_config,
                    "quantization": spec.dtype,
                }
                if spec.memory_fraction is not None:
                    overrides["memory_fraction"] = spec.memory_fraction
                devices.append(
                    PooledDevice(
                        index=index,
                        server=TTSServer(
                            config.with_overrides(**overrides), dataset
                        ),
                        kv_sharing=kv_sharing,
                        batching=batching,
                    )
                )
            return cls(devices)
        if device_names is None:
            names = [config.device_name]
        else:
            names = list(device_names)
            if not names:
                raise ConfigError("device_names must not be empty")
        devices = []
        for index, name in enumerate(names):
            lane_config = (
                config if name == config.device_name
                else config.with_overrides(device_name=name)
            )
            devices.append(
                PooledDevice(
                    index=index,
                    server=TTSServer(lane_config, dataset),
                    kv_sharing=kv_sharing,
                    batching=batching,
                )
            )
        return cls(devices)

    # -- container surface -------------------------------------------------

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self):
        return iter(self._devices)

    def __getitem__(self, index: int) -> PooledDevice:
        return self._devices[index]

    @property
    def devices(self) -> tuple[PooledDevice, ...]:
        return self._devices

    def device_by_id(self, device_id: str) -> PooledDevice:
        for lane in self._devices:
            if lane.device_id == device_id:
                return lane
        known = [lane.device_id for lane in self._devices]
        raise ConfigError(
            f"no pool device {device_id!r}{did_you_mean(device_id, known)}; "
            f"lanes: {', '.join(known)}"
        )

    # -- migration ---------------------------------------------------------

    def migrate(self, handle: "SessionHandle", destination: PooledDevice) -> float:
        """Hand a live session over to another lane; returns seconds charged.

        The session's device-resident KV is written out over the source
        PCIe link and its full KV read back over the destination link
        (host-swapped KV needs no source transfer — it already lives in
        host memory, which the lanes share). Both lane clocks advance —
        the destination cannot resume the session before the data lands —
        and the session's own clock is charged under the SWAP phase, so
        migration shows up in the request's latency breakdown. Ledgers
        hand the footprint over; if the destination must evict co-resident
        sessions to make room, those writes are charged too.

        Raises :class:`~repro.errors.CapacityError` (before charging
        anything) when the session's KV cannot fit the destination budget,
        and :class:`~repro.errors.SchedulingError` for dead sessions or
        lanes outside this pool.
        """
        source = handle.device
        if source is None:
            raise SchedulingError(
                "cannot migrate a handle not placed on any device "
                f"(destination {destination.device_id})"
            )
        if source not in self._devices or destination not in self._devices:
            raise SchedulingError(
                "migration source and destination must be pool lanes "
                f"(source {source.device_id}, destination "
                f"{destination.device_id})"
            )
        if destination is source:
            return 0.0
        if not destination.serving:
            raise SchedulingError(
                f"cannot migrate {handle.session.session_id} from "
                f"{source.device_id} to dead lane {destination.device_id}"
            )
        session = handle.session
        if not session.state.live:
            raise SchedulingError(
                f"cannot migrate {session.session_id} in state "
                f"{session.state.value} (source {source.device_id}, "
                f"destination {destination.device_id})"
            )
        if destination.lane_class != source.lane_class:
            # Refused before any ledger admission or clock advance: a
            # session's KV encodes one model pairing's geometry; moving it
            # across lane classes would silently change the request's
            # answer. Escalation re-places (and re-prefills) instead.
            raise SchedulingError(
                "cannot migrate a session between lane classes: "
                f"source {source.device_id} serves {source.lane_class}, "
                f"destination {destination.device_id} serves "
                f"{destination.lane_class}; escalate (re-place) the request "
                "instead of migrating its KV"
            )
        owner = session.session_id
        claims = (
            session.kv_segments()
            if source.ledger.segment_granular
            and destination.ledger.segment_granular
            else ()
        )
        if claims:
            # Delta-migration: only segments the destination does not
            # already hold resident cross the links, and only the
            # source-resident subset of those pays the write-out (the
            # rest already lives in shared host memory). Admission on
            # the destination ledger comes first and is transactional —
            # a refused or failed handoff must not have advanced any
            # clock or touched any refcount.
            total_bytes = sum(claim.num_bytes for claim in claims)
            out_bytes, in_bytes = delta_transfer_bytes(
                source.ledger, destination.ledger, claims
            )
            saved_out = source.ledger.resident_of(owner) - out_bytes
            saved_in = total_bytes - in_bytes
            evicted = destination.ledger.admit_segments(owner, claims)
        else:
            out_bytes = source.ledger.resident_of(owner)
            in_bytes = out_bytes + source.ledger.swapped_of(owner)
            if in_bytes == 0:
                # Untracked (or not yet started): fall back to the
                # session's own footprint, fully device-resident on the
                # source.
                out_bytes = in_bytes = session.resident_kv_bytes
            saved_out = saved_in = 0
            evicted = destination.ledger.admit(owner, in_bytes)
        source.ledger.release(owner)

        dt_out = source.link.transfer_time(out_bytes) if out_bytes else 0.0
        dt_in = destination.link.transfer_time(in_bytes) if in_bytes else 0.0
        dt_evict = sum(
            destination.link.transfer_time(num_bytes) for _, num_bytes in evicted
        )

        # The session's service so far ends at anchor + local time on the
        # source timeline; the write-out starts there (or now, if the lane
        # has moved past it serving others).
        departed = max(
            source.clock.now, handle.binding.anchor + session.clock.now
        ) + dt_out
        source.clock.advance_to(departed)
        arrived = max(destination.clock.now, departed) + dt_evict + dt_in
        destination.clock.advance_to(arrived)

        charged = dt_out + dt_evict + dt_in
        session.charge_kv_swap(charged)
        session.rebind_device(destination.server)
        handle.binding.rebind(destination.clock)
        handle.device = destination
        handle.kv_swap_s += charged

        source.migrations_out += 1
        destination.migrations_in += 1
        source.kv_swap_s += dt_out
        destination.kv_swap_s += dt_evict + dt_in
        source.migration_bytes_saved += saved_out
        destination.migration_bytes_saved += saved_in
        return charged


# -- placement policies ------------------------------------------------------


class PlacementPolicy(ABC):
    """Which pool device serves a newly admitted request.

    Policies see only lanes *eligible* for the request (devices whose
    allocator can plan its beam budget inside their KV budget; the fleet
    filters first) and must be deterministic functions of lane state.
    """

    name: str = "abstract"
    description: str = ""

    @abstractmethod
    def choose(
        self,
        request: "FleetRequest",
        devices: Sequence[PooledDevice],
        now: float,
    ) -> PooledDevice:
        """Pick the lane that will serve ``request`` (``devices`` is non-empty)."""


class FirstFitPlacement(PlacementPolicy):
    """Lowest-indexed eligible device — the single-device-compatible default.

    With one lane this degenerates to the pre-pool fleet exactly; with
    many it packs everything onto the first device that can plan the
    request, leaving the rest idle (a baseline for the balancing
    policies to beat).
    """

    name = "first_fit"
    description = "lowest-indexed device able to serve the request"

    def choose(self, request, devices, now):
        return min(devices, key=lambda lane: lane.index)


class LeastLoadedPlacement(PlacementPolicy):
    """Fewest live requests; ties go to the lane furthest behind in time.

    The classic join-the-shortest-queue heuristic: spreading arrivals
    across lanes drains the pool in parallel and cuts p95 sojourn versus
    any single device at the same arrival rate.
    """

    name = "least_loaded"
    description = "device with the fewest live requests (ties: earliest clock)"

    def choose(self, request, devices, now):
        return min(
            devices,
            key=lambda lane: (lane.live_requests, lane.clock.now, lane.index),
        )


class KvBalancedPlacement(PlacementPolicy):
    """Lowest planned-KV pressure relative to each lane's KV budget.

    Heterogeneous pools have unequal budgets: a 24 GB lane should absorb
    more KV-heavy requests than a 12 GB one before either starts swapping.
    Balancing the *fraction* (planned claims / budget) rather than raw
    bytes keeps both lanes equally far from their oversubscription cliff.
    """

    name = "kv_balanced"
    description = "device with the lowest planned-KV fraction of its budget"

    def choose(self, request, devices, now):
        return min(
            devices,
            key=lambda lane: (lane.kv_load_fraction, lane.live_requests, lane.index),
        )


class PrefixAffinityPlacement(PlacementPolicy):
    """Route to the lane already holding the most of the request's prefix.

    Scores each eligible lane by :meth:`PooledDevice.prefix_affinity_bytes`
    over the request's *planned* claims (the prompt-root segments both
    model caches would register at admission, per
    :func:`repro.core.session.planned_kv_segments`) — counting the whole
    resident lineage under those roots, since same-problem canonical
    sessions regenerate identical step KV. The argmax goes through the
    same :func:`repro.core.prefix_sched.max_overlap_choice` helper as the
    ``prefix_affinity`` *scheduler*, with a least-loaded tie-break so a
    sharing-free pool degenerates to :class:`LeastLoadedPlacement`.
    """

    name = "prefix_affinity"
    description = "device holding the most of the request's planned KV prefix (ties: least loaded)"

    def choose(self, request, devices, now):
        # Deferred imports: session/prefix_sched import pool's siblings.
        from repro.core.prefix_sched import max_overlap_choice
        from repro.core.session import planned_kv_segments

        return max_overlap_choice(
            devices,
            lambda lane: lane.prefix_affinity_bytes(
                planned_kv_segments(lane.server, request.problem)
            ),
            lambda lane: (lane.live_requests, lane.clock.now, lane.index),
        )


_PLACEMENTS: dict[str, Callable[[], PlacementPolicy]] = {
    FirstFitPlacement.name: FirstFitPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
    KvBalancedPlacement.name: KvBalancedPlacement,
    PrefixAffinityPlacement.name: PrefixAffinityPlacement,
}


def list_placements() -> list[str]:
    """Registered placement policy names."""
    return sorted(_PLACEMENTS)


def placement_descriptions() -> dict[str, str]:
    """Policy name → one-line description (for the CLI listing)."""
    return {name: _PLACEMENTS[name].description for name in list_placements()}


def build_placement(name: str, **kwargs) -> PlacementPolicy:
    """Instantiate a placement policy by registry name."""
    try:
        factory = _PLACEMENTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown placement {name!r}{did_you_mean(name, _PLACEMENTS)}; "
            f"registered: {', '.join(list_placements())}"
        ) from None
    return factory(**kwargs)
