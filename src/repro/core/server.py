"""The serving system: baseline vLLM-style and FastTTS in one loop.

``TTSServer`` executes the abstract verifier-guided search (Sec. 3.1) over
a simulated device. Every FastTTS optimization is a configuration switch
(see :mod:`repro.core.config`):

* ``speculation``      — Speculative Beam Extension inside the generation
  round, plus head-start adoption and R-truncation at branching (Alg. 1);
* ``prefix_aware``     — Dynamic Prefix-Aware Scheduling of generation and
  verification job order;
* ``asymmetric_alloc`` — Roofline-guided KV partitioning (vs a static
  50/50 split);
* ``lookahead``        — LookAhead Verification via the score cache;
* ``offload``          — the Sec. 4.3.2 dual strategy on tiny GPUs.

Because every stochastic quantity is keyed by *what* is generated, two
servers with different switches produce identical reasoning trees, scores,
selections and answers — only simulated time, memory traffic and
utilization differ. The test suite asserts this equivalence directly.

Migration note (the SolveSession redesign)
------------------------------------------
The solve loop itself lives in :class:`~repro.core.session.SolveSession`,
a resumable state machine that advances one generation-or-verification
round per :meth:`~repro.core.session.SolveSession.step`.
``TTSServer.solve``, ``run``, ``serve_stream`` and ``solve_detailed`` are
now thin wrappers that create a session and drive it to completion —
byte-identical to the pre-session monolithic loop (pinned by the goldens
under ``tests/goldens/``). Callers that want round-granular control —
fleet schedulers interleaving many requests on one device, cancellation,
pause/resume — use :meth:`TTSServer.session` directly.
"""

from __future__ import annotations

from repro.core.config import OffloadMode, ServerConfig
from repro.core.allocator import (
    AllocationPlan,
    RooflineAllocator,
    WorkloadProfile,
    static_split_plan,
)
from repro.core.session import (
    SolveOutcome,
    SolveSession,
    lookahead_worthy,
    path_segments,
    schedule_jobs,
)
from repro.errors import CapacityError
from repro.hardware.device import get_device
from repro.hardware.memory import MemoryLedger
from repro.hardware.offload import OffloadLink
from repro.hardware.roofline import Roofline
from repro.llm.generator import SimulatedGenerator
from repro.llm.verifier import SimulatedPRM
from repro.metrics.report import ProblemRunResult
from repro.models.spec import ModelSpec
from repro.models.zoo import model_pair
from repro.search.base import SearchAlgorithm
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Dataset, Problem

__all__ = ["TTSServer", "SolveOutcome"]


class TTSServer:
    """One serving-system instance bound to a device, model pair, dataset.

    The server owns everything *shared across requests* — models, cost
    models, the keyed RNG, the memory budget. Per-request execution state
    lives on :class:`~repro.core.session.SolveSession` objects created by
    :meth:`session`, so any number of solves can be in flight (interleaved
    round-by-round) on one server.
    """

    def __init__(self, config: ServerConfig, dataset: Dataset) -> None:
        self._config = config
        self._dataset = dataset
        self._device = get_device(config.device_name)
        generator_model, verifier_model = model_pair(config.model_config)
        if config.quantization is not None:
            from repro.models.quantize import quantized

            generator_model = quantized(generator_model, config.quantization)
            verifier_model = quantized(verifier_model, config.quantization)
        self._gen_model = generator_model
        self._ver_model = verifier_model
        self._roofline = Roofline(self._device, config.efficiency)
        self._link = OffloadLink(self._device)
        self._rng = KeyedRng(config.seed)
        self._generator = SimulatedGenerator(generator_model, dataset, self._rng)
        self._prm = SimulatedPRM(verifier_model, self._generator.oracle, self._rng)

        budget = int(self._device.usable_bytes * config.memory_fraction)
        weights = generator_model.weight_bytes + verifier_model.weight_bytes
        if weights >= budget:
            raise CapacityError(
                f"model weights ({weights} B) exceed the memory budget "
                f"({budget} B) on {self._device.name}"
            )
        self._ledger = MemoryLedger(self._device)
        self._ledger.reserve("generator", "weights", generator_model.weight_bytes)
        self._ledger.reserve("verifier", "weights", verifier_model.weight_bytes)
        self._kv_budget = budget - weights

        # The most recent session this server ran to completion, kept for
        # debugging and the plan-cache introspection tests.
        self._last_session: SolveSession | None = None

    # -- public surface ------------------------------------------------

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def kv_budget_bytes(self) -> int:
        return self._kv_budget

    @property
    def device(self):
        """The :class:`~repro.hardware.device.DeviceSpec` this server runs on."""
        return self._device

    @property
    def gen_model(self) -> ModelSpec:
        return self._gen_model

    @property
    def ver_model(self) -> ModelSpec:
        return self._ver_model

    @property
    def roofline(self) -> Roofline:
        return self._roofline

    @property
    def link(self) -> OffloadLink:
        return self._link

    @property
    def rng(self) -> KeyedRng:
        return self._rng

    @property
    def generator(self) -> SimulatedGenerator:
        return self._generator

    @property
    def prm(self) -> SimulatedPRM:
        return self._prm

    def plan_allocation(self, n: int) -> AllocationPlan:
        """The memory plan this server would use for a beam budget ``n``."""
        profile = WorkloadProfile.from_dataset(self._dataset, n)
        if self._config.asymmetric_alloc:
            allocator = RooflineAllocator(
                self._ver_model, self._gen_model, self._roofline, self._link
            )
            allow = self._config.offload is not OffloadMode.OFF
            plan = allocator.best_plan(profile, self._kv_budget, allow_offload=allow)
            if self._config.offload is OffloadMode.FORCE:
                plan = allocator.search_offload(profile, self._kv_budget)
            return plan
        plan = static_split_plan(
            self._ver_model, self._gen_model, self._roofline, profile, self._kv_budget
        )
        if self._config.offload is OffloadMode.FORCE:
            allocator = RooflineAllocator(
                self._ver_model, self._gen_model, self._roofline, self._link
            )
            return allocator.search_offload(profile, self._kv_budget)
        return plan

    # -- session factory --------------------------------------------------

    def session(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] = (),
        trace: bool = False,
        rng: KeyedRng | None = None,
        session_id: str | None = None,
    ) -> SolveSession:
        """Create a resumable :class:`SolveSession` for one request.

        The caller drives it with ``step()`` (round-granular) or ``run()``
        (to completion). Sessions are independent: many can interleave on
        one server without sharing any mutable state.
        """
        return SolveSession(
            self, problem, algorithm,
            arrivals=arrivals, trace=trace, rng=rng, session_id=session_id,
        )

    # -- run-to-completion wrappers ---------------------------------------

    def solve(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] = (),
    ) -> ProblemRunResult:
        """Solve one problem; returns the paper's per-request metrics."""
        return self.solve_detailed(problem, algorithm, arrivals=arrivals).result

    def run(
        self, problems: list[Problem], algorithm: SearchAlgorithm
    ) -> list[ProblemRunResult]:
        """Solve a list of problems sequentially (batch size 1, Sec. 6.1)."""
        return [self.solve(p, algorithm) for p in problems]

    def serve_stream(
        self,
        problems: list[Problem],
        algorithm: SearchAlgorithm,
        inter_arrival_s: float,
    ) -> list[ProblemRunResult]:
        """Serve a request stream with fixed inter-arrival times.

        Requests are served one at a time (interactive edge scenario), but
        an arrival landing *during* a solve preempts Phase 2: speculative
        generation halts immediately so the running request finishes with
        minimal residual work (Sec. 4.1.2's preemptible design). Returns
        per-request results in arrival order.

        For arbitrary arrival processes, admission control and non-FIFO
        scheduling, use :class:`~repro.core.fleet.TTSFleet` instead.
        """
        if inter_arrival_s < 0:
            raise ValueError("inter_arrival_s must be non-negative")
        results: list[ProblemRunResult] = []
        finished_at = 0.0
        for index, problem in enumerate(problems):
            next_arrival = (index + 1) * inter_arrival_s
            # Arrival expressed on this solve's clock (which starts at 0
            # when the request begins service).
            start = max(finished_at, index * inter_arrival_s)
            relative = next_arrival - start
            arrivals = (relative,) if index + 1 < len(problems) else ()
            result = self.solve(problem, algorithm, arrivals=arrivals)
            finished_at = start + result.latency.total
            results.append(result)
        return results

    def solve_detailed(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] = (),
        trace: bool = False,
    ) -> SolveOutcome:
        """Full solve with access to collected paths and the memory plan.

        ``arrivals`` are times (on this request's clock) at which a new
        request shows up; speculative execution is preempted from the first
        arrival onward, exactly like the two-phase scheduler's Phase-2
        preemption. ``trace=True`` records a round-level JSONL-able event
        log (the artifact's log format) on the returned outcome.

        This is a thin wrapper: it creates a :class:`SolveSession` and
        steps it to completion.
        """
        session = self.session(problem, algorithm, arrivals=arrivals, trace=trace)
        self._last_session = session
        return session.run()

    # -- policy shims ------------------------------------------------------
    # The scheduling/naming policies themselves live in
    # :mod:`repro.core.session`; these instance methods bind them to this
    # server's config and RNG for callers (and tests) that poke at policy
    # behaviour without building a session.

    def _path_segments(
        self, problem: Problem, lineage: tuple[int, ...], steps_done: int
    ) -> tuple[int, ...]:
        return path_segments(self._config, problem, lineage, steps_done)

    def _schedule(self, problem: Problem, jobs: list, round_idx: int, stage: str) -> list:
        return schedule_jobs(self._config, self._rng, problem, jobs, round_idx, stage)

    @staticmethod
    def _lookahead_worthy(path: ReasoningPath, algorithm: SearchAlgorithm) -> bool:
        return lookahead_worthy(path, algorithm)

    @property
    def _plan_cache(self):
        """Step-plan memo of the most recent completed solve (tests only)."""
        if self._last_session is None:
            return {}
        return self._last_session.plan_cache
