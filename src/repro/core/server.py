"""The serving system: baseline vLLM-style and FastTTS in one loop.

``TTSServer`` executes the abstract verifier-guided search (Sec. 3.1) over
a simulated device. Every FastTTS optimization is a configuration switch
(see :mod:`repro.core.config`):

* ``speculation``      — Speculative Beam Extension inside the generation
  round, plus head-start adoption and R-truncation at branching (Alg. 1);
* ``prefix_aware``     — Dynamic Prefix-Aware Scheduling of generation and
  verification job order;
* ``asymmetric_alloc`` — Roofline-guided KV partitioning (vs a static
  50/50 split);
* ``lookahead``        — LookAhead Verification via the score cache;
* ``offload``          — the Sec. 4.3.2 dual strategy on tiny GPUs.

Because every stochastic quantity is keyed by *what* is generated, two
servers with different switches produce identical reasoning trees, scores,
selections and answers — only simulated time, memory traffic and
utilization differ. The test suite asserts this equivalence directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocator import (
    AllocationPlan,
    RooflineAllocator,
    WorkloadProfile,
    static_split_plan,
)
from repro.core.config import OffloadMode, ServerConfig
from repro.core.generation_round import ChildStepPlan, GenerationRound
from repro.core.prefix_sched import lineage_order, random_order
from repro.core.spec_select import speculative_potential
from repro.core.verification_round import VerificationRound
from repro.engine.clock import SimClock
from repro.engine.jobs import GenJob, VerifyJob
from repro.engine.telemetry import Phase, PhaseTimer, TokenCounters, UtilizationTracker
from repro.engine.tracing import SolveTrace
from repro.engine.worker import GeneratorWorker, VerifierWorker
from repro.errors import CapacityError
from repro.hardware.device import get_device
from repro.hardware.memory import MemoryLedger
from repro.hardware.offload import OffloadLink
from repro.hardware.roofline import Roofline
from repro.kvcache.cache import PagedKVCache
from repro.llm.generator import SimulatedGenerator, StepPlan
from repro.llm.verifier import SimulatedPRM
from repro.metrics.goodput import BeamRecord
from repro.metrics.latency import LatencyBreakdown
from repro.metrics.report import ProblemRunResult
from repro.models.zoo import model_pair
from repro.search.base import SearchAlgorithm
from repro.search.tree import ReasoningPath, prompt_segment_id, step_segment_id
from repro.utils.rng import KeyedRng, stable_hash64
from repro.workloads.problem import Dataset, Problem

__all__ = ["TTSServer", "SolveOutcome"]

_TRUNCATION_STD = 0.05  # spread of the R-truncation draw (Alg. 1, line 19)


@dataclass(frozen=True, slots=True)
class SolveOutcome:
    """Low-level solve artifacts, for tests and deep-dive benches."""

    result: ProblemRunResult
    collected: tuple[ReasoningPath, ...]
    plan: AllocationPlan
    trace: "SolveTrace | None" = None


class TTSServer:
    """One serving-system instance bound to a device, model pair, dataset."""

    def __init__(self, config: ServerConfig, dataset: Dataset) -> None:
        self._config = config
        self._dataset = dataset
        self._device = get_device(config.device_name)
        generator_model, verifier_model = model_pair(config.model_config)
        if config.quantization is not None:
            from repro.models.quantize import quantized

            generator_model = quantized(generator_model, config.quantization)
            verifier_model = quantized(verifier_model, config.quantization)
        self._gen_model = generator_model
        self._ver_model = verifier_model
        self._roofline = Roofline(self._device, config.efficiency)
        self._link = OffloadLink(self._device)
        self._rng = KeyedRng(config.seed)
        self._generator = SimulatedGenerator(generator_model, dataset, self._rng)
        self._prm = SimulatedPRM(verifier_model, self._generator.oracle, self._rng)

        budget = int(self._device.usable_bytes * config.memory_fraction)
        weights = generator_model.weight_bytes + verifier_model.weight_bytes
        if weights >= budget:
            raise CapacityError(
                f"model weights ({weights} B) exceed the memory budget "
                f"({budget} B) on {self._device.name}"
            )
        self._ledger = MemoryLedger(self._device)
        self._ledger.reserve("generator", "weights", generator_model.weight_bytes)
        self._ledger.reserve("verifier", "weights", verifier_model.weight_bytes)
        self._kv_budget = budget - weights

        # Per-solve state, created in _setup().
        self._clock = SimClock()
        self._timer = PhaseTimer()
        self._util = UtilizationTracker()
        self._plan: AllocationPlan | None = None
        self._gen_worker: GeneratorWorker | None = None
        self._ver_worker: VerifierWorker | None = None
        self._active_model: str = "generator"
        self._plan_cache: dict[tuple[tuple[int, ...], int], StepPlan] = {}
        self._trace: SolveTrace | None = None

    # -- public surface ------------------------------------------------

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def kv_budget_bytes(self) -> int:
        return self._kv_budget

    def plan_allocation(self, n: int) -> AllocationPlan:
        """The memory plan this server would use for a beam budget ``n``."""
        profile = WorkloadProfile.from_dataset(self._dataset, n)
        if self._config.asymmetric_alloc:
            allocator = RooflineAllocator(
                self._ver_model, self._gen_model, self._roofline, self._link
            )
            allow = self._config.offload is not OffloadMode.OFF
            plan = allocator.best_plan(profile, self._kv_budget, allow_offload=allow)
            if self._config.offload is OffloadMode.FORCE:
                plan = allocator.search_offload(profile, self._kv_budget)
            return plan
        plan = static_split_plan(
            self._ver_model, self._gen_model, self._roofline, profile, self._kv_budget
        )
        if self._config.offload is OffloadMode.FORCE:
            allocator = RooflineAllocator(
                self._ver_model, self._gen_model, self._roofline, self._link
            )
            return allocator.search_offload(profile, self._kv_budget)
        return plan

    def solve(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] = (),
    ) -> ProblemRunResult:
        """Solve one problem; returns the paper's per-request metrics."""
        return self.solve_detailed(problem, algorithm, arrivals=arrivals).result

    def run(
        self, problems: list[Problem], algorithm: SearchAlgorithm
    ) -> list[ProblemRunResult]:
        """Solve a list of problems sequentially (batch size 1, Sec. 6.1)."""
        return [self.solve(p, algorithm) for p in problems]

    def serve_stream(
        self,
        problems: list[Problem],
        algorithm: SearchAlgorithm,
        inter_arrival_s: float,
    ) -> list[ProblemRunResult]:
        """Serve a request stream with fixed inter-arrival times.

        Requests are served one at a time (interactive edge scenario), but
        an arrival landing *during* a solve preempts Phase 2: speculative
        generation halts immediately so the running request finishes with
        minimal residual work (Sec. 4.1.2's preemptible design). Returns
        per-request results in arrival order.
        """
        if inter_arrival_s < 0:
            raise ValueError("inter_arrival_s must be non-negative")
        results: list[ProblemRunResult] = []
        finished_at = 0.0
        for index, problem in enumerate(problems):
            next_arrival = (index + 1) * inter_arrival_s
            # Arrival expressed on this solve's clock (which starts at 0
            # when the request begins service).
            start = max(finished_at, index * inter_arrival_s)
            relative = next_arrival - start
            arrivals = (relative,) if index + 1 < len(problems) else ()
            result = self.solve(problem, algorithm, arrivals=arrivals)
            finished_at = start + result.latency.total
            results.append(result)
        return results

    # -- the serving loop ------------------------------------------------

    def solve_detailed(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] = (),
        trace: bool = False,
    ) -> SolveOutcome:
        """Full solve with access to collected paths and the memory plan.

        ``arrivals`` are times (on this request's clock) at which a new
        request shows up; speculative execution is preempted from the first
        arrival onward, exactly like the two-phase scheduler's Phase-2
        preemption. ``trace=True`` records a round-level JSONL-able event
        log (the artifact's log format) on the returned outcome.
        """
        cfg = self._config
        plan = self.plan_allocation(algorithm.n)
        gen_cache, ver_cache = self._setup(problem, plan)
        self._trace = SolveTrace(problem.problem_id) if trace else None
        counters = TokenCounters()
        score_cache: dict[tuple[tuple[int, ...], int], float] = {}
        heads_kept: dict[tuple[int, ...], int] = {}
        collected: list[ReasoningPath] = []

        slot_budget = min(plan.b_dec, cfg.max_slots)
        batch_pre = min(plan.b_pre, cfg.max_slots)
        active = [ReasoningPath(lineage=(i,)) for i in range(algorithm.initial_width())]

        round_idx = 0
        while active and round_idx < self._dataset.max_steps:
            plans = {
                path.lineage: self._plan_step(
                    problem, path.lineage, round_idx, algorithm.step_cap(round_idx)
                )
                for path in active
            }
            jobs = [
                self._gen_job(problem, path, plans[path.lineage], round_idx, heads_kept)
                for path in active
            ]
            jobs = self._schedule(problem, jobs, round_idx, "gen")

            self._swap_to("generator")
            gen_round = GenerationRound(
                worker=self._gen_worker,
                slot_budget=slot_budget,
                speculation=cfg.speculation,
                branching_factor=algorithm.branching_factor,
                child_planner=(
                    self._child_planner(problem, plans, round_idx, algorithm)
                    if cfg.speculation
                    else None
                ),
                preempt_check=self._arrival_preemption(arrivals),
                spec_bandwidth_fraction=cfg.spec_bandwidth_fraction,
            )
            gen_result = gen_round.run(jobs)
            counters.recomputed += gen_result.stats.recomputed_tokens
            counters.committed += gen_result.stats.decoded_tokens
            if self._trace is not None:
                self._trace.record(
                    self._clock.now, "generation_round", round_idx,
                    active_beams=len(active),
                    decoded_tokens=gen_result.stats.decoded_tokens,
                    speculative_tokens=gen_result.stats.speculative_tokens,
                    recomputed_tokens=gen_result.stats.recomputed_tokens,
                    round_time=round(gen_result.stats.round_time, 6),
                    head_starts=len(gen_result.head_starts),
                )
            if not cfg.prefix_caching:
                # No automatic prefix caching: KV dies with the engine call,
                # exactly like the search-and-learn-on-vLLM baseline.
                gen_cache.evict_all(now=self._clock.now)

            for path in active:
                step = plans[path.lineage]
                path.record_step(step.n_tokens, step.soundness)

            if algorithm.verifies_steps:
                self._verify_active(
                    problem, active, plans, gen_result, round_idx,
                    batch_pre, score_cache, algorithm,
                )

            survivors: list[ReasoningPath] = []
            for path in active:
                if plans[path.lineage].is_terminal:
                    self._finalize_path(problem, path, gen_result)
                    collected.append(path)
                else:
                    survivors.append(path)
            if not survivors:
                break

            decision = algorithm.select(survivors, round_idx, self._rng.fork("select"))
            if self._trace is not None:
                self._trace.record(
                    self._clock.now, "selection", round_idx,
                    survivors=len(survivors),
                    kept=len(decision.expansions),
                    children=decision.total_children,
                )
            active = self._expand(
                problem, decision, gen_result, round_idx,
                algorithm, heads_kept, counters, gen_cache,
            )
            round_idx += 1

        if not algorithm.verifies_steps and collected:
            self._final_scoring(problem, collected, batch_pre)

        result = self._build_result(problem, algorithm, collected, counters,
                                    gen_cache, ver_cache)
        return SolveOutcome(
            result=result, collected=tuple(collected), plan=plan, trace=self._trace
        )

    # -- setup -------------------------------------------------------------

    def _setup(
        self, problem: Problem, plan: AllocationPlan
    ) -> tuple[PagedKVCache, PagedKVCache]:
        """Fresh per-problem clocks, caches and workers.

        Problems never share prefixes, so a real system's cache would churn
        out the previous problem anyway; resetting keeps runs independent.
        """
        cfg = self._config
        self._clock = SimClock()
        self._timer = PhaseTimer()
        self._util = UtilizationTracker()
        self._plan = plan
        self._plan_cache = {}
        self._active_model = "generator"
        gen_cache = PagedKVCache(
            plan.kv_dec_bytes, self._gen_model.kv_bytes_per_token, cfg.block_tokens
        )
        ver_cache = PagedKVCache(
            plan.kv_pre_bytes, self._ver_model.kv_bytes_per_token, cfg.block_tokens
        )
        root = prompt_segment_id(problem)
        gen_cache.register_segment(root, None, problem.prompt_tokens)
        ver_cache.register_segment(root, None, problem.prompt_tokens)
        self._gen_worker = GeneratorWorker(
            self._gen_model, self._roofline, gen_cache, self._clock,
            self._timer, self._util,
        )
        self._ver_worker = VerifierWorker(
            self._ver_model, self._roofline, ver_cache, self._clock,
            self._timer, self._util,
        )
        return gen_cache, ver_cache

    # -- segment naming --------------------------------------------------

    def _path_segments(
        self, problem: Problem, lineage: tuple[int, ...], steps_done: int
    ) -> tuple[int, ...]:
        """KV segment ids for a path's prompt + generated steps.

        With prefix caching, ids derive from lineage *prefixes*, so
        ancestors and siblings share segments (vLLM automatic prefix
        caching / native fork). Without it, ids derive from the *full*
        lineage: every sequence owns private copies, is re-prefilled from
        scratch each engine call, and occupies un-deduplicated memory —
        the search-and-learn-on-vLLM baseline.
        """
        if self._config.prefix_caching:
            segments = [prompt_segment_id(problem)]
            segments.extend(
                step_segment_id(problem, lineage, i) for i in range(steps_done)
            )
            return tuple(segments)
        segments = [stable_hash64("private-prompt", problem.problem_id, lineage)]
        segments.extend(
            stable_hash64("private-segment", problem.problem_id, lineage, i)
            for i in range(steps_done)
        )
        return tuple(segments)

    # -- step planning -------------------------------------------------

    def _plan_step(
        self,
        problem: Problem,
        lineage: tuple[int, ...],
        step_idx: int,
        cap: int | None,
    ) -> StepPlan:
        key = (lineage, step_idx)
        cached = self._plan_cache.get(key)
        if cached is None:
            cached = self._generator.plan_step(problem, lineage, step_idx, cap)
            self._plan_cache[key] = cached
        return cached

    def _schedule(self, problem: Problem, jobs: list, round_idx: int, stage: str) -> list:
        """Order a round's jobs per the scheduling policy.

        Prefix-aware scheduling groups siblings while preserving parent
        order (Sec. 4.2). The naive policy is a keyed shuffle: under vLLM's
        FCFS scheduler, beams arrive in completion order of the previous
        iteration, which scatters tree-adjacent beams (the paper's Fig. 5
        right heatmap). The shuffle changes execution order only — all
        draws are keyed, so search results are untouched.
        """
        if self._config.prefix_aware:
            return lineage_order(jobs, lambda j: j.lineage)
        return random_order(
            jobs,
            self._rng.fork("naive-order", problem.problem_id, stage),
            salt=round_idx,
        )

    def _new_segment(
        self, problem: Problem, lineage: tuple[int, ...], step_idx: int
    ) -> int:
        if self._config.prefix_caching:
            return step_segment_id(problem, lineage, step_idx)
        return stable_hash64("private-segment", problem.problem_id, lineage, step_idx)

    def _gen_job(
        self,
        problem: Problem,
        path: ReasoningPath,
        step: StepPlan,
        round_idx: int,
        heads_kept: dict[tuple[int, ...], int],
    ) -> GenJob:
        head = min(heads_kept.pop(path.lineage, 0), step.n_tokens)
        segments = self._path_segments(problem, path.lineage, path.steps_done)
        tokens = (problem.prompt_tokens, *path.step_tokens)
        return GenJob(
            lineage=path.lineage,
            path_segments=segments,
            path_segment_tokens=tokens,
            new_segment=self._new_segment(problem, path.lineage, round_idx),
            step_tokens=step.n_tokens,
            head_start=head,
            prev_score=path.last_score,
        )

    def _child_planner(
        self,
        problem: Problem,
        plans: dict[tuple[int, ...], StepPlan],
        round_idx: int,
        algorithm: SearchAlgorithm,
    ):
        """Closure resolving speculative branches to child step identities."""
        next_cap = algorithm.step_cap(round_idx + 1)

        def planner(
            parent_lineage: tuple[int, ...], child_index: int
        ) -> ChildStepPlan | None:
            parent_plan = plans.get(parent_lineage)
            if parent_plan is None or parent_plan.is_terminal:
                return None
            if round_idx + 1 >= self._dataset.max_steps:
                return None
            child_lineage = parent_lineage + (child_index,)
            child_step = self._plan_step(problem, child_lineage, round_idx + 1, next_cap)
            return ChildStepPlan(
                child_lineage=child_lineage,
                segment_id=step_segment_id(problem, child_lineage, round_idx + 1),
                parent_leaf_segment=step_segment_id(problem, parent_lineage, round_idx),
                n_tokens=child_step.n_tokens,
            )

        return planner

    # -- verification ----------------------------------------------------

    def _verify_active(
        self,
        problem: Problem,
        active: list[ReasoningPath],
        plans: dict[tuple[int, ...], StepPlan],
        gen_result,
        round_idx: int,
        batch_pre: int,
        score_cache: dict[tuple[tuple[int, ...], int], float],
        algorithm: SearchAlgorithm,
    ) -> None:
        cfg = self._config
        self._swap_to("verifier")
        vjobs = []
        for path in active:
            vjobs.append(
                self._verify_job(problem, path, plans, gen_result, round_idx, algorithm)
            )
        vjobs = self._schedule(problem, vjobs, round_idx, "verify")
        verification = VerificationRound(
            self._ver_worker, self._prm, batch_pre, lookahead=cfg.lookahead
        )
        cached_scores = sum(
            1 for job in vjobs if (job.lineage, job.step_idx) in score_cache
        )
        ver_result = verification.run(problem, vjobs, score_cache)
        score_cache.update(ver_result.lookahead_scores)
        for path in active:
            path.record_score(ver_result.scores[path.lineage])
        if self._trace is not None:
            self._trace.record(
                self._clock.now, "verification_round", round_idx,
                jobs=len(vjobs),
                prefilled_tokens=ver_result.stats.prefilled_tokens,
                cache_hit_tokens=ver_result.stats.cache_hit_tokens,
                lookahead_scores=len(ver_result.lookahead_scores),
                cached_scores=cached_scores,
            )
        if not cfg.prefix_caching:
            self._ver_worker.cache.evict_all(now=self._clock.now)

    def _verify_job(
        self,
        problem: Problem,
        path: ReasoningPath,
        plans: dict[tuple[int, ...], StepPlan],
        gen_result,
        round_idx: int,
        algorithm: SearchAlgorithm,
    ) -> VerifyJob:
        # path already recorded this round's step: last segment is the new one.
        all_segments = self._path_segments(problem, path.lineage, path.steps_done)
        all_tokens = (problem.prompt_tokens, *path.step_tokens)
        job_kwargs = dict(
            lineage=path.lineage,
            step_idx=round_idx,
            path_segments=all_segments[:-1],
            path_segment_tokens=all_tokens[:-1],
            new_segment=all_segments[-1],
            new_tokens=path.step_tokens[-1],
            mean_soundness=path.mean_soundness,
        )
        step = plans[path.lineage]
        if self._config.lookahead and not step.is_terminal and self._lookahead_worthy(path, algorithm):
            child_lineage = path.lineage + (0,)
            head = gen_result.head_starts.get(child_lineage)
            if head is not None and round_idx + 1 < self._dataset.max_steps:
                child_step = self._plan_step(
                    problem, child_lineage, round_idx + 1,
                    algorithm.step_cap(round_idx + 1),
                )
                if head.tokens >= child_step.n_tokens:
                    soundness = path.soundness + [child_step.soundness]
                    job_kwargs.update(
                        lookahead_child=child_lineage,
                        lookahead_segment=head.segment_id,
                        lookahead_tokens=child_step.n_tokens,
                        lookahead_soundness=sum(soundness) / len(soundness),
                    )
        return VerifyJob(**job_kwargs)

    def _arrival_preemption(self, arrivals: tuple[float, ...]):
        """Preemption hook: True once any queued arrival time has passed."""
        if not arrivals:
            return None
        first = min(arrivals)

        def check() -> bool:
            return self._clock.now >= first

        return check

    @staticmethod
    def _lookahead_worthy(path: ReasoningPath, algorithm: SearchAlgorithm) -> bool:
        """Gate LookAhead Verification by speculative potential.

        Pre-verifying a speculated step only pays off if the search keeps
        the beam; for beams outside the top score bin the extra verifier
        prefill (expensive for a 7B PRM) is usually wasted. The gate reuses
        SelectSPEC's zero-overhead proxy: previous-step score in bin C1.
        """
        potential = speculative_potential(path.last_score, algorithm.branching_factor)
        return potential == algorithm.branching_factor

    # -- expansion ---------------------------------------------------------

    def _expand(
        self,
        problem: Problem,
        decision,
        gen_result,
        round_idx: int,
        algorithm: SearchAlgorithm,
        heads_kept: dict[tuple[int, ...], int],
        counters: TokenCounters,
        gen_cache: PagedKVCache,
    ) -> list[ReasoningPath]:
        new_active: list[ReasoningPath] = []
        adopted: set[tuple[int, ...]] = set()
        for expansion in decision.expansions:
            for child_index in range(expansion.n_children):
                child = expansion.path.make_child(child_index)
                head = gen_result.head_starts.get(child.lineage)
                if head is not None:
                    kept = self._truncate_head(problem, child.lineage,
                                               child_index, head.tokens)
                    if kept < head.tokens:
                        gen_cache.truncate_segment(
                            head.segment_id, kept, now=self._clock.now
                        )
                    if kept > 0:
                        heads_kept[child.lineage] = kept
                    counters.speculative_used += kept
                    counters.speculative_wasted += head.tokens - kept
                    adopted.add(child.lineage)
                new_active.append(child)
        for lineage, head in gen_result.head_starts.items():
            if lineage not in adopted:
                counters.speculative_wasted += head.tokens
        return new_active

    def _truncate_head(
        self,
        problem: Problem,
        child_lineage: tuple[int, ...],
        child_index: int,
        head_tokens: int,
    ) -> int:
        """Alg. 1 line 19: the original keeps all, duplicates keep ~R."""
        if child_index == 0:
            return head_tokens
        fraction = self._rng.normal(
            "spec-truncation",
            problem.problem_id,
            child_lineage,
            loc=self._config.spec_truncation_ratio,
            scale=_TRUNCATION_STD,
        )
        fraction = min(1.0, max(0.0, fraction))
        return int(round(fraction * head_tokens))

    # -- termination -------------------------------------------------------

    def _finalize_path(self, problem: Problem, path: ReasoningPath, gen_result) -> None:
        path.terminal = True
        outcome = gen_result.outcomes[path.lineage]
        path.completion_time = outcome.finish_time
        correct, answer = self._generator.final_answer(
            problem, path.lineage, path.mean_soundness
        )
        path.answer = answer
        path.answer_correct = correct

    def _final_scoring(
        self, problem: Problem, collected: list[ReasoningPath], batch_pre: int
    ) -> None:
        """Best-of-N outcome scoring: one full-path verification at the end."""
        self._swap_to("verifier")
        vjobs = []
        for path in collected:
            segments = self._path_segments(problem, path.lineage, path.steps_done)
            tokens = (problem.prompt_tokens, *path.step_tokens)
            vjobs.append(
                VerifyJob(
                    lineage=path.lineage,
                    step_idx=path.steps_done - 1,
                    path_segments=segments[:-1],
                    path_segment_tokens=tokens[:-1],
                    new_segment=segments[-1],
                    new_tokens=path.step_tokens[-1],
                    mean_soundness=path.mean_soundness,
                )
            )
        vjobs = self._schedule(problem, vjobs, -1, "final")
        verification = VerificationRound(self._ver_worker, self._prm, batch_pre)
        ver_result = verification.run(problem, vjobs)
        for path in collected:
            path.record_score(ver_result.scores[path.lineage])

    # -- offloading --------------------------------------------------------

    def _swap_to(self, model: str) -> None:
        """Charge PCIe time when the active model changes under offloading."""
        if self._plan is None or not self._plan.offload:
            return
        if self._active_model == model:
            return
        outgoing, incoming = (
            (self._gen_worker, self._ver_worker)
            if model == "verifier"
            else (self._ver_worker, self._gen_worker)
        )
        out_bytes = outgoing.cache.resident_tokens * outgoing.model.kv_bytes_per_token
        in_bytes = incoming.cache.resident_tokens * incoming.model.kv_bytes_per_token
        dt = self._link.swap_time(out_bytes, in_bytes)
        self._clock.advance(dt)
        self._timer.add(Phase.SWAP, dt)
        if self._trace is not None:
            self._trace.record(
                self._clock.now, "swap", -1,
                to=model, out_bytes=out_bytes, in_bytes=in_bytes,
                seconds=round(dt, 6),
            )
        self._active_model = model

    # -- result assembly -----------------------------------------------

    def _build_result(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        collected: list[ReasoningPath],
        counters: TokenCounters,
        gen_cache: PagedKVCache,
        ver_cache: PagedKVCache,
    ) -> ProblemRunResult:
        beams = tuple(
            BeamRecord(
                lineage=path.lineage,
                tokens=path.total_tokens,
                completion_time=path.completion_time or self._clock.now,
                answer=path.answer if path.answer is not None else -1,
                correct=bool(path.answer_correct),
                score=path.final_score,
            )
            for path in collected
        )
        latency = LatencyBreakdown(
            total=self._clock.now,
            generation=self._timer.get(Phase.GENERATION),
            verification=self._timer.get(Phase.VERIFICATION),
            swap=self._timer.get(Phase.SWAP),
        )
        return ProblemRunResult(
            problem_id=problem.problem_id,
            algorithm=algorithm.name,
            n=algorithm.n,
            beams=beams,
            latency=latency,
            tokens=counters,
            util_spans=tuple(self._util.spans),
            gen_cache_hit_rate=gen_cache.stats.hit_rate,
            ver_cache_hit_rate=ver_cache.stats.hit_rate,
            gen_evicted_segments=gen_cache.stats.evicted_segments,
            ver_evicted_segments=ver_cache.stats.evicted_segments,
        )
