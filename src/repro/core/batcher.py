"""Continuous cross-session batching: the per-lane round batcher.

Without it, co-resident sessions on one :class:`~repro.core.pool
.PooledDevice` time-slice — each generation round runs alone and pays the
full weight-read traffic, so interleaving N sessions costs N weight reads
per round of progress. Real engines (vLLM-style iteration-level
continuous batching) run every runnable sequence in one jointly-launched
batch per iteration and read the weights once for all of them.

:class:`RoundBatcher` models that at *round* granularity, the granularity
this simulator's sessions already expose:

* one **iteration** advances every runnable co-resident session on the
  lane by exactly one lifecycle step;
* sessions in their generation state contribute their rounds via
  :meth:`~repro.core.session.SolveSession.begin_generation_round` and run
  them *concurrently in simulated time* — all start at the lane's current
  time, the lane clock advances to the latest member's end, and each
  member's decode/prefill launches bill only ``1/k`` of the weight
  traffic (:meth:`~repro.hardware.roofline.Roofline.batched_point`), so
  the batch as a whole reads the weights once;
* sessions in their verification state form the iteration's second
  sub-batch (batched PRM scoring shares one weight pass the same way),
  serialized after generation exactly as the two workers time-share the
  device within a single session;
* **iteration-level join/leave**: membership is re-evaluated every
  iteration — a newly admitted (arrived) session joins at the next
  iteration, and finished sessions settle *first* within an iteration,
  freeing their batch slots (and, under racing schedulers, cancelling
  their losing replicas) before the round launches.

The batcher owns no fleet bookkeeping: admission, arrival offsets, KV
restore/growth charging and request settlement stay in
:meth:`~repro.core.fleet.TTSFleet.drain`, passed in as hooks. Timing is
the only thing batching changes — every token and score draw is keyed, so
a batched run's answers are byte-identical to the unbatched ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.session import SessionState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pool import PooledDevice
    from repro.core.scheduler import SessionHandle

__all__ = ["RoundBatcher"]


class RoundBatcher:
    """Drives one lane's runnable sessions through jointly-costed rounds.

    Stateless between iterations: the fleet calls :meth:`run_iteration`
    with the members it considers runnable-and-arrived, and the batcher
    partitions them by lifecycle state, runs the sub-batches, and updates
    the lane's occupancy counters.
    """

    def run_iteration(
        self,
        lane: "PooledDevice",
        members: "list[SessionHandle]",
        turn: int,
        on_service_start: "Callable[[PooledDevice, SessionHandle], None]",
        charge_restore: "Callable[[PooledDevice, SessionHandle], None]",
        charge_growth: "Callable[[PooledDevice, SessionHandle], None]",
        on_done: "Callable[[SessionHandle, PooledDevice], None]",
    ) -> int:
        """Advance every member by one lifecycle step; returns the turn counter.

        Hooks are the fleet's own closures: ``on_service_start`` marks a
        handle's first service (start time, arrival offsets),
        ``charge_restore``/``charge_growth`` do the KV-ledger accounting
        around a member's round, ``on_done`` settles a finished request.
        """
        clock = lane.clock
        members = sorted(members, key=lambda h: (h.arrival_s, h.seq, h.replica))

        # Finished searches first: finalization is result assembly (plus
        # the single BoN scoring pass), it settles the request, and — for
        # racing schedulers — cancels losing replicas, so their batch
        # slots free before this iteration's rounds launch.
        for handle in members:
            if handle.session.state is not SessionState.FINALIZING:
                continue
            self._attach(lane, handle, on_service_start, charge_restore)
            handle.session.step()
            charge_growth(lane, handle)
            handle.binding.sync(clock)
            handle.last_stepped = turn
            turn += 1
            if handle.session.state is SessionState.DONE:
                on_done(handle, lane)

        # Re-partition after settlement: on_done may have cancelled
        # sibling replicas that were members of this iteration.
        generating = [
            h for h in members
            if h.session.state in (SessionState.ADMITTED, SessionState.GENERATING)
        ]
        verifying = [
            h for h in members if h.session.state is SessionState.VERIFYING
        ]

        # Generation sub-batch: every member's round starts at the lane's
        # current time and runs concurrently; the lane advances to the
        # latest member's end (stragglers gate the iteration, exactly the
        # lockstep pathology continuous batching trades for occupancy).
        occupancy = len(generating)
        if occupancy:
            lane.batch_iterations += 1
            lane.batch_member_rounds += occupancy
            lane.batch_peak_occupancy = max(lane.batch_peak_occupancy, occupancy)
            ends = []
            for handle in generating:
                self._attach(lane, handle, on_service_start, charge_restore)
                session = handle.session
                if session.state is SessionState.ADMITTED:
                    session.step()  # zero-cost setup: plan, caches, workers
                contribution = session.begin_generation_round(occupancy=occupancy)
                result = contribution.round.run(contribution.jobs)
                session.finish_generation_round(result)
                charge_growth(lane, handle)
                if (
                    handle.first_token_s is None
                    and session.first_token_s is not None
                ):
                    handle.first_token_s = (
                        handle.binding.anchor + session.first_token_s
                    )
                ends.append(handle.binding.anchor + session.clock.now)
                handle.last_stepped = turn
                turn += 1
            clock.advance_to(max(max(ends), clock.now))

        # Verification sub-batch: serialized after generation (one device
        # runs one model's launches at a time) but jointly costed across
        # its members — batched PRM prefill shares one weight read.
        occupancy = len(verifying)
        if occupancy:
            ends = []
            for handle in verifying:
                self._attach(lane, handle, on_service_start, charge_restore)
                handle.session.step_verification(occupancy=occupancy)
                charge_growth(lane, handle)
                ends.append(handle.binding.anchor + handle.session.clock.now)
                handle.last_stepped = turn
                turn += 1
            clock.advance_to(max(max(ends), clock.now))

        return turn

    @staticmethod
    def _attach(
        lane: "PooledDevice",
        handle: "SessionHandle",
        on_service_start,
        charge_restore,
    ) -> None:
        """Bind a member onto the lane at the sub-batch's start time.

        First service marks the start (no idle gap: batched members have
        arrived by construction); resumed members pay to restore any KV
        the ledger swapped out since they last ran.
        """
        if handle.start_s is None:
            on_service_start(lane, handle)
            handle.binding.rebind(lane.clock)
        else:
            handle.binding.rebind(lane.clock)
            charge_restore(lane, handle)
