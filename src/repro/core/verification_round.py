"""The verification stage executor with LookAhead Verification (Sec. 4.1.3).

A discriminative PRM scores each active path after its newest step: one
batched prefill per group of ``B_pre`` paths. The verifier keeps its own
paged KV cache, so a path whose prefix survived since the last iteration
only prefills the new step; an evicted prefix is recomputed — the cost the
baseline's static memory split pays constantly.

LookAhead Verification exploits speculation: when the previous generation
round fully pre-generated a beam's next step, that step is concatenated
into the *current* verifier request. Its score lands in the score cache,
and if the search selects that child, the next iteration's verification of
it is free (and its KV is already resident — the locality win the paper
credits for the 75-85% verifier latency reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generation_round import register_chain
from repro.engine.jobs import RoundStats, VerifyJob
from repro.engine.worker import VerifierWorker
from repro.errors import CapacityError
from repro.llm.verifier import SimulatedPRM
from repro.workloads.problem import Problem

__all__ = ["VerificationRound", "VerificationRoundResult"]

ScoreKey = tuple[tuple[int, ...], int]  # (lineage, step_idx)


@dataclass(frozen=True, slots=True)
class VerificationRoundResult:
    """Scores for this round plus pre-computed lookahead scores."""

    scores: dict[tuple[int, ...], float]
    lookahead_scores: dict[ScoreKey, float]
    stats: RoundStats


class VerificationRound:
    """Executes one verification stage over an ordered list of jobs."""

    def __init__(
        self,
        worker: VerifierWorker,
        prm: SimulatedPRM,
        batch_size: int,
        lookahead: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._worker = worker
        self._prm = prm
        self._batch_size = batch_size
        self._lookahead = lookahead

    def run(
        self,
        problem: Problem,
        jobs: list[VerifyJob],
        score_cache: dict[ScoreKey, float] | None = None,
    ) -> VerificationRoundResult:
        """Score all jobs, consulting and extending the score cache."""
        stats = RoundStats()
        scores: dict[tuple[int, ...], float] = {}
        lookahead_scores: dict[ScoreKey, float] = {}
        cache_in = score_cache or {}
        start_time = self._worker.clock.now

        to_compute: list[VerifyJob] = []
        for job in jobs:
            cached = cache_in.get((job.lineage, job.step_idx))
            if cached is not None:
                scores[job.lineage] = cached
            else:
                to_compute.append(job)

        batch: list[tuple[VerifyJob, int, int, bool]] = []
        for job in to_compute:
            entry = self._materialize_job(job, stats)
            if entry is None and batch:
                # Cache pressure: flush the open batch, then retry alone.
                self._flush(problem, batch, scores, lookahead_scores, stats)
                batch = []
                entry = self._materialize_job(job, stats)
            if entry is None:
                raise CapacityError(
                    "a single verification request exceeds the verifier KV budget"
                )
            batch.append(entry)
            if len(batch) >= self._batch_size:
                self._flush(problem, batch, scores, lookahead_scores, stats)
                batch = []
        if batch:
            self._flush(problem, batch, scores, lookahead_scores, stats)

        stats.round_time = self._worker.clock.now - start_time
        return VerificationRoundResult(scores, lookahead_scores, stats)

    # -- internals ---------------------------------------------------------

    def _materialize_job(
        self, job: VerifyJob, stats: RoundStats
    ) -> tuple[VerifyJob, int, int, bool] | None:
        """Pin the job's path (and lookahead step) resident.

        Returns ``(job, missing_tokens, hit_tokens, lookahead_ok)`` or
        ``None`` when the cache cannot host it right now.
        """
        cache = self._worker.cache
        register_chain(cache, job.path_segments, job.path_segment_tokens)
        parent = job.path_segments[-1]
        cache.register_segment(job.new_segment, parent, job.new_tokens)
        try:
            outcome = cache.materialize(job.new_segment, now=self._worker.clock.now)
        except CapacityError:
            return None
        missing = outcome.recomputed_tokens
        hits = outcome.hit_tokens
        stats.evicted_segments += outcome.evicted_segments

        lookahead_ok = False
        if (
            self._lookahead
            and job.lookahead_segment is not None
            and job.lookahead_tokens > 0
        ):
            cache.register_segment(
                job.lookahead_segment, job.new_segment, job.lookahead_tokens
            )
            try:
                la = cache.materialize(
                    job.lookahead_segment, now=self._worker.clock.now
                )
            except CapacityError:
                la = None  # skip lookahead under pressure; never fail the job
            if la is not None:
                missing += la.recomputed_tokens
                hits += la.hit_tokens
                lookahead_ok = True
        return job, missing, hits, lookahead_ok

    def _flush(
        self,
        problem: Problem,
        batch: list[tuple[VerifyJob, int, int, bool]],
        scores: dict[tuple[int, ...], float],
        lookahead_scores: dict[ScoreKey, float],
        stats: RoundStats,
    ) -> None:
        """Run one batched prefill and emit scores."""
        token_counts = [missing for _, missing, _, _ in batch]
        cached_lens = [hits for _, _, hits, _ in batch]
        self._worker.prefill_batch(token_counts, cached_lens,
                                   capacity_slots=self._batch_size)
        stats.prefilled_tokens += sum(token_counts)
        stats.cache_hit_tokens += sum(cached_lens)
        for job, _, _, lookahead_ok in batch:
            scores[job.lineage] = self._prm.score_step(
                problem, job.lineage, job.step_idx, job.mean_soundness
            )
            self._worker.cache.unpin_path(job.new_segment)
            if lookahead_ok and job.lookahead_child is not None:
                lookahead_scores[(job.lookahead_child, job.step_idx + 1)] = (
                    self._prm.score_step(
                        problem,
                        job.lookahead_child,
                        job.step_idx + 1,
                        job.lookahead_soundness,
                    )
                )
                self._worker.cache.unpin_path(job.lookahead_segment)
