"""Multi-request serving: ``TTSFleet`` multiplexes queued solves on a device pool.

The figure experiments measure one solve at a time; a deployed edge system
sees a *stream* of requests. ``TTSFleet`` adds that serving dimension on
top of a :class:`~repro.core.pool.DevicePool` — one or many simulated
devices, each its own :class:`~repro.core.server.TTSServer`, clock lane
and per-device KV ledger. Every admitted request is placed on one device
(a :class:`~repro.core.pool.PlacementPolicy`, or the scheduler's
``choose_device`` override) and becomes one or more resumable
:class:`~repro.core.session.SolveSession` objects; between rounds a
pluggable :class:`~repro.core.scheduler.RequestScheduler` policy decides,
per device, which session occupies it next. That makes smarter-than-FIFO
serving (SJF, round-robin time-slicing, First-Finish racing with
cancellation) *and* fleet scaling (heterogeneous pools, placement,
migration) policy choices instead of architecture changes:

* requests carry **arrival times on the pool's shared timeline**; each
  session keeps its own service-time clock, and a
  :class:`~repro.engine.clock.ClockBinding` anchors it onto its device's
  lane whenever the scheduler hands it the device;
* an arrival that lands *during* a solve preempts Phase-2 speculation via
  the session's arrival hook (Sec. 4.1.2), so a busy fleet automatically
  sheds speculative work;
* **admission control**: a request whose beam budget cannot be planned
  inside any device's KV budget is rejected up front
  (:class:`CapacityError` from the allocator), as is any arrival that
  would exceed ``max_in_flight`` queued-plus-running requests (replica
  sessions of one request count once). With
  ``oversubscription="deny"``, a request whose planned KV would
  oversubscribe every eligible device's ledger is also refused;
* **KV contention is charged**: with the default
  ``oversubscription="swap"``, interleaved sessions whose combined KV
  oversubscribes a device's ledger pay PCIe swap time — the
  least-recently-run co-resident's KV is written out to host, and a
  paused session's evicted KV is read back before it resumes
  (:class:`~repro.hardware.memory.KVLedger`). Run-to-completion policies
  never trigger it; interleaving policies now pay the true price of
  co-residency instead of getting paused KV for free. With
  ``kv_sharing="prefix"`` each lane's ledger is a
  :class:`~repro.hardware.memory.SharedKVLedger`: sessions report their
  beams' segment lineages, prefix bytes shared across co-resident
  sessions (First-Finish replicas, same-problem requests) are billed
  once, and swap traffic covers only unique bytes — replica racing
  becomes genuinely cheaper, not just differently scheduled;
* the run aggregates into :class:`~repro.metrics.fleet.FleetMetrics` —
  request throughput, p50/p95 queueing delay and sojourn, busy fraction,
  KV swap time, cancelled-work time for racing schedulers — plus a
  per-device :class:`~repro.metrics.fleet.DeviceUtilization` rollup.

Everything stays simulated and deterministic: a fleet run is a pure
function of (pool, submitted requests, scheduler policy, placement
policy), and a single-device pool with ``scheduler="fifo"`` reproduces
the pre-pool fleet byte for byte (pinned by
``tests/goldens/fleet_fifo_goldens.json``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.batcher import RoundBatcher
from repro.core.config import ServerConfig
from repro.core.pool import DevicePool, PlacementPolicy, PooledDevice, build_placement
from repro.core.scheduler import RequestScheduler, SessionHandle, build_scheduler
from repro.core.server import TTSServer
from repro.core.session import SessionState, planned_kv_segments
from repro.engine.clock import ClockBinding
from repro.errors import CapacityError, ConfigError, RetryExhaustedError
from repro.faults import FaultInjector, FaultProcess, RetryPolicy, parse_fault_spec
from repro.metrics.fleet import DeviceUtilization, FleetMetrics, FleetRequestRecord
from repro.metrics.report import ProblemRunResult
from repro.routing.lanes import LaneSpec
from repro.routing.router import RoutingPolicy, build_router
from repro.search.base import SearchAlgorithm
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Dataset, Problem

__all__ = [
    "FleetRequest",
    "FleetReport",
    "TTSFleet",
    "generate_arrivals",
    "run_trace",
]


def generate_arrivals(
    count: int,
    rate_rps: float,
    seed: int = 0,
    distribution: str = "poisson",
) -> tuple[float, ...]:
    """Deterministic arrival-time generator for fleet workloads.

    ``"poisson"`` draws exponential inter-arrival gaps at ``rate_rps`` from
    a keyed stream (same seed, same arrivals — everywhere); ``"uniform"``
    spaces requests exactly ``1/rate_rps`` apart.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if distribution == "uniform":
        return tuple(i / rate_rps for i in range(count))
    if distribution == "poisson":
        stream = KeyedRng(seed).stream("fleet-arrivals", count, rate_rps)
        gaps = stream.exponential(1.0 / rate_rps, size=count)
        times, now = [], 0.0
        for gap in gaps:
            now += float(gap)
            times.append(now)
        return tuple(times)
    raise ValueError(f"unknown arrival distribution {distribution!r}")


@dataclass(frozen=True, slots=True)
class FleetRequest:
    """One queued solve: a problem, its search budget, and when it arrived.

    Open-loop trace requests additionally carry their latency contract —
    ``deadline_s`` / ``ttft_slo_s`` relative to arrival — and traffic
    provenance (``tenant``, ``slo_class``); closed-loop submissions leave
    them ``None`` and behave exactly as before.
    """

    request_id: str
    problem: Problem
    algorithm: SearchAlgorithm
    arrival_s: float
    deadline_s: float | None = None
    ttft_slo_s: float | None = None
    tenant: str | None = None
    slo_class: str | None = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive when set")


@dataclass(frozen=True, slots=True)
class FleetReport:
    """Everything one drained fleet run produced."""

    records: tuple[FleetRequestRecord, ...]
    results: dict[str, ProblemRunResult] = field(default_factory=dict)
    scheduler: str = "fifo"
    placement: str = "first_fit"
    devices: tuple[DeviceUtilization, ...] = ()
    kv_sharing: str = "off"
    batching: str = "off"
    late_policy: str = "serve_late"
    faults: str = "off"
    recovery: str = "failover"
    router: str = "off"

    @property
    def metrics(self) -> FleetMetrics:
        return FleetMetrics.aggregate(
            self.records,
            pool_size=len(self.devices) or None,
            devices=self.devices or None,
        )

    def table(self, title: str | None = None) -> str:
        return self.metrics.table(title=title)

    def device_table(self, title: str | None = None) -> str:
        from repro.metrics.fleet import device_table

        return device_table(self.devices, title=title)

    def _correct_by_request(self) -> dict[str, bool]:
        return {rid: res.top1_correct for rid, res in self.results.items()}

    def slo_summary(self):
        """Fleet-wide SLO attainment / goodput-under-deadline rollup."""
        from repro.metrics.fleet import SLOSummary

        return SLOSummary.aggregate(
            self.records,
            self._correct_by_request(),
            pool_size=len(self.devices) or None,
        )

    def tenant_slos(self):
        """Per-tenant SLO rows (records without a tenant group under '-')."""
        from repro.metrics.fleet import tenant_slo_rollup

        return tenant_slo_rollup(self.records, self._correct_by_request())

    def tenant_table(self, title: str | None = None) -> str:
        from repro.metrics.fleet import tenant_table

        return tenant_table(self.tenant_slos(), title=title)

    def lane_classes(self):
        """Per-lane-class accuracy/latency rollup (heterogeneous pools)."""
        from repro.metrics.fleet import lane_class_rollup

        return lane_class_rollup(self.records, self._correct_by_request())

    def lane_class_table(self, title: str | None = None) -> str:
        from repro.metrics.fleet import lane_class_table

        return lane_class_table(self.lane_classes(), title=title)

    def router_decisions(self) -> dict[str, int]:
        """Initial routing decisions: lane class → requests sent there."""
        from repro.metrics.fleet import router_decisions

        return router_decisions(self.records)

    def frontier_point(self, label: str):
        """This run's point on the accuracy-vs-cost frontier."""
        from repro.metrics.fleet import frontier_point

        return frontier_point(label, self.records, self._correct_by_request())


@dataclass(slots=True)
class _RequestState:
    """Fleet-side lifecycle of one admitted request (and its replicas).

    ``device`` is the placement-chosen primary lane; racing replicas may
    sit on other lanes (each handle's own ``device``). ``claim_lanes``
    tracks which lanes currently hold this request's live-count and
    planned-KV claims, so crash handling can release exactly the dead
    lane's share and settlement the rest — never double-counting.
    ``claim_bytes`` records what each lane was actually billed (unique
    planned bytes on sharing lanes, the full claim elsewhere) and
    ``claim_segs`` the planned segments noted there, so releases undo
    exactly what placement charged.
    """

    request: FleetRequest
    seq: int
    handles: list[SessionHandle]
    device: PooledDevice
    start_s: float | None = None
    record: FleetRequestRecord | None = None
    claim_lanes: list[PooledDevice] = field(default_factory=list)
    claim_bytes: dict[int, int] = field(default_factory=dict)
    claim_segs: dict[int, tuple] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.record is not None


class TTSFleet:
    """Scheduler-driven multiplexing of solve requests over a device pool.

    Submit requests (``submit`` / ``submit_stream``), then ``drain()`` to
    simulate the whole run and collect the :class:`FleetReport`. Each pool
    lane owns a :class:`~repro.engine.clock.SimClock` on a shared time
    origin; sessions run on private clocks that a :class:`ClockBinding`
    stitches onto their lane round by round, so any
    :class:`RequestScheduler` policy — FIFO, SJF, round-robin,
    First-Finish racing — can interleave them, and any
    :class:`~repro.core.pool.PlacementPolicy` can spread requests across
    the lanes.

    Construct either from ``(config, dataset)`` — optionally with
    ``devices=["rtx4090", "rtx4070ti"]`` to span several device specs — or
    from a prepared ``pool=DevicePool(...)``.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        dataset: Dataset | None = None,
        max_in_flight: int | None = None,
        scheduler: RequestScheduler | str = "fifo",
        pool: DevicePool | None = None,
        placement: PlacementPolicy | str = "first_fit",
        devices: list[str] | None = None,
        oversubscription: str = "swap",
        kv_sharing: str = "off",
        batching: str = "off",
        late_policy: str = "serve_late",
        faults: "str | Sequence[FaultProcess]" = "off",
        recovery: str = "failover",
        retry_budget: int = 3,
        retry_backoff_s: float = 1.0,
        lanes: Sequence[LaneSpec] | None = None,
        router: RoutingPolicy | str | None = "off",
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 when set")
        if late_policy not in ("serve_late", "drop"):
            raise ConfigError(
                f"late_policy must be 'serve_late' or 'drop', got {late_policy!r}"
            )
        if recovery not in ("failover", "retry", "shed"):
            raise ConfigError(
                f"recovery must be 'failover', 'retry' or 'shed', "
                f"got {recovery!r}"
            )
        if isinstance(faults, str):
            self._faults_label = faults if faults.strip() else "off"
            self._fault_processes = parse_fault_spec(faults)
        else:
            self._fault_processes = tuple(faults)
            self._faults_label = (
                ";".join(p.name for p in self._fault_processes)
                if self._fault_processes else "off"
            )
        if kv_sharing not in ("off", "prefix"):
            raise ConfigError(
                f"kv_sharing must be 'off' or 'prefix', got {kv_sharing!r}"
            )
        if batching not in ("off", "continuous"):
            raise ConfigError(
                f"batching must be 'off' or 'continuous', got {batching!r}"
            )
        if pool is None:
            if config is None or dataset is None:
                raise ConfigError(
                    "TTSFleet needs either a DevicePool (pool=...) or a "
                    "(config, dataset) pair to build one"
                )
            pool = DevicePool.build(
                config, dataset, device_names=devices,
                kv_sharing=kv_sharing, batching=batching, lanes=lanes,
            )
        elif config is not None or dataset is not None or devices is not None:
            raise ConfigError(
                "pass either pool=... or (config, dataset[, devices]), not both"
            )
        elif lanes is not None:
            raise ConfigError(
                "a prepared pool owns its lanes; build it with "
                "DevicePool.build(..., lanes=[LaneSpec...]) instead of "
                "passing lanes to TTSFleet"
            )
        elif kv_sharing != "off":
            raise ConfigError(
                "a prepared pool owns its ledgers; build it with "
                "DevicePool.build(..., kv_sharing='prefix') instead of "
                "passing kv_sharing to TTSFleet"
            )
        elif batching != "off":
            raise ConfigError(
                "a prepared pool owns its lanes' batching mode; build it "
                "with DevicePool.build(..., batching='continuous') instead "
                "of passing batching to TTSFleet"
            )
        if oversubscription not in ("swap", "deny"):
            raise ConfigError(
                f"oversubscription must be 'swap' or 'deny', got {oversubscription!r}"
            )
        self._pool = pool
        self._batcher = RoundBatcher()
        self._oversubscription = oversubscription
        self._late_policy = late_policy
        self._max_in_flight = max_in_flight
        self._recovery = recovery
        self._retry_policy = RetryPolicy(
            budget=retry_budget, backoff_s=retry_backoff_s
        )
        self._scheduler = (
            build_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self._placement = (
            build_placement(placement) if isinstance(placement, str) else placement
        )
        # Routing: None / "off" leaves the drain loop byte-identical to
        # the routerless fleet; a policy (by registry name or instance)
        # narrows admission's eligible lanes per request and may escalate
        # settled attempts to bigger-model lanes.
        if router is None or router == "off":
            self._router: RoutingPolicy | None = None
        elif isinstance(router, str):
            self._router = build_router(router)
        else:
            self._router = router
        if self._router is not None:
            self._router.bind(self._pool)
        self._queue: list[FleetRequest] = []
        self._next_id = 0
        # Allocation feasibility is a pure function of (device, n) for a
        # fixed dataset, so admission memoizes the (often expensive) plan
        # search; the planned on-device KV claim rides along for the
        # ledger bookkeeping and deny-mode admission.
        self._kv_verdicts: dict[tuple[int, int], str | None] = {}
        self._kv_claims: dict[tuple[int, int], int] = {}
        # Planned prompt-root segments per (lane, problem): what a session
        # for that problem would register at admission, used by dedup-aware
        # billing and the prefix_affinity placement counters.
        self._planned_memo: dict[tuple[int, str], tuple] = {}

    # -- submission ------------------------------------------------------

    @property
    def pool(self) -> DevicePool:
        return self._pool

    @property
    def server(self) -> TTSServer:
        """The first pool device's server (single-device compatibility)."""
        return self._pool[0].server

    @property
    def clock(self):
        """The first pool device's clock lane (single-device compatibility)."""
        return self._pool[0].clock

    @property
    def scheduler(self) -> RequestScheduler:
        return self._scheduler

    @property
    def placement(self) -> PlacementPolicy:
        return self._placement

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def late_policy(self) -> str:
        return self._late_policy

    @property
    def faults(self) -> str:
        """The fault spec label this fleet injects (``"off"`` = none)."""
        return self._faults_label

    @property
    def recovery(self) -> str:
        return self._recovery

    @property
    def router(self) -> str:
        """The bound routing policy's name (``"off"`` = no router)."""
        return self._router.name if self._router is not None else "off"

    def submit(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrival_s: float = 0.0,
        deadline_s: float | None = None,
        ttft_slo_s: float | None = None,
        tenant: str | None = None,
        slo_class: str | None = None,
    ) -> str:
        """Queue one request; returns its fleet-assigned id."""
        request_id = f"req-{self._next_id:04d}"
        self._next_id += 1
        self._queue.append(
            FleetRequest(
                request_id=request_id,
                problem=problem,
                algorithm=algorithm,
                arrival_s=arrival_s,
                deadline_s=deadline_s,
                ttft_slo_s=ttft_slo_s,
                tenant=tenant,
                slo_class=slo_class,
            )
        )
        return request_id

    def submit_stream(
        self,
        problems: list[Problem],
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] | list[float],
    ) -> list[str]:
        """Queue one request per problem with the given arrival times."""
        if len(problems) != len(arrivals):
            raise ValueError("problems and arrivals must have the same length")
        return [
            self.submit(problem, algorithm, arrival_s=arrival)
            for problem, arrival in zip(problems, arrivals)
        ]

    # -- admission -------------------------------------------------------

    def _kv_verdict(self, lane: PooledDevice, n: int) -> str | None:
        """Can ``lane``'s allocator plan a beam budget of ``n``? Memoized."""
        key = (lane.index, n)
        if key not in self._kv_verdicts:
            try:
                plan = lane.server.plan_allocation(n)
            except CapacityError as error:
                self._kv_verdicts[key] = f"KV budget: {error}"
                self._kv_claims[key] = 0
            else:
                self._kv_verdicts[key] = None
                self._kv_claims[key] = plan.kv_total_bytes
        return self._kv_verdicts[key]

    def _planned_claims(self, lane: PooledDevice, problem: Problem) -> tuple:
        """The prompt-root KV segments a session would register on ``lane``."""
        key = (lane.index, problem.problem_id)
        if key not in self._planned_memo:
            self._planned_memo[key] = planned_kv_segments(lane.server, problem)
        return self._planned_memo[key]

    def _billable_claim(self, lane: PooledDevice, request: FleetRequest) -> int:
        """The planned-KV bytes ``lane`` actually charges for ``request``.

        On sharing lanes this is the *unique* planned bytes: the full
        claim minus prefix bytes already resident (or already planned by
        a co-admitted same-prefix request) on that lane. Non-segment
        ledgers have nothing to deduplicate, so the full claim is billed
        and the ``--kv-sharing off`` path stays byte-identical.
        """
        claim = self._kv_claims[(lane.index, request.algorithm.n)]
        if not lane.ledger.segment_granular:
            return claim
        overlap = lane.prefix_overlap_bytes(
            self._planned_claims(lane, request.problem)
        )
        return max(0, claim - overlap)

    def _admission(
        self,
        request: FleetRequest,
        finish_times: list[float],
        running_requests: int,
    ) -> tuple[str | None, list[PooledDevice]]:
        """Admission control at arrival.

        Returns ``(reject_reason, eligible_devices)``; exactly one of the
        two is meaningful. Checks run in the legacy order — queue depth
        first, then per-device KV feasibility, then (deny mode only)
        ledger headroom.
        """
        if self._max_in_flight is not None:
            in_flight = running_requests + sum(
                1 for f in finish_times if f > request.arrival_s
            )
            if in_flight >= self._max_in_flight:
                return f"queue full (max_in_flight={self._max_in_flight})", []
        n = request.algorithm.n
        eligible = [
            lane for lane in self._pool if self._kv_verdict(lane, n) is None
        ]
        if not eligible:
            # Every lane refused; surface the first lane's allocator error
            # (identical to the single-device fleet's reject reason).
            return self._kv_verdict(self._pool[0], n), []
        if self._oversubscription == "deny":
            fitting = [
                lane for lane in eligible
                if lane.planned_kv_bytes + self._billable_claim(lane, request)
                <= lane.ledger.capacity_bytes
            ]
            if not fitting:
                return (
                    f"KV budget: admitting n={n} would oversubscribe every "
                    f"device's KV ledger (co-resident sessions hold the "
                    f"planned capacity)",
                    [],
                )
            eligible = fitting
        return None, eligible

    # -- the serving loop ------------------------------------------------

    def drain(self) -> FleetReport:
        """Serve every queued request through the scheduler and aggregate.

        The loop interleaves the pool's lanes in deterministic time order:
        the runnable lane furthest behind acts next, and an arrival is
        admitted (and placed on a device) as soon as every runnable lane
        has reached its arrival time — or immediately, when the whole pool
        is idle. Arrivals landing during a session's service reach its
        preemption hook (as offsets on that session's clock, plus an
        explicit signal for interleaved schedules), so speculation halts
        as soon as the fleet has a waiting customer — the same
        minimal-residual-work policy as ``TTSServer.serve_stream``.

        Arrival preemption is deliberately *pool-global*: a session sheds
        speculative work when any later request arrives, even one placed
        on another lane. Per-lane preemption is not expressible here —
        the offsets are installed at service start, when later requests'
        placements have not happened yet — and the global rule is the
        conservative reading of Sec. 4.1.2 (a busy fleet sheds
        speculation); it slightly understates multi-device speedups.
        """
        order = sorted(
            range(len(self._queue)), key=lambda i: (self._queue[i].arrival_s, i)
        )
        requests = [self._queue[i] for i in order]
        self._queue = []

        # Min-heap of (arrival, seq, request): initial entries pop in the
        # exact (arrival, submission) order the old deque served, and
        # retried/re-queued requests merge back in at their new times.
        pending: list[tuple[float, int, FleetRequest]] = [
            (request.arrival_s, seq, request)
            for seq, request in enumerate(requests)
        ]
        heapq.heapify(pending)
        states: dict[int, _RequestState] = {}
        records: dict[int, FleetRequestRecord] = {}
        results: dict[str, ProblemRunResult] = {}
        finish_times: list[float] = []
        lanes = list(self._pool)
        current: dict[int, SessionHandle | None] = {lane.index: None for lane in lanes}
        turn = 0

        # Fault machinery: the injector's keyed timeline, plus a heap of
        # scheduled restorations ((time, tiebreak, kind, lane) — lane
        # recovery after MTTR, link restore, KV-pressure relief).
        injector = (
            FaultInjector(
                self._fault_processes,
                KeyedRng(self._pool[0].server.config.seed).fork("faults"),
                len(lanes),
            )
            if self._fault_processes
            else None
        )
        recoveries: list[tuple[float, int, str, PooledDevice]] = []
        recovery_seq = 0
        # Availability accounting that must survive a request's state being
        # rebuilt (failover) or re-queued (retry): keyed by request seq.
        retries_ct: dict[int, int] = {}
        redone: dict[int, float] = {}
        failed_over_seqs: set[int] = set()
        # Routing accounting, also keyed by seq: the router's *initial*
        # lane-class decision (immutable through crashes/escalations),
        # cascade escalation counts, and device seconds of abandoned
        # cheaper attempts. Disjoint from ``redone`` by construction:
        # a crash voids its sessions into ``redone`` before recovery
        # tears the state down, an escalation bills its (never-crashed)
        # sessions into ``escalated_work`` — no session's clock can
        # reach both.
        routed_cls: dict[int, str] = {}
        escalations_ct: dict[int, int] = {}
        escalated_work: dict[int, float] = {}

        def running_requests() -> int:
            return sum(1 for st in states.values() if not st.finished)

        def lane_runnable(lane: PooledDevice) -> list[SessionHandle]:
            return [
                h
                for st in states.values()
                if not st.finished
                for h in st.handles
                if h.runnable and h.device is lane
            ]

        def acting_lane() -> PooledDevice | None:
            best = None
            for lane in lanes:
                if not lane_runnable(lane):
                    continue
                if best is None or lane.clock.now < best.clock.now:
                    best = lane
            return best

        def release_claims(
            st: _RequestState, only: PooledDevice | None = None
        ) -> None:
            """Return a request's live-count/planned-KV claims to its lanes.

            Idempotent per lane: ``claim_lanes`` shrinks as shares are
            returned, so a crash releasing the dead lane's share and a
            later settlement releasing the rest never double-count.
            """
            for lane in list(st.claim_lanes):
                if only is not None and lane is not only:
                    continue
                lane.live_requests -= 1
                lane.planned_kv_bytes -= st.claim_bytes.pop(lane.index)
                segs = st.claim_segs.pop(lane.index, None)
                if segs is not None:
                    lane.forget_planned_segments(segs)
                st.claim_lanes.remove(lane)

        def place(
            request: FleetRequest,
            seq: int,
            eligible: list[PooledDevice],
            now: float,
            carry_start: float | None = None,
        ) -> _RequestState:
            """Create a request's sessions and bind them to pool lanes.

            The scheduler picks the primary lane (placement hook) and may
            spread racing replicas across further eligible lanes
            (``replica_lanes``); each replica's session is created on the
            server of the lane it will run on — identical search results
            either way, since every lane shares the pairing and seed.

            ``now`` is the placement instant; handles carry it as their
            effective (re-)arrival so a failover or retry restart never
            begins before the crash that caused it — even on an idle lane
            whose clock lags the fault time. First placements pass the
            arrival itself, so nothing changes without faults.
            """
            rearrival = max(request.arrival_s, now)
            device = self._scheduler.choose_device(
                request, eligible, self._placement, now
            )
            replica_lanes = self._scheduler.replica_lanes(
                request, device, eligible
            )
            sessions_by_lane = {
                device.index: self._scheduler.sessions_for(device.server, request)
            }
            handles = []
            for replica in range(len(sessions_by_lane[device.index])):
                lane = replica_lanes[replica % len(replica_lanes)]
                if lane.index not in sessions_by_lane:
                    sessions_by_lane[lane.index] = self._scheduler.sessions_for(
                        lane.server, request
                    )
                session = sessions_by_lane[lane.index][replica]
                handles.append(
                    SessionHandle(
                        request_id=request.request_id,
                        arrival_s=rearrival,
                        seq=seq,
                        replica=replica,
                        session=session,
                        binding=ClockBinding(session.clock),
                        device=lane,
                    )
                )
            st = _RequestState(
                request=request, seq=seq, handles=handles, device=device,
                start_s=carry_start,
            )
            # Affinity accounting happens before any claim registration so
            # a request's own planned segments never count as a "hit".
            device.placements += 1
            if device.ledger.segment_granular and device.prefix_affinity_bytes(
                self._planned_claims(device, request.problem)
            ) > 0:
                device.affinity_hits += 1
            seen: set[int] = set()
            for handle in handles:
                if handle.device.index in seen:
                    continue
                seen.add(handle.device.index)
                lane = handle.device
                billed = self._billable_claim(lane, request)
                lane.live_requests += 1
                lane.planned_kv_bytes += billed
                st.claim_lanes.append(lane)
                st.claim_bytes[lane.index] = billed
                if lane.ledger.segment_granular:
                    segs = self._planned_claims(lane, request.problem)
                    lane.note_planned_segments(segs)
                    st.claim_segs[lane.index] = segs
                    lane.planned_admitted_bytes += self._kv_claims[
                        (lane.index, request.algorithm.n)
                    ]
                    lane.unique_admitted_bytes += billed
            routed_cls.setdefault(seq, device.lane_class)
            states[seq] = st
            return st

        def next_lane_recovery() -> float | None:
            times = [t for t, _, kind, _ in recoveries if kind == "lane_recover"]
            return min(times) if times else None

        def admit(seq: int, request: FleetRequest, now: float) -> None:
            reason, eligible = self._admission(
                request, finish_times, running_requests()
            )
            lost = False
            if reason is None:
                healthy = [lane for lane in eligible if lane.serving]
                if not healthy:
                    # Every eligible lane is down. Wait for a scheduled
                    # repair if one exists; otherwise the request is lost
                    # to the outage, not to admission policy.
                    t_rec = next_lane_recovery()
                    if t_rec is not None:
                        heapq.heappush(
                            pending,
                            (max(request.arrival_s, t_rec), seq, request),
                        )
                        return
                    reason = "no healthy device lane (pool lanes crashed)"
                    lost = True
                else:
                    eligible = healthy
                    if self._router is not None:
                        # The router narrows to its preferred lane class;
                        # placement/scheduling pick the concrete lane
                        # within it. A policy returning nothing (defensive
                        # guard) falls back to every healthy lane.
                        eligible = (
                            self._router.route(request, eligible, now)
                            or eligible
                        )
            if reason is not None:
                records[seq] = FleetRequestRecord(
                    request_id=request.request_id,
                    arrival_s=request.arrival_s,
                    start_s=request.arrival_s,
                    finish_s=request.arrival_s,
                    accepted=False,
                    reject_reason=reason,
                    lost=lost,
                    retries=retries_ct.get(seq, 0),
                    redone_work_s=redone.get(seq, 0.0),
                    routed_class=routed_cls.get(seq),
                    escalations=escalations_ct.get(seq, 0),
                    escalated_work_s=escalated_work.get(seq, 0.0),
                    tenant=request.tenant,
                    slo_class=request.slo_class,
                    deadline_s=request.deadline_s,
                    ttft_slo_s=request.ttft_slo_s,
                )
            else:
                place(request, seq, eligible, now=now)
            # Either way somebody new showed up: running sessions must stop
            # speculating (round-granular analogue of the arrival offsets).
            for st in states.values():
                if st.finished or st.seq == seq:
                    continue
                for h in st.handles:
                    if h.start_s is not None and h.runnable:
                        h.session.notify_arrival()

        def charge_swap(
            lane: PooledDevice,
            handle: SessionHandle,
            restored: int,
            evicted: list[tuple[str, int]],
        ) -> None:
            """Charge PCIe time for ledger traffic to the session that caused it."""
            dt = sum(
                lane.link.transfer_time(num_bytes) for _, num_bytes in evicted
            )
            if restored:
                dt += lane.link.transfer_time(restored)
            if dt == 0:
                return
            handle.session.charge_kv_swap(dt)
            handle.kv_swap_s += dt
            lane.kv_swap_s += dt

        def charge_restore(lane: PooledDevice, handle: SessionHandle) -> None:
            """Bring a resumed session's evicted KV back; charge the reads."""
            restored, evicted = lane.ledger.restore(handle.session.session_id)
            charge_swap(lane, handle, restored, evicted)

        def service_start(lane: PooledDevice, handle: SessionHandle) -> None:
            """First pick of a handle: stamp service start, install offsets."""
            start = max(lane.clock.now, handle.arrival_s)
            handle.start_s = start
            st = states[handle.seq]
            if st.start_s is None:
                st.start_s = start
            # Later arrivals expressed on the session's own clock (t=0
            # at service start); non-positive offsets mean someone is
            # already waiting and speculation never starts.
            handle.session.set_arrival_offsets(
                tuple(
                    req.arrival_s - start
                    for req in requests[handle.seq + 1:]
                )
            )

        def capture_first_token(handle: SessionHandle) -> None:
            """Map a session's first-token time onto the fleet timeline."""
            if (
                handle.first_token_s is None
                and handle.session.first_token_s is not None
            ):
                handle.first_token_s = (
                    handle.binding.anchor + handle.session.first_token_s
                )

        def charge_growth(lane: PooledDevice, handle: SessionHandle) -> None:
            """Post-round ledger update; the grower pays for evictions.

            Shared-ledger lanes get the session's segment lineage so
            prefix bytes co-resident sessions share are billed once;
            whole-session lanes get the opaque byte count. Either way a
            ledger can report ``restored`` bytes — KV the owner lost to
            eviction since it last ran that had to come back over PCIe
            before this round — and the grower pays for both directions.
            """
            session = handle.session
            if not session.state.live:
                return  # released in settle()
            if lane.ledger.segment_granular:
                restored, evicted = lane.ledger.charge_growth_segments(
                    session.session_id, session.kv_segments()
                )
            else:
                restored, evicted = lane.ledger.charge_growth(
                    session.session_id, session.resident_kv_bytes
                )
            charge_swap(lane, handle, restored, evicted)

        def escalate(
            st: _RequestState, lane: PooledDevice, targets: list[PooledDevice]
        ) -> None:
            """Abandon a settled cheap attempt and re-place on a bigger class.

            Every session of the attempt is cancelled and its device
            seconds billed as escalated work (the honest cost of trying
            small first); ledger claims are released on their lanes, and
            the request re-enters placement on the escalation targets —
            a full re-prefill through the bigger lane's ledger, exactly
            like a fresh admission. The escalation instant is the
            settling lane's clock, so the restart never predates the
            rejected attempt's finish.
            """
            seq = st.seq
            abandoned = 0.0
            for h in st.handles:
                if h.session.state.live:
                    h.session.cancel()
                abandoned += h.session.clock.now
                (h.device or lane).ledger.release(h.session.session_id)
            escalated_work[seq] = escalated_work.get(seq, 0.0) + abandoned
            escalations_ct[seq] = escalations_ct.get(seq, 0) + 1
            release_claims(st)
            del states[seq]
            place(
                st.request, seq, targets,
                now=lane.clock.now, carry_start=st.start_s,
            )

        def settle(handle: SessionHandle, lane: PooledDevice) -> None:
            st = states[handle.seq]
            siblings = st.handles
            if self._scheduler.race_decided(handle, siblings):
                winner = handle
            elif all(not h.session.state.live for h in siblings):
                # Nobody produced a verified finish: the lowest-replica
                # *finished* sibling stands — the canonical replica when
                # it survived (identical to what FIFO would have served),
                # else the surviving replica a lane crash left behind.
                finished = [
                    h for h in siblings
                    if h.session.state is SessionState.DONE
                ]
                if not finished:
                    return  # every replica crashed; recovery owns this one
                winner = min(finished, key=lambda h: h.replica)
            else:
                return  # race continues
            if self._router is not None and not self._router.accept(
                st.request, winner
            ):
                # Verifier rejection: ask the router for bigger-class
                # lanes this request could still plan on. With nowhere
                # to escalate (already on the biggest class, or no
                # feasible bigger lane), the attempt commits as-is.
                n = st.request.algorithm.n
                candidates = [
                    target for target in lanes
                    if target.serving and self._kv_verdict(target, n) is None
                ]
                targets = self._router.escalate_lanes(
                    st.request,
                    (winner.device or lane).model_cost_bytes,
                    candidates,
                )
                if targets:
                    escalate(st, lane, targets)
                    return
            cancelled_work = 0.0
            for h in siblings:
                if h is winner:
                    continue
                if h.session.state.live:
                    h.session.cancel()
                cancelled_work += h.session.clock.now
            for h in siblings:
                (h.device or lane).ledger.release(h.session.session_id)
            result = winner.session.outcome.result
            committed = result.tokens.committed
            records[st.seq] = FleetRequestRecord(
                request_id=st.request.request_id,
                arrival_s=st.request.arrival_s,
                start_s=st.start_s,
                finish_s=lane.clock.now,
                latency=result.latency,
                replicas=len(siblings),
                cancelled_work_s=cancelled_work,
                # Device seconds across every session of the request; the
                # start→finish window also contains other requests' rounds
                # under interleaving schedulers. Work redone after a lane
                # crash (failover/retry restarts) counts, as do abandoned
                # cheaper attempts a cascade escalated past.
                device_time_s=(
                    winner.session.clock.now + cancelled_work
                    + redone.get(st.seq, 0.0)
                    + escalated_work.get(st.seq, 0.0)
                ),
                device_id=lane.device_id,
                kv_swap_s=sum(h.kv_swap_s for h in siblings),
                ttft_s=(
                    winner.first_token_s - st.request.arrival_s
                    if winner.first_token_s is not None
                    else None
                ),
                tpot_s=(
                    result.latency.generation / committed
                    if committed > 0
                    else None
                ),
                retries=retries_ct.get(st.seq, 0),
                redone_work_s=redone.get(st.seq, 0.0),
                failed_over=st.seq in failed_over_seqs,
                routed_class=routed_cls.get(st.seq),
                lane_class=lane.lane_class,
                escalations=escalations_ct.get(st.seq, 0),
                escalated_work_s=escalated_work.get(st.seq, 0.0),
                tenant=st.request.tenant,
                slo_class=st.request.slo_class,
                deadline_s=st.request.deadline_s,
                ttft_slo_s=st.request.ttft_slo_s,
            )
            st.record = records[st.seq]
            results[st.request.request_id] = result
            finish_times.append(lane.clock.now)
            release_claims(st)
            lane.requests_served += 1

        def drop(st: _RequestState) -> None:
            """Shed a still-queued request whose deadline expired.

            The drop is stamped at the deadline expiry itself (arrival +
            deadline), not at the lane-clock instant the sweep noticed it
            — the record is a pure function of the request, independent
            of how far the lane's clock had jumped past the deadline.
            None of the request's sessions ever ran, so there is no
            cancelled work to account; their ledger claims (if any) are
            released like a settled race's losers.
            """
            request = st.request
            lane = st.device
            for h in st.handles:
                if h.session.state.live:
                    h.session.cancel()
                (h.device or lane).ledger.release(h.session.session_id)
            records[st.seq] = FleetRequestRecord(
                request_id=request.request_id,
                arrival_s=request.arrival_s,
                start_s=request.arrival_s,
                finish_s=request.arrival_s + request.deadline_s,
                accepted=False,
                dropped=True,
                reject_reason=(
                    f"deadline expired after {request.deadline_s:g}s in queue "
                    f"(late_policy=drop)"
                ),
                routed_class=routed_cls.get(st.seq),
                tenant=request.tenant,
                slo_class=request.slo_class,
                deadline_s=request.deadline_s,
                ttft_slo_s=request.ttft_slo_s,
            )
            st.record = records[st.seq]
            release_claims(st)

        def drop_expired(lane: PooledDevice) -> bool:
            """Open-loop shedding sweep: drop expired queued work on ``lane``.

            Only requests whose service has not started are candidates —
            once a request holds the device its lateness is the SLO
            metrics' problem, not admission's. Returns True when anything
            was dropped (the caller re-evaluates which lane acts next).
            """
            dropped_any = False
            for st in list(states.values()):
                if st.finished or st.start_s is not None or st.device is not lane:
                    continue
                if self._scheduler.drop_expired(
                    st.request, lane.clock.now, self._late_policy
                ):
                    drop(st)
                    dropped_any = True
            return dropped_any

        # -- fault handling ----------------------------------------------

        def schedule_recovery(time_s: float, kind: str, lane: PooledDevice) -> None:
            nonlocal recovery_seq
            heapq.heappush(recoveries, (time_s, recovery_seq, kind, lane))
            recovery_seq += 1

        def lose_request(
            seq: int,
            request: FleetRequest,
            now: float,
            reason: str,
            device_id: str | None = None,
        ) -> None:
            """Terminal fault outcome: the request leaves the system unserved."""
            records[seq] = FleetRequestRecord(
                request_id=request.request_id,
                arrival_s=request.arrival_s,
                start_s=request.arrival_s,
                finish_s=max(now, request.arrival_s),
                accepted=False,
                lost=True,
                reject_reason=reason,
                retries=retries_ct.get(seq, 0),
                redone_work_s=redone.get(seq, 0.0),
                failed_over=seq in failed_over_seqs,
                routed_class=routed_cls.get(seq),
                escalations=escalations_ct.get(seq, 0),
                escalated_work_s=escalated_work.get(seq, 0.0),
                device_id=device_id,
                tenant=request.tenant,
                slo_class=request.slo_class,
                deadline_s=request.deadline_s,
                ttft_slo_s=request.ttft_slo_s,
            )

        def recover_request(
            st: _RequestState, lane: PooledDevice, now: float
        ) -> None:
            """Apply the recovery policy to a request the crash left session-less.

            All of the request's device seconds so far are charged as
            redone work — the crash voided them — and the state is torn
            down before the policy decides the request's next life:
            ``shed`` fails fast, ``retry`` re-queues after backoff (until
            the per-request budget runs out), ``failover`` re-places on a
            healthy lane immediately (checkpoint-free restart).
            """
            seq, request = st.seq, st.request
            redone[seq] = redone.get(seq, 0.0) + sum(
                h.session.clock.now for h in st.handles
            )
            release_claims(st)
            del states[seq]
            if self._recovery == "shed":
                lose_request(
                    seq, request, now,
                    f"lane {lane.device_id} crashed (recovery=shed)",
                    device_id=lane.device_id,
                )
                return
            if self._recovery == "retry":
                attempt = retries_ct.get(seq, 0) + 1
                try:
                    delay = self._retry_policy.backoff(attempt)
                except RetryExhaustedError as error:
                    lose_request(
                        seq, request, now,
                        f"lane {lane.device_id} crashed; {error}",
                        device_id=lane.device_id,
                    )
                    return
                retries_ct[seq] = attempt
                heapq.heappush(
                    pending, (max(now + delay, request.arrival_s), seq, request)
                )
                return
            # failover: restart on any healthy KV-feasible lane right now,
            # or wait for a scheduled repair, or concede the request.
            n = request.algorithm.n
            healthy = [
                target for target in lanes
                if target.serving and self._kv_verdict(target, n) is None
            ]
            if healthy:
                if self._router is not None:
                    # Failover honours the router: the restart lands on
                    # the policy's preferred class among the survivors
                    # (falling through the class order when the original
                    # class died with the lane).
                    healthy = (
                        self._router.route(request, healthy, now) or healthy
                    )
                failed_over_seqs.add(seq)
                place(request, seq, healthy, now=now, carry_start=st.start_s)
                return
            t_rec = next_lane_recovery()
            if t_rec is not None:
                failed_over_seqs.add(seq)
                heapq.heappush(
                    pending, (max(t_rec, request.arrival_s), seq, request)
                )
                return
            lose_request(
                seq, request, now,
                f"lane {lane.device_id} crashed and no healthy lane remains",
                device_id=lane.device_id,
            )

        def on_lane_crash(
            lane: PooledDevice, time_s: float, mttr_s: float | None
        ) -> None:
            """A lane dies: resident KV is gone, its sessions are voided.

            Requests racing replicas on surviving lanes keep running (the
            crash must not fail a request that still has a live replica);
            requests whose only sessions died go to the recovery policy.
            """
            if not lane.serving:
                return  # coincident crash on an already-dead lane
            lane.fail_lane(time_s)
            current[lane.index] = None
            if mttr_s is not None:
                schedule_recovery(time_s + mttr_s, "lane_recover", lane)
            for st in list(states.values()):
                if st.finished:
                    continue
                dead = [h for h in st.handles if h.device is lane]
                if not dead:
                    continue
                for h in dead:
                    if h.session.state.live:
                        h.session.cancel()
                release_claims(st, only=lane)
                survivors = [h for h in st.handles if h.device is not lane]
                if any(h.session.state.live for h in survivors):
                    continue  # the race carries on without the dead replica
                done = [
                    h for h in survivors
                    if h.session.state is SessionState.DONE
                ]
                if done:
                    settle(done[0], done[0].device)
                else:
                    recover_request(st, lane, time_s)

        def reanchor_residents(lane: PooledDevice) -> None:
            """Shift resident sessions past a fault that ate lane time.

            A stall or forced eviction advances the lane clock underneath
            its live handles; without re-anchoring, their next ``sync``
            would reconstruct a timeline *before* the fault and trip the
            clock's rewind guard. Rebinding preserves each session's
            accumulated service and resumes it at the post-fault instant.
            """
            for st in states.values():
                for handle in st.handles:
                    if handle.device is lane and handle.session.state.live:
                        handle.binding.rebind(lane.clock)

        def apply_fault_event(event) -> None:
            lane = lanes[event.lane]
            if event.kind == "crash":
                on_lane_crash(lane, event.time_s, event.mttr_s)
                return
            if not lane.serving:
                return  # non-crash faults have nothing to act on when down
            if event.kind == "stall":
                lane.clock.advance_to(max(lane.clock.now, event.time_s))
                lane.stall(event.duration_s)
                reanchor_residents(lane)
            elif event.kind == "link_degrade":
                lane.degrade_link(event.factor)
                if event.duration_s is not None:
                    schedule_recovery(
                        event.time_s + event.duration_s, "link_restore", lane
                    )
            elif event.kind == "kv_pressure":
                evicted = lane.apply_kv_pressure(event.factor)
                dt = sum(
                    lane.link.transfer_time(num_bytes)
                    for _, num_bytes in evicted
                )
                if dt:
                    # The pressure spike's forced write-out is PCIe time on
                    # the lane; victims pay their read-back on next resume.
                    lane.clock.advance(dt)
                    lane.kv_swap_s += dt
                    reanchor_residents(lane)
                if event.duration_s is not None:
                    schedule_recovery(
                        event.time_s + event.duration_s, "kv_relieve", lane
                    )

        def apply_recovery_event(
            kind: str, lane: PooledDevice, time_s: float
        ) -> None:
            if kind == "lane_recover":
                if not lane.serving:
                    lane.recover_lane(time_s)
            elif kind == "link_restore":
                if lane.serving:
                    lane.restore_link()
            elif kind == "kv_relieve":
                if lane.serving:
                    lane.relieve_kv_pressure()

        def next_fault_time() -> float | None:
            times = []
            if injector is not None:
                head = injector.peek()
                if head is not None:
                    times.append(head)
            if recoveries:
                times.append(recoveries[0][0])
            return min(times) if times else None

        def pump_faults(up_to: float) -> None:
            """Apply every fault onset and restoration due by ``up_to``.

            Restorations win time ties so a lane repaired exactly when the
            next fault (or arrival) lands is already serving again.
            """
            while True:
                t_rec = recoveries[0][0] if recoveries else None
                t_ev = injector.peek() if injector is not None else None
                if (
                    t_rec is not None
                    and t_rec <= up_to
                    and (t_ev is None or t_rec <= t_ev)
                ):
                    time_s, _, kind, lane = heapq.heappop(recoveries)
                    apply_recovery_event(kind, lane, time_s)
                    continue
                if t_ev is not None and t_ev <= up_to:
                    for event in injector.pop_due(t_ev):
                        apply_fault_event(event)
                    continue
                return

        while True:
            act = acting_lane()
            t_fault = next_fault_time()
            if t_fault is not None:
                # Pump faults only while a serving horizon exists — a
                # runnable lane or a pending arrival the fault could
                # land before. With neither, the run is over: a
                # rate-based (unbounded) clause must not keep the loop
                # consuming its infinite Poisson stream, so trailing
                # events after the last settlement are never applied.
                horizon = [act.clock.now] if act is not None else []
                if pending:
                    horizon.append(pending[0][0])
                if horizon and t_fault <= min(horizon):
                    pump_faults(t_fault)
                    continue
            if pending and (act is None or pending[0][0] <= act.clock.now):
                # Every lane with work has reached the arrival time (or the
                # pool is idle — early admission: service still begins no
                # sooner than the arrival itself).
                t_queue, seq, request = heapq.heappop(pending)
                admit(seq, request, t_queue)
                continue
            if act is None:
                break
            if self._late_policy == "drop" and drop_expired(act):
                continue

            clock = act.clock
            if act.batching == "continuous":
                # Iteration-level admission: every runnable session that
                # has arrived (or already started) joins this iteration's
                # jointly-costed batch; later arrivals join the next one.
                members = [
                    h for h in lane_runnable(act)
                    if h.start_s is not None or h.arrival_s <= clock.now
                ]
                if members:
                    turn = self._batcher.run_iteration(
                        act,
                        members,
                        turn=turn,
                        on_service_start=service_start,
                        charge_restore=charge_restore,
                        charge_growth=charge_growth,
                        on_done=settle,
                    )
                    # The lane clock sits at the batch horizon, not at any
                    # single member's position: force the next solo step
                    # to rebind (and restore) whichever session it picks.
                    current[act.index] = None
                    continue

            handle = self._scheduler.pick(lane_runnable(act), clock.now)
            session = handle.session
            if handle.start_s is None:
                service_start(act, handle)
                if handle.start_s > clock.now:
                    clock.advance(handle.start_s - clock.now)  # idle gap
                handle.binding.rebind(clock)
            elif handle is not current[act.index]:
                handle.binding.rebind(clock)
                charge_restore(act, handle)

            if session.state is SessionState.ADMITTED:
                session.step()  # zero-cost setup: plan, caches, workers
            session.step()  # one generation / verification / finalize round
            charge_growth(act, handle)
            capture_first_token(handle)
            handle.binding.sync(clock)
            handle.last_stepped = turn
            turn += 1
            current[act.index] = handle
            if session.state is SessionState.DONE:
                settle(handle, act)

        return FleetReport(
            records=tuple(records[seq] for seq in sorted(records)),
            results=results,
            scheduler=self._scheduler.name,
            placement=self._placement.name,
            devices=DeviceUtilization.rollup(
                tuple(records[seq] for seq in sorted(records)), lanes
            ),
            kv_sharing=(
                "prefix"
                if any(lane.ledger.segment_granular for lane in lanes)
                else "off"
            ),
            batching=(
                "continuous"
                if any(lane.batching == "continuous" for lane in lanes)
                else "off"
            ),
            late_policy=self._late_policy,
            faults=self._faults_label,
            recovery=self._recovery,
            router=self.router,
        )


def run_trace(
    trace,
    config: ServerConfig,
    *,
    scheduler: RequestScheduler | str = "fifo",
    placement: PlacementPolicy | str = "first_fit",
    devices: list[str] | None = None,
    oversubscription: str = "swap",
    kv_sharing: str = "off",
    batching: str = "off",
    late_policy: str = "serve_late",
    max_in_flight: int | None = None,
    faults: str = "off",
    recovery: str = "failover",
    retry_budget: int = 3,
    retry_backoff_s: float = 1.0,
    lanes: Sequence[LaneSpec] | None = None,
    router: RoutingPolicy | str | None = "off",
) -> FleetReport:
    """Drive an open-loop :class:`~repro.workloads.trace.Trace` end to end.

    Requests are submitted at their trace timestamps regardless of
    capacity — queues build, deadlines expire, and ``late_policy``
    decides whether expired queued requests are shed (``"drop"``) or
    served anyway (``"serve_late"``). The serving dynamics (step-length
    model, termination) come from the trace's ``base_dataset`` profile;
    each request's *problem* is rebuilt from its own ``(dataset, seed,
    index)`` coordinates, so a serialized trace replays byte-identically
    to the in-memory one that produced it.
    """
    from repro.search.registry import build_algorithm
    from repro.workloads.datasets import build_dataset
    from repro.workloads.trace import materialize_problems

    problems = materialize_problems(trace)
    server_dataset = build_dataset(trace.base_dataset, seed=trace.seed)
    fleet = TTSFleet(
        config,
        server_dataset,
        max_in_flight=max_in_flight,
        scheduler=scheduler,
        placement=placement,
        devices=devices,
        oversubscription=oversubscription,
        kv_sharing=kv_sharing,
        batching=batching,
        late_policy=late_policy,
        faults=faults,
        recovery=recovery,
        retry_budget=retry_budget,
        retry_backoff_s=retry_backoff_s,
        lanes=lanes,
        router=router,
    )
    for request in trace:
        fleet.submit(
            problems[request.request_id],
            build_algorithm(request.algorithm, request.n),
            arrival_s=request.arrival_s,
            deadline_s=request.deadline_s,
            ttft_slo_s=request.ttft_slo_s,
            tenant=request.tenant,
            slo_class=request.slo_class,
        )
    return fleet.drain()
