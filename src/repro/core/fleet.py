"""Multi-request serving: ``TTSFleet`` multiplexes queued solves on one device.

The figure experiments measure one solve at a time; a deployed edge system
sees a *stream* of requests. ``TTSFleet`` adds that serving dimension on
top of :class:`~repro.core.server.TTSServer`. Since the SolveSession
redesign the fleet no longer calls ``server.solve()`` run-to-completion:
every admitted request becomes one or more resumable
:class:`~repro.core.session.SolveSession` objects, and a pluggable
:class:`~repro.core.scheduler.RequestScheduler` policy decides, between
rounds, which session occupies the device next. That makes
smarter-than-FIFO serving (SJF, round-robin time-slicing, First-Finish
racing with cancellation) a policy choice instead of an architecture
change:

* requests carry **arrival times on the fleet's shared**
  :class:`~repro.engine.clock.SimClock`; each session keeps its own
  service-time clock, and a :class:`~repro.engine.clock.ClockBinding`
  anchors it onto the fleet timeline whenever the scheduler hands it the
  device;
* an arrival that lands *during* a solve preempts Phase-2 speculation via
  the session's arrival hook (Sec. 4.1.2), so a busy fleet automatically
  sheds speculative work;
* **admission control**: a request whose beam budget cannot be planned
  inside the KV budget is rejected up front (:class:`CapacityError` from
  the allocator), as is any arrival that would exceed ``max_in_flight``
  queued-plus-running requests (replica sessions of one request count
  once);
* the run aggregates into :class:`~repro.metrics.fleet.FleetMetrics` —
  request throughput, p50/p95 queueing delay, busy fraction, and
  cancelled-work time for racing schedulers.

Everything stays simulated and deterministic: a fleet run is a pure
function of (config, dataset, submitted requests, scheduler policy), and
``scheduler="fifo"`` reproduces the pre-session fleet byte for byte
(pinned by ``tests/goldens/fleet_fifo_goldens.json``).

Modeling simplification: sessions own private KV caches, and the
simulation does not yet charge cross-session KV contention — a paused
session's resident KV neither evicts other sessions' blocks nor pays
swap/recompute on resume. Run-to-completion policies (fifo, sjf) are
unaffected; for interleaving policies (round_robin, first_finish) the
reported latencies are therefore a lower bound on a device where many
sessions' KV cannot fit simultaneously. Charging that contention is an
open ROADMAP item (cross-request KV sharing inside ``TTSFleet``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.config import ServerConfig
from repro.core.scheduler import RequestScheduler, SessionHandle, build_scheduler
from repro.core.server import TTSServer
from repro.core.session import SessionState
from repro.engine.clock import ClockBinding, SimClock
from repro.errors import CapacityError
from repro.metrics.fleet import FleetMetrics, FleetRequestRecord
from repro.metrics.report import ProblemRunResult
from repro.search.base import SearchAlgorithm
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Dataset, Problem

__all__ = ["FleetRequest", "FleetReport", "TTSFleet", "generate_arrivals"]


def generate_arrivals(
    count: int,
    rate_rps: float,
    seed: int = 0,
    distribution: str = "poisson",
) -> tuple[float, ...]:
    """Deterministic arrival-time generator for fleet workloads.

    ``"poisson"`` draws exponential inter-arrival gaps at ``rate_rps`` from
    a keyed stream (same seed, same arrivals — everywhere); ``"uniform"``
    spaces requests exactly ``1/rate_rps`` apart.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if distribution == "uniform":
        return tuple(i / rate_rps for i in range(count))
    if distribution == "poisson":
        stream = KeyedRng(seed).stream("fleet-arrivals", count, rate_rps)
        gaps = stream.exponential(1.0 / rate_rps, size=count)
        times, now = [], 0.0
        for gap in gaps:
            now += float(gap)
            times.append(now)
        return tuple(times)
    raise ValueError(f"unknown arrival distribution {distribution!r}")


@dataclass(frozen=True, slots=True)
class FleetRequest:
    """One queued solve: a problem, its search budget, and when it arrived."""

    request_id: str
    problem: Problem
    algorithm: SearchAlgorithm
    arrival_s: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


@dataclass(frozen=True, slots=True)
class FleetReport:
    """Everything one drained fleet run produced."""

    records: tuple[FleetRequestRecord, ...]
    results: dict[str, ProblemRunResult] = field(default_factory=dict)
    scheduler: str = "fifo"

    @property
    def metrics(self) -> FleetMetrics:
        return FleetMetrics.aggregate(self.records)

    def table(self, title: str | None = None) -> str:
        return self.metrics.table(title=title)


@dataclass(slots=True)
class _RequestState:
    """Fleet-side lifecycle of one admitted request (and its replicas)."""

    request: FleetRequest
    seq: int
    handles: list[SessionHandle]
    start_s: float | None = None
    record: FleetRequestRecord | None = None

    @property
    def finished(self) -> bool:
        return self.record is not None


class TTSFleet:
    """Scheduler-driven multiplexing of solve requests over one device.

    Submit requests (``submit`` / ``submit_stream``), then ``drain()`` to
    simulate the whole run and collect the :class:`FleetReport`. The fleet
    owns a shared :class:`SimClock`; sessions run on private clocks that a
    :class:`ClockBinding` stitches onto the shared timeline round by
    round, so any :class:`RequestScheduler` policy — FIFO, SJF,
    round-robin, First-Finish racing — can interleave them.
    """

    def __init__(
        self,
        config: ServerConfig,
        dataset: Dataset,
        max_in_flight: int | None = None,
        scheduler: RequestScheduler | str = "fifo",
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 when set")
        self._server = TTSServer(config, dataset)
        self._clock = SimClock()
        self._max_in_flight = max_in_flight
        self._scheduler = (
            build_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self._queue: list[FleetRequest] = []
        self._next_id = 0
        # Allocation feasibility is a pure function of n for a fixed
        # dataset, so admission memoizes the (often expensive) plan search.
        self._kv_verdicts: dict[int, str | None] = {}

    # -- submission ------------------------------------------------------

    @property
    def server(self) -> TTSServer:
        return self._server

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def scheduler(self) -> RequestScheduler:
        return self._scheduler

    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrival_s: float = 0.0,
    ) -> str:
        """Queue one request; returns its fleet-assigned id."""
        request_id = f"req-{self._next_id:04d}"
        self._next_id += 1
        self._queue.append(
            FleetRequest(
                request_id=request_id,
                problem=problem,
                algorithm=algorithm,
                arrival_s=arrival_s,
            )
        )
        return request_id

    def submit_stream(
        self,
        problems: list[Problem],
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] | list[float],
    ) -> list[str]:
        """Queue one request per problem with the given arrival times."""
        if len(problems) != len(arrivals):
            raise ValueError("problems and arrivals must have the same length")
        return [
            self.submit(problem, algorithm, arrival_s=arrival)
            for problem, arrival in zip(problems, arrivals)
        ]

    # -- the serving loop ------------------------------------------------

    def _admission_reason(
        self,
        request: FleetRequest,
        finish_times: list[float],
        running_requests: int,
    ) -> str | None:
        """Admission control at arrival; returns a reject reason or ``None``."""
        if self._max_in_flight is not None:
            in_flight = running_requests + sum(
                1 for f in finish_times if f > request.arrival_s
            )
            if in_flight >= self._max_in_flight:
                return f"queue full (max_in_flight={self._max_in_flight})"
        n = request.algorithm.n
        if n not in self._kv_verdicts:
            try:
                self._server.plan_allocation(n)
            except CapacityError as error:
                self._kv_verdicts[n] = f"KV budget: {error}"
            else:
                self._kv_verdicts[n] = None
        return self._kv_verdicts[n]

    def drain(self) -> FleetReport:
        """Serve every queued request through the scheduler and aggregate.

        The loop alternates between admitting arrivals the shared clock
        has reached and asking the scheduler which runnable session gets
        the device for one round. Arrivals landing during a session's
        service reach its preemption hook (as offsets on that session's
        clock, plus an explicit signal for interleaved schedules), so
        speculation halts as soon as the fleet has a waiting customer —
        the same minimal-residual-work policy as ``TTSServer.serve_stream``.
        """
        order = sorted(
            range(len(self._queue)), key=lambda i: (self._queue[i].arrival_s, i)
        )
        requests = [self._queue[i] for i in order]
        self._queue = []

        pending: deque[tuple[int, FleetRequest]] = deque(enumerate(requests))
        states: dict[int, _RequestState] = {}
        records: dict[int, FleetRequestRecord] = {}
        results: dict[str, ProblemRunResult] = {}
        finish_times: list[float] = []
        clock = self._clock
        current: SessionHandle | None = None
        turn = 0

        def running_requests() -> int:
            return sum(1 for st in states.values() if not st.finished)

        def live_handles() -> list[SessionHandle]:
            return [
                h
                for st in states.values()
                if not st.finished
                for h in st.handles
                if h.runnable
            ]

        def admit(seq: int, request: FleetRequest) -> None:
            reason = self._admission_reason(request, finish_times, running_requests())
            if reason is not None:
                records[seq] = FleetRequestRecord(
                    request_id=request.request_id,
                    arrival_s=request.arrival_s,
                    start_s=request.arrival_s,
                    finish_s=request.arrival_s,
                    accepted=False,
                    reject_reason=reason,
                )
            else:
                sessions = self._scheduler.sessions_for(self._server, request)
                handles = [
                    SessionHandle(
                        request_id=request.request_id,
                        arrival_s=request.arrival_s,
                        seq=seq,
                        replica=replica,
                        session=session,
                        binding=ClockBinding(session.clock),
                    )
                    for replica, session in enumerate(sessions)
                ]
                states[seq] = _RequestState(request=request, seq=seq, handles=handles)
            # Either way somebody new showed up: running sessions must stop
            # speculating (round-granular analogue of the arrival offsets).
            for st in states.values():
                if st.finished or st.seq == seq:
                    continue
                for h in st.handles:
                    if h.start_s is not None and h.runnable:
                        h.session.notify_arrival()

        def settle(handle: SessionHandle) -> None:
            st = states[handle.seq]
            siblings = st.handles
            if self._scheduler.race_decided(handle, siblings):
                winner = handle
            elif all(not h.session.state.live for h in siblings):
                # Nobody produced a verified finish: the canonical replica
                # (identical to what FIFO would have served) stands.
                winner = next(h for h in siblings if h.replica == 0)
            else:
                return  # race continues
            cancelled_work = 0.0
            for h in siblings:
                if h is winner:
                    continue
                if h.session.state.live:
                    h.session.cancel()
                cancelled_work += h.session.clock.now
            result = winner.session.outcome.result
            records[st.seq] = FleetRequestRecord(
                request_id=st.request.request_id,
                arrival_s=st.request.arrival_s,
                start_s=st.start_s,
                finish_s=clock.now,
                latency=result.latency,
                replicas=len(siblings),
                cancelled_work_s=cancelled_work,
                # Device seconds across every session of the request; the
                # start→finish window also contains other requests' rounds
                # under interleaving schedulers.
                device_time_s=winner.session.clock.now + cancelled_work,
            )
            st.record = records[st.seq]
            results[st.request.request_id] = result
            finish_times.append(clock.now)

        while True:
            while pending and pending[0][1].arrival_s <= clock.now:
                admit(*pending.popleft())
            runnable = live_handles()
            if not runnable:
                if not pending:
                    break
                # Device idle: the next arrival can be admitted early —
                # its service still begins no sooner than its arrival.
                admit(*pending.popleft())
                continue

            handle = self._scheduler.pick(runnable, clock.now)
            session = handle.session
            if handle.start_s is None:
                start = max(clock.now, handle.arrival_s)
                handle.start_s = start
                st = states[handle.seq]
                if st.start_s is None:
                    st.start_s = start
                # Later arrivals expressed on the session's own clock (t=0
                # at service start); non-positive offsets mean someone is
                # already waiting and speculation never starts.
                session.set_arrival_offsets(
                    tuple(
                        req.arrival_s - start
                        for req in requests[handle.seq + 1:]
                    )
                )
                if start > clock.now:
                    clock.advance(start - clock.now)  # idle gap
                handle.binding.rebind(clock)
            elif handle is not current:
                handle.binding.rebind(clock)

            if session.state is SessionState.ADMITTED:
                session.step()  # zero-cost setup: plan, caches, workers
            session.step()  # one generation / verification / finalize round
            handle.binding.sync(clock)
            handle.last_stepped = turn
            turn += 1
            current = handle
            if session.state is SessionState.DONE:
                settle(handle)

        return FleetReport(
            records=tuple(records[seq] for seq in sorted(records)),
            results=results,
            scheduler=self._scheduler.name,
        )
