"""Multi-request serving: ``TTSFleet`` multiplexes queued solves on one device.

The figure experiments measure one solve at a time; a deployed edge system
sees a *stream* of requests. ``TTSFleet`` adds that serving dimension on
top of :class:`~repro.core.server.TTSServer` without touching the solve
loop:

* requests carry **arrival times on the fleet's shared**
  :class:`~repro.engine.clock.SimClock`; service is FIFO in arrival order
  (batch size 1, the paper's interactive edge scenario);
* an arrival that lands *during* a solve preempts Phase-2 speculation via
  the server's existing arrival hook (Sec. 4.1.2), so a busy fleet
  automatically sheds speculative work;
* **admission control**: a request whose beam budget cannot be planned
  inside the KV budget is rejected up front (:class:`CapacityError` from
  the allocator), as is any arrival that would exceed ``max_in_flight``
  queued-plus-running requests;
* the run aggregates into :class:`~repro.metrics.fleet.FleetMetrics` —
  request throughput, p50/p95 queueing delay, busy fraction.

Everything stays simulated and deterministic: a fleet run is a pure
function of (config, dataset, submitted requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ServerConfig
from repro.core.server import TTSServer
from repro.engine.clock import SimClock
from repro.errors import CapacityError
from repro.metrics.fleet import FleetMetrics, FleetRequestRecord
from repro.metrics.report import ProblemRunResult
from repro.search.base import SearchAlgorithm
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Dataset, Problem

__all__ = ["FleetRequest", "FleetReport", "TTSFleet", "generate_arrivals"]


def generate_arrivals(
    count: int,
    rate_rps: float,
    seed: int = 0,
    distribution: str = "poisson",
) -> tuple[float, ...]:
    """Deterministic arrival-time generator for fleet workloads.

    ``"poisson"`` draws exponential inter-arrival gaps at ``rate_rps`` from
    a keyed stream (same seed, same arrivals — everywhere); ``"uniform"``
    spaces requests exactly ``1/rate_rps`` apart.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if distribution == "uniform":
        return tuple(i / rate_rps for i in range(count))
    if distribution == "poisson":
        stream = KeyedRng(seed).stream("fleet-arrivals", count, rate_rps)
        gaps = stream.exponential(1.0 / rate_rps, size=count)
        times, now = [], 0.0
        for gap in gaps:
            now += float(gap)
            times.append(now)
        return tuple(times)
    raise ValueError(f"unknown arrival distribution {distribution!r}")


@dataclass(frozen=True, slots=True)
class FleetRequest:
    """One queued solve: a problem, its search budget, and when it arrived."""

    request_id: str
    problem: Problem
    algorithm: SearchAlgorithm
    arrival_s: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


@dataclass(frozen=True, slots=True)
class FleetReport:
    """Everything one drained fleet run produced."""

    records: tuple[FleetRequestRecord, ...]
    results: dict[str, ProblemRunResult] = field(default_factory=dict)

    @property
    def metrics(self) -> FleetMetrics:
        return FleetMetrics.aggregate(self.records)

    def table(self, title: str | None = None) -> str:
        return self.metrics.table(title=title)


class TTSFleet:
    """FIFO multiplexing of many solve requests over one simulated device.

    Submit requests (``submit`` / ``submit_stream``), then ``drain()`` to
    simulate the whole run and collect the :class:`FleetReport`. The fleet
    owns a shared :class:`SimClock`; per-request solve latencies come from
    the underlying server and are stitched onto that clock.
    """

    def __init__(
        self,
        config: ServerConfig,
        dataset: Dataset,
        max_in_flight: int | None = None,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 when set")
        self._server = TTSServer(config, dataset)
        self._clock = SimClock()
        self._max_in_flight = max_in_flight
        self._queue: list[FleetRequest] = []
        self._next_id = 0
        # Allocation feasibility is a pure function of n for a fixed
        # dataset, so admission memoizes the (often expensive) plan search.
        self._kv_verdicts: dict[int, str | None] = {}

    # -- submission ------------------------------------------------------

    @property
    def server(self) -> TTSServer:
        return self._server

    @property
    def clock(self) -> SimClock:
        return self._clock

    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(
        self,
        problem: Problem,
        algorithm: SearchAlgorithm,
        arrival_s: float = 0.0,
    ) -> str:
        """Queue one request; returns its fleet-assigned id."""
        request_id = f"req-{self._next_id:04d}"
        self._next_id += 1
        self._queue.append(
            FleetRequest(
                request_id=request_id,
                problem=problem,
                algorithm=algorithm,
                arrival_s=arrival_s,
            )
        )
        return request_id

    def submit_stream(
        self,
        problems: list[Problem],
        algorithm: SearchAlgorithm,
        arrivals: tuple[float, ...] | list[float],
    ) -> list[str]:
        """Queue one request per problem with the given arrival times."""
        if len(problems) != len(arrivals):
            raise ValueError("problems and arrivals must have the same length")
        return [
            self.submit(problem, algorithm, arrival_s=arrival)
            for problem, arrival in zip(problems, arrivals)
        ]

    # -- the serving loop ------------------------------------------------

    def _admit(self, request: FleetRequest, finish_times: list[float]) -> str | None:
        """Admission control at arrival; returns a reject reason or ``None``."""
        if self._max_in_flight is not None:
            in_flight = sum(1 for f in finish_times if f > request.arrival_s)
            if in_flight >= self._max_in_flight:
                return f"queue full (max_in_flight={self._max_in_flight})"
        n = request.algorithm.n
        if n not in self._kv_verdicts:
            try:
                self._server.plan_allocation(n)
            except CapacityError as error:
                self._kv_verdicts[n] = f"KV budget: {error}"
            else:
                self._kv_verdicts[n] = None
        return self._kv_verdicts[n]

    def drain(self) -> FleetReport:
        """Serve every queued request in arrival order and aggregate.

        Arrivals landing during a solve are handed to the server's
        preemption hook (relative to that solve's start), so speculation
        halts as soon as the fleet has a waiting customer — the same
        minimal-residual-work policy as ``TTSServer.serve_stream``.
        """
        order = sorted(
            range(len(self._queue)), key=lambda i: (self._queue[i].arrival_s, i)
        )
        requests = [self._queue[i] for i in order]
        self._queue = []

        records: list[FleetRequestRecord] = []
        results: dict[str, ProblemRunResult] = {}
        finish_times: list[float] = []
        for index, request in enumerate(requests):
            reason = self._admit(request, finish_times)
            if reason is not None:
                records.append(
                    FleetRequestRecord(
                        request_id=request.request_id,
                        arrival_s=request.arrival_s,
                        start_s=request.arrival_s,
                        finish_s=request.arrival_s,
                        accepted=False,
                        reject_reason=reason,
                    )
                )
                continue
            start = max(self._clock.now, request.arrival_s)
            # Later arrivals expressed on the request's own clock (t=0 at
            # service start); non-positive offsets mean someone is already
            # waiting and speculation never starts.
            pending_offsets = tuple(
                later.arrival_s - start for later in requests[index + 1:]
            )
            result = self._server.solve(
                request.problem, request.algorithm, arrivals=pending_offsets
            )
            if start > self._clock.now:
                self._clock.advance(start - self._clock.now)  # idle gap
            self._clock.advance(result.latency.total)
            finish = self._clock.now
            finish_times.append(finish)
            results[request.request_id] = result
            records.append(
                FleetRequestRecord(
                    request_id=request.request_id,
                    arrival_s=request.arrival_s,
                    start_s=start,
                    finish_s=finish,
                    latency=result.latency,
                )
            )
        return FleetReport(records=tuple(records), results=results)
