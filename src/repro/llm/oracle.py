"""Latent quality model: the ground truth behind generation and verification.

Real reasoning LLMs produce steps of varying *soundness*; a PRM observes
that soundness noisily; final-answer correctness correlates with it. This
module encodes that causal chain with three knobs per model:

* **generator skill** — mean step soundness, scaling logarithmically with
  parameter count (a 7B generator is meaningfully but not magically better
  than a 1.5B one);
* **verifier noise** — how blurry the PRM's view of soundness is, shrinking
  with verifier size;
* **subtree bias** — a persistent per-branch score offset. PRM errors are
  not i.i.d.: once a verifier over-rates a line of reasoning it keeps
  over-rating its descendants. This is what makes diverse selection (DVTS)
  beat plain beam search on accuracy (paper Fig. 3 left), because global
  top-K selection herds every beam into over-rated subtrees.

Every draw is keyed by ``(problem, lineage, step)`` so results are
schedule-invariant (see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.spec import ModelSpec
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Problem

__all__ = [
    "generator_skill",
    "verifier_noise_scale",
    "QualityOracle",
    "sigmoid",
]

_REFERENCE_PARAMS = 1.54e9  # Qwen2.5-Math-1.5B, the paper's anchor model
_SKILL_AT_REFERENCE = 0.90
_SKILL_PER_DECADE = 0.93
_NOISE_AT_REFERENCE = 0.45
_NOISE_SHRINK_EXPONENT = 0.35
_SOUNDNESS_STD = 0.65
_APPROACH_STD = 0.70
_SUBTREE_BIAS_STD = 0.55
_CORRECTNESS_GAIN = 1.6
# Wrong answers are not uniform noise: most flawed derivations land on a
# handful of problem-specific "attractor" values (sign slips, off-by-one
# counts), which is what keeps majority voting honest. A Zipf-weighted
# distractor pool models that clustering; a scatter fraction covers truly
# idiosyncratic mistakes.
_N_DISTRACTORS = 4
_SCATTER_FRACTION = 0.25
# Beams duplicated within one subtree produce near-identical conclusions:
# their answer draws share the subtree's uniform with this probability
# (comonotonic coupling). Herded searches therefore cast what is
# effectively a single vote per subtree, while diverse searches cast
# independent ones — the accuracy mechanism behind DVTS.
_VOTE_CORRELATION = 0.6


def sigmoid(x: float) -> float:
    """Numerically stable logistic function."""
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    z = math.exp(x)
    return z / (1.0 + z)


def generator_skill(model: ModelSpec) -> float:
    """Mean step soundness of a generator, by parameter count."""
    decades = math.log10(model.param_count / _REFERENCE_PARAMS)
    return _SKILL_AT_REFERENCE + _SKILL_PER_DECADE * decades


def verifier_noise_scale(model: ModelSpec) -> float:
    """Std of the PRM's per-step observation noise, by parameter count."""
    scale = (model.param_count / _REFERENCE_PARAMS) ** _NOISE_SHRINK_EXPONENT
    return _NOISE_AT_REFERENCE / scale


@dataclass(frozen=True)
class QualityOracle:
    """Deterministic access to the latent quality process.

    One oracle is shared by generator and verifier simulators so that both
    observe the *same* latent soundness values for a path.
    """

    rng: KeyedRng

    def approach_quality(self, problem: Problem, lineage: tuple[int, ...]) -> float:
        """Persistent quality of the solution *approach* a root beam chose.

        The first thinking step commits a path to an approach (induction vs
        coordinates vs casework...); its quality persists down the whole
        subtree and cannot be rescued later. This is why answer votes
        correlate within a subtree and why forced subtree diversity (DVTS)
        buys accuracy that global top-K selection cannot.
        """
        if not lineage:
            return 0.0
        return self.rng.normal(
            "approach", problem.problem_id, lineage[0], loc=0.0, scale=_APPROACH_STD
        )

    def step_soundness(
        self, problem: Problem, lineage: tuple[int, ...], step_idx: int, skill: float
    ) -> float:
        """Latent soundness of one thinking step.

        Centered on ``skill - difficulty`` plus the subtree's persistent
        approach quality: stronger models on easier problems with a good
        approach reason more soundly.
        """
        return self.rng.normal(
            "soundness",
            problem.problem_id,
            lineage,
            step_idx,
            loc=skill - problem.difficulty + self.approach_quality(problem, lineage),
            scale=_SOUNDNESS_STD,
        )

    def subtree_bias(self, problem: Problem, lineage: tuple[int, ...]) -> float:
        """Persistent verifier bias inherited from the first branch point.

        Paths in the same first-level subtree share one bias draw, so PRM
        scores are correlated along a reasoning line (the property the
        speculative-candidate heuristic exploits, paper Sec. 4.1.1).
        """
        if not lineage:
            return 0.0
        return self.rng.normal(
            "subtree-bias",
            problem.problem_id,
            lineage[0],
            loc=0.0,
            scale=_SUBTREE_BIAS_STD,
        )

    def correctness_probability(self, mean_soundness: float) -> float:
        """P(final answer correct | mean step soundness of the path)."""
        return sigmoid(_CORRECTNESS_GAIN * mean_soundness)

    def distractors(self, problem: Problem) -> list[int]:
        """The problem's attractor wrong answers (stable per problem)."""
        values = []
        for j in range(_N_DISTRACTORS):
            wrong = self.rng.randint(
                "distractor-value", problem.problem_id, j, low=0, high=999
            )
            if wrong >= problem.answer:
                wrong += 1  # never collide with the truth
            values.append(wrong)
        return values

    def emit_answer(
        self, problem: Problem, lineage: tuple[int, ...], mean_soundness: float
    ) -> tuple[bool, int]:
        """Sample the final answer for a terminated path.

        Correct answers coincide on the ground truth; wrong answers mostly
        cluster on the problem's Zipf-weighted distractors, with a scatter
        fraction of per-path idiosyncratic values. Majority voting must
        therefore beat the heaviest distractor, not just any noise.
        """
        p_correct = self.correctness_probability(mean_soundness)
        shared_vote = (
            self.rng.uniform("vote-coupling", problem.problem_id, lineage)
            < _VOTE_CORRELATION
        )
        vote_key: tuple = lineage[:1] if shared_vote and lineage else lineage
        is_correct = (
            self.rng.uniform("answer-correct", problem.problem_id, vote_key) < p_correct
        )
        if is_correct:
            return True, problem.answer
        scatter_draw = self.rng.uniform("answer-scatter", problem.problem_id, vote_key)
        if scatter_draw < _SCATTER_FRACTION:
            wrong = self.rng.randint(
                "answer-wrong", problem.problem_id, vote_key, low=0, high=999
            )
            if wrong >= problem.answer:
                wrong += 1
            return False, wrong
        pick = self.rng.choice_index(
            "distractor-pick",
            problem.problem_id,
            vote_key,
            weights=[1.0 / (j + 1) for j in range(_N_DISTRACTORS)],
        )
        return False, self.distractors(problem)[pick]
