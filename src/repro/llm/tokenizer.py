"""Synthetic tokenizer: renders deterministic pseudo-text for examples.

The simulator reasons about token *counts*; this tokenizer exists so that
runnable examples can show something human-shaped. It builds a syllable
vocabulary, maps ids to pseudo-words, and renders a thinking step's opening
tokens from the step's keyed RNG stream — so printed text, like everything
else, is reproducible.
"""

from __future__ import annotations

from repro.utils.rng import KeyedRng

__all__ = ["SyntheticTokenizer"]

_ONSETS = ["th", "pr", "qu", "st", "gr", "pl", "v", "m", "s", "d", "l", "r", "n", "k"]
_NUCLEI = ["a", "e", "i", "o", "u", "ia", "eo"]
_CODAS = ["n", "m", "r", "s", "t", "x", "", "th", "nd"]
_MATH_TOKENS = [
    "triangle", "circle", "modulo", "integer", "sum", "prime", "root",
    "angle", "ratio", "sequence", "polynomial", "factor", "digit", "square",
]


class SyntheticTokenizer:
    """Deterministic id<->pseudo-word mapping with step rendering."""

    def __init__(self, vocab_size: int = 4096) -> None:
        if vocab_size < len(_MATH_TOKENS) + 2:
            raise ValueError("vocab_size too small")
        self._vocab_size = vocab_size

    @property
    def vocab_size(self) -> int:
        return self._vocab_size

    def decode_id(self, token_id: int) -> str:
        """Map one token id to its pseudo-word (stable across calls)."""
        if not 0 <= token_id < self._vocab_size:
            raise ValueError(f"token id {token_id} out of range")
        if token_id < len(_MATH_TOKENS):
            return _MATH_TOKENS[token_id]
        h = token_id * 2654435761 % 2**32
        onset = _ONSETS[h % len(_ONSETS)]
        nucleus = _NUCLEI[(h >> 8) % len(_NUCLEI)]
        coda = _CODAS[(h >> 16) % len(_CODAS)]
        suffix = "" if token_id < self._vocab_size // 2 else _NUCLEI[(h >> 24) % len(_NUCLEI)]
        return onset + nucleus + coda + suffix

    def decode(self, token_ids: list[int]) -> str:
        """Join pseudo-words into a sentence-ish string."""
        return " ".join(self.decode_id(t) for t in token_ids)

    def render_step(
        self,
        rng: KeyedRng,
        problem_id: str,
        lineage: tuple[int, ...],
        step_idx: int,
        n_tokens: int,
        preview: int = 18,
    ) -> str:
        """Render the first ``preview`` tokens of a step as pseudo-text.

        Drawn from the step's addressed stream, biased toward the "math"
        vocabulary so output reads vaguely like competition reasoning.
        """
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        count = min(preview, n_tokens)
        stream = rng.stream("render", problem_id, lineage, step_idx)
        ids = []
        for _ in range(count):
            if stream.random() < 0.3:
                ids.append(int(stream.integers(0, len(_MATH_TOKENS))))
            else:
                ids.append(int(stream.integers(len(_MATH_TOKENS), self._vocab_size)))
        text = self.decode(ids)
        if n_tokens > count:
            text += f" ... [+{n_tokens - count} tokens]"
        return text
