"""Token sampling primitives.

The serving simulation never needs concrete token ids, but the examples and
the synthetic tokenizer do (to render believable step text), and sampling
with temperature / top-k / top-p is part of any serving stack's public
surface. This implementation operates on explicit logit arrays and a
caller-supplied generator, so it is deterministic and unit-testable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_token", "sample_tokens", "apply_top_k", "apply_top_p"]


def apply_top_k(logits: np.ndarray, top_k: int) -> np.ndarray:
    """Mask all but the ``top_k`` highest logits with ``-inf``."""
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    if top_k >= logits.size:
        return logits.astype(np.float64, copy=True)
    out = logits.astype(np.float64, copy=True)
    threshold = np.partition(out, -top_k)[-top_k]
    out[out < threshold] = -np.inf
    return out


def apply_top_p(logits: np.ndarray, top_p: float) -> np.ndarray:
    """Nucleus filtering: keep the smallest prefix with mass >= ``top_p``."""
    if not 0.0 < top_p <= 1.0:
        raise ValueError("top_p must be in (0, 1]")
    out = logits.astype(np.float64, copy=True)
    order = np.argsort(out)[::-1]
    probs = _softmax(out[order])
    keep = np.cumsum(probs) - probs < top_p  # first token always kept
    out[order[~keep]] = -np.inf
    return out


def sample_token(
    logits: np.ndarray,
    generator: np.random.Generator,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
) -> int:
    """Sample one token id from logits with the usual decoding knobs.

    ``temperature == 0`` means greedy argmax.
    """
    work = np.asarray(logits, dtype=np.float64)
    if work.ndim != 1 or work.size == 0:
        raise ValueError("logits must be a non-empty 1-D array")
    if temperature < 0:
        raise ValueError("temperature must be non-negative")
    if temperature == 0.0:
        return int(np.argmax(work))
    work = work / temperature
    if top_k is not None:
        work = apply_top_k(work, top_k)
    if top_p is not None:
        work = apply_top_p(work, top_p)
    probs = _softmax(work)
    return int(generator.choice(work.size, p=probs))


def sample_tokens(
    logits: np.ndarray,
    generator: np.random.Generator,
    n: int,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
) -> list[int]:
    """Sample ``n`` i.i.d. tokens from one logit vector."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [
        sample_token(logits, generator, temperature=temperature, top_k=top_k, top_p=top_p)
        for _ in range(n)
    ]


def _softmax(logits: np.ndarray) -> np.ndarray:
    finite = logits[np.isfinite(logits)]
    if finite.size == 0:
        raise ValueError("all logits were filtered out")
    shifted = logits - finite.max()
    exp = np.where(np.isfinite(shifted), np.exp(shifted), 0.0)
    return exp / exp.sum()
