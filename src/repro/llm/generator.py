"""Step-structured reasoning generator simulator.

The generator's observable behaviour — the only thing the serving system
reacts to — is: *how many tokens does this beam's next thinking step have,
does the path terminate after it, and how sound was the reasoning*. All
three are pure functions of ``(problem, lineage, step)`` via keyed RNG,
making generation order-independent: a speculative execution of step ``k+1``
produces exactly the tokens a non-speculative execution would have.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.oracle import QualityOracle, generator_skill, sigmoid
from repro.models.spec import ModelRole, ModelSpec
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Dataset, Problem

__all__ = ["StepPlan", "SimulatedGenerator"]


@dataclass(frozen=True, slots=True)
class StepPlan:
    """Everything knowable about one thinking step once it is generated."""

    n_tokens: int
    is_terminal: bool
    soundness: float


class SimulatedGenerator:
    """Deterministic synthetic generator for one model + dataset pair."""

    def __init__(self, model: ModelSpec, dataset: Dataset, rng: KeyedRng) -> None:
        if model.role is not ModelRole.GENERATOR:
            raise ValueError(f"{model.name} is not a generator model")
        self._model = model
        self._dataset = dataset
        self._rng = rng
        self._oracle = QualityOracle(rng=rng.fork("oracle"))
        self._skill = generator_skill(model)

    @property
    def model(self) -> ModelSpec:
        return self._model

    @property
    def skill(self) -> float:
        return self._skill

    @property
    def oracle(self) -> QualityOracle:
        return self._oracle

    def plan_step(
        self,
        problem: Problem,
        lineage: tuple[int, ...],
        step_idx: int,
        max_step_tokens: int | None = None,
    ) -> StepPlan:
        """Resolve one thinking step for the addressed beam.

        ``max_step_tokens`` lets search variants impose per-step budgets
        (Varying Granularity). A tighter budget truncates the step but does
        not change the termination or soundness draws, mirroring how real
        systems cap ``max_tokens`` without altering the sampling recipe.
        """
        if step_idx < 0:
            raise ValueError("step_idx must be non-negative")
        n_tokens = self._dataset.step_model.sample(
            self._rng, problem.problem_id, lineage, step_idx, cap=max_step_tokens
        )
        soundness = self._oracle.step_soundness(problem, lineage, step_idx, self._skill)
        return StepPlan(
            n_tokens=n_tokens,
            is_terminal=self._is_terminal(problem, lineage, step_idx, soundness),
            soundness=soundness,
        )

    def _is_terminal(
        self,
        problem: Problem,
        lineage: tuple[int, ...],
        step_idx: int,
        soundness: float,
    ) -> bool:
        """Does the path emit its final answer at the end of this step?

        Sounder reasoning converges sooner: the per-step termination rate is
        scaled by a logistic function of the step's soundness (range 0.5x to
        1.5x the dataset rate). This is why verifier-guided searches that
        keep the strongest beams (beam search) finish earlier than searches
        that deliberately retain diversity (DVTS) — the latency ordering of
        the paper's Fig. 3 (left). Both inputs are keyed draws, so
        termination remains schedule-invariant.
        """
        steps_done = step_idx + 1
        if steps_done >= self._dataset.max_steps:
            return True
        if steps_done < self._dataset.min_steps:
            return False
        rate = self._dataset.termination_rate * (0.4 + 1.2 * sigmoid(soundness))
        draw = self._rng.uniform("terminal", problem.problem_id, lineage, step_idx)
        return draw < rate

    def final_answer(
        self, problem: Problem, lineage: tuple[int, ...], mean_soundness: float
    ) -> tuple[bool, int]:
        """Emit the terminated path's answer via the oracle."""
        return self._oracle.emit_answer(problem, lineage, mean_soundness)
