"""Discriminative Process Reward Model simulator.

The paper targets discriminative PRMs (Sec. 2.2): one prefill pass over the
reasoning path yields a score per intermediate step. This simulator scores
a path's step as a noisy logistic observation of the path's latent mean
soundness, with two structured error terms:

* a persistent *subtree bias* inherited from the first branch point, which
  correlates consecutive-step scores (exploited by SelectSPEC) and makes
  pure top-K selection herd into over-rated subtrees (why DVTS helps);
* fresh per-step noise whose scale shrinks with verifier parameter count
  (a 7B Shepherd is a sharper judge than a 1.5B Skywork).

Scores land in (0, 1) like real PRM probabilities.
"""

from __future__ import annotations

from repro.llm.oracle import QualityOracle, sigmoid, verifier_noise_scale
from repro.models.spec import ModelRole, ModelSpec
from repro.utils.rng import KeyedRng
from repro.workloads.problem import Problem

__all__ = ["SimulatedPRM"]

_SCORE_GAIN = 1.2
_SCORE_OFFSET = 0.35  # mild optimism, as observed in public PRMs


class SimulatedPRM:
    """Deterministic synthetic PRM for one verifier model."""

    def __init__(self, model: ModelSpec, oracle: QualityOracle, rng: KeyedRng) -> None:
        if model.role is not ModelRole.VERIFIER:
            raise ValueError(f"{model.name} is not a verifier model")
        self._model = model
        self._oracle = oracle
        self._rng = rng
        self._noise_scale = verifier_noise_scale(model)

    @property
    def model(self) -> ModelSpec:
        return self._model

    @property
    def noise_scale(self) -> float:
        return self._noise_scale

    def score_step(
        self,
        problem: Problem,
        lineage: tuple[int, ...],
        step_idx: int,
        mean_soundness: float,
    ) -> float:
        """Score the path after ``step_idx`` given its latent mean soundness.

        Keyed by the path and step only — the same step scored during
        LookAhead Verification and scored conventionally one iteration
        later yields the identical number, which is what makes lookahead
        algorithm-preserving.
        """
        if step_idx < 0:
            raise ValueError("step_idx must be non-negative")
        bias = self._oracle.subtree_bias(problem, lineage)
        noise = self._rng.normal(
            "prm-noise",
            problem.problem_id,
            lineage,
            step_idx,
            loc=0.0,
            scale=self._noise_scale,
        )
        return sigmoid(_SCORE_GAIN * mean_soundness + _SCORE_OFFSET + bias + noise)
