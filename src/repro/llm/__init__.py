"""Simulated LLM layer: oracle, generator, PRM verifier, sampler, tokenizer."""

from repro.llm.generator import SimulatedGenerator, StepPlan
from repro.llm.oracle import (
    QualityOracle,
    generator_skill,
    sigmoid,
    verifier_noise_scale,
)
from repro.llm.sampler import apply_top_k, apply_top_p, sample_token, sample_tokens
from repro.llm.tokenizer import SyntheticTokenizer
from repro.llm.verifier import SimulatedPRM

__all__ = [
    "SimulatedGenerator",
    "StepPlan",
    "SimulatedPRM",
    "QualityOracle",
    "generator_skill",
    "verifier_noise_scale",
    "sigmoid",
    "SyntheticTokenizer",
    "sample_token",
    "sample_tokens",
    "apply_top_k",
    "apply_top_p",
]
