"""Tests for the simulated step-structured generator."""

import numpy as np
import pytest

from repro.llm.generator import SimulatedGenerator
from repro.models.zoo import QWEN25_MATH_1P5B, SKYWORK_PRM_1P5B
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset


@pytest.fixture
def dataset():
    return build_dataset("aime24", seed=3, size=2)


@pytest.fixture
def generator(dataset):
    return SimulatedGenerator(QWEN25_MATH_1P5B, dataset, KeyedRng(3))


@pytest.fixture
def problem(dataset):
    return list(dataset)[0]


class TestPlanStep:
    def test_deterministic(self, generator, problem):
        a = generator.plan_step(problem, (0,), 0)
        b = generator.plan_step(problem, (0,), 0)
        assert a == b

    def test_schedule_invariant(self, generator, problem):
        """Interleaving other plan calls never changes a step."""
        first = generator.plan_step(problem, (1,), 2)
        for i in range(20):
            generator.plan_step(problem, (i + 50,), 0)
        assert generator.plan_step(problem, (1,), 2) == first

    def test_token_bounds(self, generator, problem, dataset):
        for i in range(100):
            plan = generator.plan_step(problem, (i,), 0)
            assert dataset.step_model.min_tokens <= plan.n_tokens
            assert plan.n_tokens <= dataset.step_model.max_tokens

    def test_step_cap_applies(self, generator, problem):
        plan = generator.plan_step(problem, (0,), 0, max_step_tokens=64)
        assert plan.n_tokens <= 64

    def test_cap_does_not_change_soundness(self, generator, problem):
        capped = generator.plan_step(problem, (0,), 0, max_step_tokens=16)
        free = generator.plan_step(problem, (0,), 0)
        assert capped.soundness == free.soundness
        assert capped.is_terminal == free.is_terminal

    def test_negative_step_raises(self, generator, problem):
        with pytest.raises(ValueError):
            generator.plan_step(problem, (0,), -1)

    def test_heavy_tail(self, generator, problem):
        """Fig. 3 right: outlier steps dwarf the average."""
        lengths = [generator.plan_step(problem, (i,), 0).n_tokens for i in range(400)]
        assert max(lengths) > 3 * np.mean(lengths)


class TestTermination:
    def test_max_steps_forces_terminal(self, generator, problem, dataset):
        lineage = tuple(0 for _ in range(dataset.max_steps))
        plan = generator.plan_step(problem, lineage, dataset.max_steps - 1)
        assert plan.is_terminal

    def test_before_min_steps_never_terminal(self, generator, problem, dataset):
        for i in range(50):
            plan = generator.plan_step(problem, (i,), 0)
            if dataset.min_steps > 1:
                assert not plan.is_terminal

    def test_sound_paths_terminate_sooner(self, generator, problem, dataset):
        """The latency mechanism behind Fig. 3's method ordering."""
        step = dataset.min_steps  # first round where termination is possible
        outcomes = []
        for i in range(800):
            lineage = tuple([i] + [0] * step)
            plan = generator.plan_step(problem, lineage, step)
            outcomes.append((plan.soundness, plan.is_terminal))
        sound = [t for s, t in outcomes if s > 0.5]
        unsound = [t for s, t in outcomes if s < -0.5]
        assert np.mean(sound) > np.mean(unsound)


class TestRoleValidation:
    def test_verifier_model_rejected(self, dataset):
        with pytest.raises(ValueError):
            SimulatedGenerator(SKYWORK_PRM_1P5B, dataset, KeyedRng(0))


class TestFinalAnswer:
    def test_final_answer_deterministic(self, generator, problem):
        assert generator.final_answer(problem, (0,), 0.3) == generator.final_answer(
            problem, (0,), 0.3
        )
