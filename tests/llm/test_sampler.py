"""Tests for the token sampling primitives."""

import numpy as np
import pytest

from repro.llm.sampler import apply_top_k, apply_top_p, sample_token, sample_tokens


@pytest.fixture
def generator():
    return np.random.Generator(np.random.PCG64(7))


class TestTopK:
    def test_masks_all_but_k(self):
        logits = np.array([1.0, 5.0, 3.0, 2.0])
        out = apply_top_k(logits, 2)
        assert np.isneginf(out[0]) and np.isneginf(out[3])
        assert out[1] == 5.0 and out[2] == 3.0

    def test_k_geq_size_is_identity(self):
        logits = np.array([1.0, 2.0])
        assert np.array_equal(apply_top_k(logits, 5), logits)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            apply_top_k(np.array([1.0]), 0)


class TestTopP:
    def test_keeps_top_mass(self):
        logits = np.array([10.0, 0.0, 0.0, 0.0])
        out = apply_top_p(logits, 0.9)
        assert np.isfinite(out[0])
        assert all(np.isneginf(out[1:]))

    def test_always_keeps_best(self):
        logits = np.array([1.0, 1.0, 1.0])
        out = apply_top_p(logits, 0.01)
        assert np.isfinite(out).sum() >= 1

    def test_p_one_is_identity(self):
        logits = np.array([1.0, 2.0, 3.0])
        assert np.isfinite(apply_top_p(logits, 1.0)).all()

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            apply_top_p(np.array([1.0]), 0.0)


class TestSampleToken:
    def test_greedy_at_zero_temperature(self, generator):
        logits = np.array([0.1, 9.0, 0.2])
        assert sample_token(logits, generator, temperature=0.0) == 1

    def test_respects_top_k(self, generator):
        logits = np.array([0.0, 10.0, 9.0, 0.0])
        picks = {sample_token(logits, generator, top_k=2) for _ in range(50)}
        assert picks <= {1, 2}

    def test_distribution_follows_logits(self, generator):
        logits = np.array([0.0, 2.0])
        picks = [sample_token(logits, generator) for _ in range(500)]
        assert np.mean(picks) > 0.7  # softmax(2)/... ~ 0.88

    def test_rejects_empty(self, generator):
        with pytest.raises(ValueError):
            sample_token(np.array([]), generator)

    def test_rejects_negative_temperature(self, generator):
        with pytest.raises(ValueError):
            sample_token(np.array([1.0]), generator, temperature=-1.0)

    def test_sample_tokens_count(self, generator):
        assert len(sample_tokens(np.array([1.0, 2.0]), generator, 7)) == 7

    def test_sample_tokens_zero(self, generator):
        assert sample_tokens(np.array([1.0]), generator, 0) == []
