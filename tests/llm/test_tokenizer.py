"""Tests for the synthetic tokenizer."""

import pytest

from repro.llm.tokenizer import SyntheticTokenizer
from repro.utils.rng import KeyedRng


@pytest.fixture
def tokenizer():
    return SyntheticTokenizer(vocab_size=512)


class TestTokenizer:
    def test_decode_id_stable(self, tokenizer):
        assert tokenizer.decode_id(100) == tokenizer.decode_id(100)

    def test_math_tokens_first(self, tokenizer):
        assert tokenizer.decode_id(0) == "triangle"

    def test_out_of_range_raises(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.decode_id(512)
        with pytest.raises(ValueError):
            tokenizer.decode_id(-1)

    def test_decode_joins(self, tokenizer):
        text = tokenizer.decode([0, 1])
        assert text == "triangle circle"

    def test_render_step_deterministic(self, tokenizer):
        rng = KeyedRng(1)
        a = tokenizer.render_step(rng, "p1", (0,), 0, 30)
        b = tokenizer.render_step(rng, "p1", (0,), 0, 30)
        assert a == b

    def test_render_step_truncation_note(self, tokenizer):
        rng = KeyedRng(1)
        text = tokenizer.render_step(rng, "p1", (0,), 0, 100, preview=5)
        assert "[+95 tokens]" in text

    def test_render_short_step_no_note(self, tokenizer):
        rng = KeyedRng(1)
        text = tokenizer.render_step(rng, "p1", (0,), 0, 3, preview=10)
        assert "tokens]" not in text

    def test_render_negative_raises(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.render_step(KeyedRng(0), "p", (0,), 0, -1)

    def test_tiny_vocab_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTokenizer(vocab_size=3)
