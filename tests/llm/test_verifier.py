"""Tests for the simulated discriminative PRM."""

import numpy as np
import pytest

from repro.llm.oracle import QualityOracle
from repro.llm.verifier import SimulatedPRM
from repro.models.zoo import (
    MATH_SHEPHERD_7B,
    QWEN25_MATH_1P5B,
    SKYWORK_PRM_1P5B,
)
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset


@pytest.fixture
def problem():
    return list(build_dataset("amc23", seed=5, size=1))[0]


@pytest.fixture
def prm(problem):
    rng = KeyedRng(5)
    return SimulatedPRM(SKYWORK_PRM_1P5B, QualityOracle(rng=rng.fork("oracle")), rng)


class TestScoring:
    def test_scores_in_unit_interval(self, prm, problem):
        for i in range(100):
            score = prm.score_step(problem, (i,), 0, mean_soundness=0.0)
            assert 0.0 <= score <= 1.0

    def test_deterministic(self, prm, problem):
        assert prm.score_step(problem, (0,), 1, 0.2) == prm.score_step(
            problem, (0,), 1, 0.2
        )

    def test_tracks_soundness(self, prm, problem):
        low = [prm.score_step(problem, (i,), 0, -1.5) for i in range(200)]
        high = [prm.score_step(problem, (i,), 0, 1.5) for i in range(200)]
        assert np.mean(high) > np.mean(low) + 0.3

    def test_consecutive_scores_correlate(self, prm, problem):
        """The zero-overhead proxy SelectSPEC relies on (Sec. 4.1.1)."""
        score_t, score_t1 = [], []
        for i in range(300):
            score_t.append(prm.score_step(problem, (i, 0), 0, 0.0))
            score_t1.append(prm.score_step(problem, (i, 0), 1, 0.0))
        corr = np.corrcoef(score_t, score_t1)[0, 1]
        assert corr > 0.25

    def test_larger_verifier_less_noise(self, problem):
        rng = KeyedRng(5)
        oracle = QualityOracle(rng=rng.fork("oracle"))
        small = SimulatedPRM(SKYWORK_PRM_1P5B, oracle, rng)
        large = SimulatedPRM(MATH_SHEPHERD_7B, oracle, rng)
        assert large.noise_scale < small.noise_scale

    def test_generator_model_rejected(self, problem):
        rng = KeyedRng(0)
        with pytest.raises(ValueError):
            SimulatedPRM(QWEN25_MATH_1P5B, QualityOracle(rng=rng), rng)

    def test_negative_step_raises(self, prm, problem):
        with pytest.raises(ValueError):
            prm.score_step(problem, (0,), -1, 0.0)
