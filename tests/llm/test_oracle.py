"""Tests for the latent quality oracle."""

import numpy as np
import pytest

from repro.llm.oracle import (
    QualityOracle,
    generator_skill,
    sigmoid,
    verifier_noise_scale,
)
from repro.models.zoo import (
    MATH_SHEPHERD_7B,
    QWEN25_MATH_1P5B,
    QWEN25_MATH_7B,
    SKYWORK_PRM_1P5B,
)
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset


@pytest.fixture
def problem():
    return list(build_dataset("aime24", seed=1, size=1))[0]


@pytest.fixture
def oracle():
    return QualityOracle(rng=KeyedRng(42))


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(0.0) == 0.5

    def test_symmetry(self):
        assert sigmoid(2.0) + sigmoid(-2.0) == pytest.approx(1.0)

    def test_extremes_stable(self):
        assert sigmoid(1000.0) == pytest.approx(1.0)
        assert sigmoid(-1000.0) == pytest.approx(0.0)


class TestModelScaling:
    def test_bigger_generator_is_better(self):
        assert generator_skill(QWEN25_MATH_7B) > generator_skill(QWEN25_MATH_1P5B)

    def test_bigger_verifier_is_sharper(self):
        assert verifier_noise_scale(MATH_SHEPHERD_7B) < verifier_noise_scale(
            SKYWORK_PRM_1P5B
        )

    def test_reference_anchor(self):
        assert generator_skill(QWEN25_MATH_1P5B) == pytest.approx(0.90, abs=0.02)


class TestSoundness:
    def test_deterministic(self, oracle, problem):
        a = oracle.step_soundness(problem, (0,), 0, skill=1.0)
        b = oracle.step_soundness(problem, (0,), 0, skill=1.0)
        assert a == b

    def test_distinct_per_step(self, oracle, problem):
        assert oracle.step_soundness(problem, (0,), 0, 1.0) != oracle.step_soundness(
            problem, (0,), 1, 1.0
        )

    def test_skill_shifts_mean(self, oracle, problem):
        weak = [oracle.step_soundness(problem, (i,), 0, 0.0) for i in range(300)]
        strong = [oracle.step_soundness(problem, (i,), 0, 2.0) for i in range(300)]
        assert np.mean(strong) - np.mean(weak) == pytest.approx(2.0, abs=0.2)

    def test_approach_persists_within_subtree(self, oracle, problem):
        """Steps in one subtree share the approach offset."""
        a = oracle.approach_quality(problem, (3,))
        b = oracle.approach_quality(problem, (3, 1, 0))
        assert a == b

    def test_approaches_differ_across_subtrees(self, oracle, problem):
        assert oracle.approach_quality(problem, (0,)) != oracle.approach_quality(
            problem, (1,)
        )

    def test_root_has_no_approach(self, oracle, problem):
        assert oracle.approach_quality(problem, ()) == 0.0


class TestSubtreeBias:
    def test_bias_shared_in_subtree(self, oracle, problem):
        assert oracle.subtree_bias(problem, (2, 0)) == oracle.subtree_bias(
            problem, (2, 1, 1)
        )

    def test_bias_zero_at_root(self, oracle, problem):
        assert oracle.subtree_bias(problem, ()) == 0.0


class TestAnswers:
    def test_correct_answer_matches_truth(self, oracle, problem):
        for i in range(200):
            correct, answer = oracle.emit_answer(problem, (i,), mean_soundness=5.0)
            assert correct and answer == problem.answer

    def test_wrong_answers_never_hit_truth(self, oracle, problem):
        for i in range(200):
            correct, answer = oracle.emit_answer(problem, (i,), mean_soundness=-5.0)
            assert not correct and answer != problem.answer

    def test_answers_in_domain(self, oracle, problem):
        for i in range(100):
            _, answer = oracle.emit_answer(problem, (i,), mean_soundness=0.0)
            assert 0 <= answer <= 999

    def test_wrong_answers_cluster_on_distractors(self, oracle, problem):
        """Most wrong answers land in the problem's distractor pool."""
        pool = set(oracle.distractors(problem))
        wrong = [
            oracle.emit_answer(problem, (i,), mean_soundness=-5.0)[1]
            for i in range(400)
        ]
        in_pool = sum(1 for w in wrong if w in pool)
        assert in_pool / len(wrong) > 0.5

    def test_votes_correlate_within_subtree(self, oracle, problem):
        """Paths of one subtree agree more often than across subtrees."""
        same, cross = [], []
        for i in range(100):
            a = oracle.emit_answer(problem, (0, i), mean_soundness=0.0)[1]
            b = oracle.emit_answer(problem, (0, i + 1000), mean_soundness=0.0)[1]
            c = oracle.emit_answer(problem, (1, i), mean_soundness=0.0)[1]
            same.append(a == b)
            cross.append(a == c)
        assert np.mean(same) > np.mean(cross)

    def test_correctness_probability_monotone(self, oracle):
        probs = [oracle.correctness_probability(q) for q in (-2.0, 0.0, 2.0)]
        assert probs[0] < probs[1] < probs[2]

    def test_distractors_stable(self, oracle, problem):
        assert oracle.distractors(problem) == oracle.distractors(problem)
