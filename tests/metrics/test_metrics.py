"""Tests for goodput, latency, accuracy and report aggregation."""

import pytest

from repro.engine.telemetry import Phase, TokenCounters, UtilSpan
from repro.metrics.accuracy import majority_answer, pass_at_n, top1_correct
from repro.metrics.goodput import (
    BeamRecord,
    format_gain,
    precise_goodput,
    throughput_gain,
)
from repro.metrics.latency import LatencyBreakdown, mean_breakdown
from repro.metrics.report import ProblemRunResult, RunMetrics
from repro.metrics.utilization import (
    decay_ratio,
    mean_phase_utilization,
    utilization_timeline,
)


def beam(lineage, tokens=100, time=10.0, answer=5, correct=False, score=0.5):
    return BeamRecord(lineage=lineage, tokens=tokens, completion_time=time,
                      answer=answer, correct=correct, score=score)


class TestPreciseGoodput:
    def test_definition(self):
        """avg tokens per beam / avg completion time (Sec. 6.1)."""
        beams = [beam((0,), tokens=100, time=10.0), beam((1,), tokens=300, time=30.0)]
        assert precise_goodput(beams) == pytest.approx(200.0 / 20.0)

    def test_empty(self):
        assert precise_goodput([]) == 0.0

    def test_robust_to_beam_count(self):
        """Duplicating a beam set does not inflate goodput."""
        beams = [beam((0,), tokens=120, time=12.0)]
        assert precise_goodput(beams) == precise_goodput(beams * 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            beam((0,), tokens=0)
        with pytest.raises(ValueError):
            beam((0,), time=0.0)


class TestThroughputGain:
    def test_ordinary_ratio(self):
        assert throughput_gain(150.0, 100.0) == pytest.approx(1.5)

    def test_both_zero_is_a_wash(self):
        assert throughput_gain(0.0, 0.0) == 1.0

    def test_zero_baseline_is_unbounded(self):
        assert throughput_gain(10.0, 0.0) == float("inf")

    def test_format_finite(self):
        assert format_gain(1.2345) == 1.23

    def test_format_infinite_renders_as_string(self):
        assert format_gain(float("inf")) == "inf"
        assert format_gain(float("nan")) == "nan"


class TestJsonRoundTrip:
    def test_latency_round_trip(self):
        breakdown = LatencyBreakdown(
            total=10.125, generation=6.5, verification=3.25, swap=0.375
        )
        assert LatencyBreakdown.from_json_dict(breakdown.to_json_dict()) == breakdown

    def test_run_metrics_round_trip(self):
        metrics = RunMetrics.aggregate([make_result("a"), make_result("b", False)])
        replay = RunMetrics.from_json_dict(metrics.to_json_dict())
        assert replay == metrics
        assert replay.pass_at == metrics.pass_at  # int keys restored

    def test_problem_result_round_trip(self):
        result = make_result()
        assert ProblemRunResult.from_json_dict(result.to_json_dict()) == result


class TestAccuracy:
    def test_majority_simple(self):
        beams = [beam((0,), answer=7), beam((1,), answer=7), beam((2,), answer=3)]
        assert majority_answer(beams) == 7

    def test_majority_tie_breaks_on_score(self):
        beams = [beam((0,), answer=7, score=0.9), beam((1,), answer=3, score=0.1)]
        assert majority_answer(beams) == 7

    def test_top1_correct(self):
        beams = [
            beam((0,), answer=7, correct=True),
            beam((1,), answer=7, correct=True),
            beam((2,), answer=3),
        ]
        assert top1_correct(beams)

    def test_top1_wrong_majority(self):
        beams = [
            beam((0,), answer=3), beam((1,), answer=3),
            beam((2,), answer=7, correct=True),
        ]
        assert not top1_correct(beams)

    def test_top1_empty(self):
        assert not top1_correct([])

    def test_majority_empty_raises(self):
        with pytest.raises(ValueError):
            majority_answer([])

    def test_pass_at_n_ranked_by_score(self):
        beams = [
            beam((0,), score=0.9, correct=False),
            beam((1,), score=0.5, correct=True),
            beam((2,), score=0.1, correct=False),
        ]
        assert not pass_at_n(beams, 1)
        assert pass_at_n(beams, 2)

    def test_pass_at_n_validation(self):
        with pytest.raises(ValueError):
            pass_at_n([], 0)


class TestLatency:
    def test_fractions(self):
        breakdown = LatencyBreakdown(total=10.0, generation=6.0, verification=3.0,
                                     swap=1.0)
        assert breakdown.generator_fraction == 0.6
        assert breakdown.verifier_fraction == 0.3
        assert breakdown.accounted == 10.0

    def test_mean(self):
        mean = mean_breakdown([
            LatencyBreakdown(10.0, 6.0, 4.0),
            LatencyBreakdown(20.0, 10.0, 10.0),
        ])
        assert mean.total == 15.0
        assert mean.generation == 8.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean_breakdown([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyBreakdown(-1.0, 0.0, 0.0)


class TestUtilizationMetrics:
    def spans(self):
        return [
            UtilSpan(0, 1, 8, 8, Phase.GENERATION),
            UtilSpan(1, 3, 2, 8, Phase.GENERATION),
            UtilSpan(3, 4, 8, 8, Phase.VERIFICATION),
        ]

    def test_mean_phase(self):
        assert mean_phase_utilization(self.spans(), Phase.GENERATION) == pytest.approx(
            (1.0 * 1 + 0.25 * 2) / 3
        )

    def test_decay_ratio(self):
        assert decay_ratio(self.spans(), Phase.GENERATION) == 0.25

    def test_timeline_shape(self):
        grid, values = utilization_timeline(self.spans(), Phase.GENERATION, 10)
        assert len(grid) == 10
        assert values[0] == 1.0

    def test_empty_phase(self):
        assert mean_phase_utilization([], Phase.SWAP) == 0.0
        assert decay_ratio([], Phase.SWAP) == 0.0
        grid, values = utilization_timeline([], Phase.SWAP)
        assert len(grid) == 0


def make_result(problem_id="p0", correct=True):
    beams = (
        beam((0,), tokens=100, time=10.0, answer=5, correct=correct, score=0.8),
        beam((1,), tokens=200, time=20.0, answer=5, correct=correct, score=0.6),
    )
    return ProblemRunResult(
        problem_id=problem_id,
        algorithm="beam_search",
        n=8,
        beams=beams,
        latency=LatencyBreakdown(30.0, 20.0, 10.0),
        tokens=TokenCounters(committed=300, speculative_used=30, speculative_wasted=10),
    )


class TestRunMetrics:
    def test_aggregate(self):
        metrics = RunMetrics.aggregate([make_result("a"), make_result("b", False)])
        assert metrics.problem_count == 2
        assert metrics.top1_accuracy == 0.5
        assert metrics.goodput == pytest.approx(150.0 / 15.0)
        assert metrics.speculation_efficiency == pytest.approx(0.75)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            RunMetrics.aggregate([])

    def test_pass_at_points(self):
        metrics = RunMetrics.aggregate([make_result()], pass_ns=(1, 2))
        assert metrics.pass_at[1] == 1.0

    def test_table_renders(self):
        metrics = RunMetrics.aggregate([make_result()])
        table = RunMetrics.table([metrics], title="T")
        assert "beam_search" in table and "T" in table

    def test_result_properties(self):
        result = make_result()
        assert result.goodput > 0
        assert result.top1_correct
