"""SLO metrics: guarded percentiles, attainment, queue depth, rollups."""

import pytest

from repro.metrics.fleet import (
    FleetRequestRecord,
    SLOSummary,
    TenantSLO,
    latency_p95,
    queue_depth_series,
    tenant_slo_rollup,
    tenant_table,
    ttft_p95,
)


def record(rid="r0", arrival=0.0, start=1.0, finish=5.0, **kwargs):
    return FleetRequestRecord(
        request_id=rid, arrival_s=arrival, start_s=start, finish_s=finish,
        **kwargs,
    )


def dropped_record(rid, arrival, deadline):
    return record(
        rid, arrival=arrival, start=arrival, finish=arrival + deadline,
        accepted=False, dropped=True, deadline_s=deadline,
        reject_reason="deadline expired",
    )


class TestGuardedPercentiles:
    def test_empty_returns_none(self):
        assert ttft_p95([]) is None
        assert latency_p95([]) is None

    def test_all_shed_returns_none(self):
        records = [dropped_record("r0", 0.0, 5.0)]
        assert ttft_p95(records) is None
        assert latency_p95(records) is None

    def test_singleton_returns_the_value(self):
        records = [record(ttft_s=2.5)]
        assert ttft_p95(records) == 2.5
        assert latency_p95(records) == 5.0

    def test_multiple_values_interpolate(self):
        records = [
            record(f"r{i}", finish=1.0 + i, ttft_s=float(i)) for i in range(10)
        ]
        assert 8.0 < ttft_p95(records) <= 9.0
        assert latency_p95(records) <= 10.0

    def test_records_without_ttft_are_skipped(self):
        records = [record("a", ttft_s=None), record("b", ttft_s=3.0)]
        assert ttft_p95(records) == 3.0


class TestSLOFlags:
    def test_no_deadline_means_none(self):
        assert record().deadline_met is None
        assert record().ttft_slo_met is None

    def test_met_and_missed(self):
        assert record(deadline_s=10.0).deadline_met is True  # sojourn 5
        assert record(deadline_s=4.0).deadline_met is False
        assert record(ttft_slo_s=2.0, ttft_s=1.5).ttft_slo_met is True
        assert record(ttft_slo_s=2.0, ttft_s=2.5).ttft_slo_met is False

    def test_shed_requests_count_as_misses(self):
        shed = dropped_record("r0", 0.0, 5.0)
        assert shed.deadline_met is False
        no_token = record(ttft_slo_s=2.0, ttft_s=None)
        assert no_token.ttft_slo_met is False

    def test_dropped_cannot_be_accepted(self):
        with pytest.raises(ValueError):
            record(accepted=True, dropped=True)

    def test_nonpositive_targets_rejected(self):
        with pytest.raises(ValueError):
            record(deadline_s=0.0)
        with pytest.raises(ValueError):
            record(ttft_slo_s=-1.0)


class TestQueueDepthSeries:
    def test_hand_built_series(self):
        records = [
            record("a", arrival=0.0, start=2.0, finish=6.0),
            record("b", arrival=1.0, start=6.0, finish=9.0),
            dropped_record("c", 3.0, 4.0),  # queued 3.0 -> dropped at 7.0
        ]
        assert queue_depth_series(records) == (
            (0.0, 1), (1.0, 2), (2.0, 1), (3.0, 2), (6.0, 1), (7.0, 0),
        )

    def test_rejected_requests_never_queue(self):
        rejected = record(
            "r", arrival=1.0, start=1.0, finish=1.0, accepted=False,
            reject_reason="admission control",
        )
        assert queue_depth_series([rejected]) == ()

    def test_tied_timestamps_coalesce_to_post_transition_depth(self):
        records = [
            record("a", arrival=0.0, start=5.0, finish=9.0),
            record("b", arrival=5.0, start=5.0, finish=9.0),
        ]
        # At t=5 'a' starts and 'b' arrives-and-starts: every transition
        # coalesces into one entry holding the post-transition depth.
        assert queue_depth_series(records) == ((0.0, 1), (5.0, 0))

    def test_empty(self):
        assert queue_depth_series([]) == ()


class TestTenantRollup:
    def test_rollup_groups_and_judges(self):
        records = [
            record("a-0", arrival=0.0, start=0.0, finish=4.0,
                   tenant="a", deadline_s=10.0, ttft_s=1.0, ttft_slo_s=2.0),
            record("a-1", arrival=1.0, start=4.0, finish=20.0,
                   tenant="a", deadline_s=10.0, ttft_s=5.0, ttft_slo_s=2.0),
            record("b-0", arrival=2.0, start=2.0, finish=10.0, tenant="b"),
        ]
        correct = {"a-0": True, "a-1": True, "b-0": True}
        slos = tenant_slo_rollup(records, correct)
        assert [s.tenant for s in slos] == ["a", "b"]
        a, b = slos
        # a-1 finished at 20 > deadline 10: half the deadline flags hold.
        assert a.slo_attainment == 0.5
        assert a.ttft_attainment == 0.5
        # Only a-0 was correct *and* in deadline; makespan is fleet-wide 20.
        assert a.goodput_ud_rps == pytest.approx(1 / 20.0)
        # b set no targets: attainment is None but correct work counts.
        assert b.slo_attainment is None
        assert b.ttft_attainment is None
        assert b.goodput_ud_rps == pytest.approx(1 / 20.0)

    def test_untenanted_records_group_under_dash(self):
        slos = tenant_slo_rollup([record()], {})
        assert [s.tenant for s in slos] == ["-"]

    def test_all_dropped_tenant_does_not_raise(self):
        records = [dropped_record("a-0", 0.0, 5.0)]
        slo = TenantSLO.aggregate("a", records, {}, makespan_s=0.0)
        assert slo.completed == 0
        assert slo.dropped == 1
        assert slo.slo_attainment == 0.0
        assert slo.goodput_ud_rps == 0.0
        assert slo.ttft_p95_s is None
        assert slo.latency_p95_s is None

    def test_incorrect_answers_earn_no_goodput(self):
        records = [record("a-0", tenant="a", deadline_s=10.0)]
        slo = tenant_slo_rollup(records, {"a-0": False})[0]
        assert slo.goodput_ud_rps == 0.0
        assert slo.slo_attainment == 1.0


class TestTables:
    def test_tenant_table_renders_none_as_dash(self):
        slos = tenant_slo_rollup([record(tenant="solo")], {})
        table = tenant_table(slos, title="t")
        assert "solo" in table
        assert "-" in table
        with pytest.raises(ValueError):
            tenant_table([])

    def test_summary_all_dropped(self):
        records = [dropped_record("r0", 0.0, 5.0), dropped_record("r1", 1.0, 5.0)]
        summary = SLOSummary.aggregate(records, {}, pool_size=1)
        assert summary.completed == 0
        assert summary.dropped == 2
        assert summary.slo_attainment == 0.0
        assert summary.goodput_ud_rps == 0.0
        assert summary.makespan_s == 6.0  # until the last drop
        assert "slo attainment" in summary.table()

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            SLOSummary.aggregate([], {})
