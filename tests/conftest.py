"""Shared pytest configuration."""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: serving-scale experiment tests")
