"""The accuracy-vs-cost frontier, honest escalation billing, and composition.

The tentpole acceptance: on a mixed-difficulty workload a routed
heterogeneous pool (one big-model lane + one quantized small-model lane
under the cascade router) must Pareto-dominate both homogeneous pools —
accuracy within a point of all-big at strictly lower mean latency, and
strictly more accurate than all-small. Escalations bill the abandoned
cheap attempt through the ledger (no silently free re-prefill), and the
router composes with KV sharing, batching, and fault injection without
double-billing redone work.
"""

import pytest

from repro.core.config import baseline_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.routing import CascadeRouter, parse_lane_list
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset

BIG = "7B+1.5B@rtx4090,7B+1.5B@rtx4090"
SMALL = "1.5B+1.5B@rtx4090:int8,1.5B+1.5B@rtx4090:int8"
HETERO = "7B+1.5B@rtx4090,1.5B+1.5B@rtx4090:int8"


def run_pool(lanes, router="off", size=20, rate=0.05, n=4, seed=0, **kwargs):
    dataset = build_dataset("amc23", seed=seed, size=size)
    config = baseline_config(memory_fraction=0.9, seed=seed)
    fleet = TTSFleet(
        config, dataset,
        lanes=parse_lane_list(lanes),
        router=router,
        placement="least_loaded",
        **kwargs,
    )
    arrivals = generate_arrivals(size, rate, seed=seed)
    fleet.submit_stream(
        list(dataset), build_algorithm("beam_search", n), arrivals
    )
    return fleet.drain()


@pytest.fixture(scope="module")
def frontier():
    return {
        "all-big": run_pool(BIG).frontier_point("all-big"),
        "all-small": run_pool(SMALL).frontier_point("all-small"),
        "routed": run_pool(HETERO, router="cascade").frontier_point("routed"),
    }


class TestFrontier:
    def test_routed_matches_big_accuracy_within_a_point(self, frontier):
        routed, big = frontier["routed"], frontier["all-big"]
        assert routed.accuracy >= big.accuracy - 0.01

    def test_routed_strictly_faster_than_big(self, frontier):
        routed, big = frontier["routed"], frontier["all-big"]
        assert routed.latency_mean_s < big.latency_mean_s

    def test_routed_strictly_beats_small_accuracy(self, frontier):
        routed, small = frontier["routed"], frontier["all-small"]
        assert routed.accuracy > small.accuracy

    def test_no_homogeneous_pool_dominates_routed(self, frontier):
        routed = frontier["routed"]
        assert not frontier["all-big"].dominates(
            routed, accuracy_tolerance=0.01
        )
        assert not frontier["all-small"].dominates(
            routed, accuracy_tolerance=0.01
        )

    def test_quantized_small_pool_is_cheapest(self, frontier):
        assert (
            frontier["all-small"].device_time_mean_s
            < frontier["all-big"].device_time_mean_s
        )


class TestHonestBilling:
    def test_escalated_work_billed_not_free(self):
        report = run_pool(HETERO, router="cascade")
        escalated = [r for r in report.records if r.escalations]
        assert escalated, "expected escalations on amc23 at n=4"
        for record in escalated:
            # The abandoned cheap attempt's device seconds ride on top of
            # the committed attempt's — never silently dropped.
            assert record.escalated_work_s > 0
            assert record.device_time_s > record.escalated_work_s
        metrics = report.metrics
        assert metrics.escalations == sum(r.escalations for r in escalated)
        assert metrics.escalated_work_s == pytest.approx(
            sum(r.escalated_work_s for r in report.records)
        )

    def test_unescalated_records_bill_nothing_extra(self):
        report = run_pool(HETERO, router="cascade")
        for record in report.records:
            if not record.escalations:
                assert record.escalated_work_s == 0.0

    def test_escalation_composes_with_sharing_and_batching(self):
        for kwargs in ({"kv_sharing": "prefix"}, {"batching": "continuous"}):
            report = run_pool(HETERO, router="cascade", **kwargs)
            assert report.metrics.completed == len(report.records)
            assert report.metrics.escalations > 0


class TestFaultComposition:
    def test_crash_and_escalation_never_double_bill(self):
        # Crash the cheap lane mid-run: crash-voided work lands in
        # redone_work_s, escalation-abandoned work in escalated_work_s —
        # disjoint by construction, both inside device_time_s.
        report = run_pool(
            HETERO, router="cascade", size=12,
            faults="crash:at=30,lane=1,mttr=200", recovery="failover",
        )
        metrics = report.metrics
        assert metrics.completed + metrics.requests_lost == len(report.records)
        for record in report.records:
            if record.device_time_s is None:
                continue
            overhead = record.redone_work_s + record.escalated_work_s
            assert record.device_time_s >= overhead
        # The run still escalates despite the crash.
        assert metrics.escalations > 0

    def test_router_survives_failover_routing(self):
        report = run_pool(
            HETERO, router="static", size=12,
            faults="crash:at=30,lane=0,mttr=200", recovery="failover",
        )
        assert report.metrics.completed + report.metrics.requests_lost == len(
            report.records
        )


class TestRouterOffIdentity:
    def test_router_off_is_byte_identical_to_no_router(self):
        dataset = build_dataset("amc23", seed=0, size=6)
        config = baseline_config(memory_fraction=0.4, seed=0)
        arrivals = generate_arrivals(6, 0.05, seed=0)

        def run(**kwargs):
            fleet = TTSFleet(config, dataset, **kwargs)
            fleet.submit_stream(
                list(dataset), build_algorithm("beam_search", 4), arrivals
            )
            return fleet.drain()

        base = run()
        spelled = run(router="off")
        assert spelled.records == base.records
        assert spelled.router == base.router == "off"
