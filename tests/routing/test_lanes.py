"""Tests for the lane-spec grammar and heterogeneous pool construction."""

import pytest

from repro.core.config import baseline_config
from repro.core.fleet import TTSFleet
from repro.core.pool import DevicePool
from repro.errors import ConfigError, SchedulingError
from repro.routing import LaneSpec, parse_lane_list
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("amc23", seed=0, size=4)


class TestLaneSpecParse:
    def test_minimal(self):
        spec = LaneSpec.parse("7B+1.5B@rtx4090")
        assert spec.model_config == "7B+1.5B"
        assert spec.device_name == "rtx4090"
        assert spec.dtype is None
        assert spec.memory_fraction is None

    def test_full_grammar(self):
        spec = LaneSpec.parse("1.5B+1.5B@rtx4090:int8:mem=0.5")
        assert spec.dtype == "int8"
        assert spec.memory_fraction == 0.5

    def test_label_round_trips(self):
        for text in (
            "7B+1.5B@rtx4090",
            "1.5B+1.5B@rtx4090:int8",
            "1.5B+7B@rtx4070ti:bf16:mem=0.5",
        ):
            spec = LaneSpec.parse(text)
            assert spec.label == text
            assert LaneSpec.parse(spec.label) == spec

    def test_whitespace_tolerated(self):
        spec = LaneSpec.parse(" 7B+1.5B@rtx4090 : int8 ")
        assert spec.dtype == "int8"

    def test_missing_at(self):
        with pytest.raises(ConfigError, match="missing '@'"):
            LaneSpec.parse("7B+1.5B")

    def test_empty(self):
        with pytest.raises(ConfigError, match="must not be empty"):
            LaneSpec.parse("  ")

    def test_unknown_model_config_suggests(self):
        with pytest.raises(ConfigError, match="known configs"):
            LaneSpec.parse("7B+1.5b@rtx4090")

    def test_unknown_device_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'rtx4090'"):
            LaneSpec.parse("7B+1.5B@rtx409")

    def test_unknown_dtype_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'int8'"):
            LaneSpec.parse("7B+1.5B@rtx4090:int88")

    def test_duplicate_dtype(self):
        with pytest.raises(ConfigError, match="dtype twice"):
            LaneSpec.parse("7B+1.5B@rtx4090:int8:fp8")

    def test_duplicate_mem(self):
        with pytest.raises(ConfigError, match="mem= twice"):
            LaneSpec.parse("7B+1.5B@rtx4090:mem=0.5:mem=0.6")

    def test_unknown_option_key(self):
        with pytest.raises(ConfigError, match="unknown lane option"):
            LaneSpec.parse("7B+1.5B@rtx4090:men=0.5")

    def test_non_numeric_mem(self):
        with pytest.raises(ConfigError, match="expects a number"):
            LaneSpec.parse("7B+1.5B@rtx4090:mem=half")

    def test_mem_out_of_range(self):
        with pytest.raises(ConfigError, match=r"in \(0, 1\]"):
            LaneSpec.parse("7B+1.5B@rtx4090:mem=1.5")

    def test_lane_list(self):
        lanes = parse_lane_list("7B+1.5B@rtx4090,1.5B+1.5B@rtx4090:int8")
        assert [lane.model_config for lane in lanes] == ["7B+1.5B", "1.5B+1.5B"]

    def test_lane_list_rejects_empty_entry(self):
        with pytest.raises(ConfigError, match="empty entry"):
            parse_lane_list("7B+1.5B@rtx4090,,1.5B+1.5B@rtx4090")


class TestLaneSpecSemantics:
    def test_quantized_lane_class_is_truthful(self):
        spec = LaneSpec.parse("1.5B+1.5B@rtx4090:int8")
        assert spec.lane_class == (
            "qwen2.5-math-1.5b-int8+skywork-o1-prm-1.5b-int8"
        )

    def test_bf16_lane_class_differs_from_fp16(self):
        fp16 = LaneSpec.parse("1.5B+1.5B@rtx4090")
        bf16 = LaneSpec.parse("1.5B+1.5B@rtx4090:bf16")
        assert fp16.lane_class != bf16.lane_class

    def test_cost_ordering(self):
        big = LaneSpec.parse("7B+1.5B@rtx4090")
        small = LaneSpec.parse("1.5B+1.5B@rtx4090")
        quant = LaneSpec.parse("1.5B+1.5B@rtx4090:int8")
        assert big.model_cost_bytes > small.model_cost_bytes
        assert small.model_cost_bytes > quant.model_cost_bytes


class TestHeteroPool:
    def test_build_with_lanes(self, dataset):
        config = baseline_config(memory_fraction=0.9, seed=0)
        pool = DevicePool.build(config, dataset, lanes=[
            LaneSpec.parse("7B+1.5B@rtx4090"),
            LaneSpec.parse("1.5B+1.5B@rtx4090:int8:mem=0.5"),
        ])
        assert len(pool) == 2
        assert pool[0].lane_class == "qwen2.5-math-7b+skywork-o1-prm-1.5b"
        assert pool[1].lane_class == (
            "qwen2.5-math-1.5b-int8+skywork-o1-prm-1.5b-int8"
        )
        assert pool[1].server.config.memory_fraction == 0.5
        # Lane ids stay index-suffixed and unique on one physical card.
        assert pool[0].device_id == "dev0:rtx4090"
        assert pool[1].device_id == "dev1:rtx4090"

    def test_lanes_and_device_names_exclusive(self, dataset):
        config = baseline_config(memory_fraction=0.9, seed=0)
        with pytest.raises(ConfigError, match="not both"):
            DevicePool.build(
                config, dataset, ["rtx4090"],
                lanes=[LaneSpec.parse("7B+1.5B@rtx4090")],
            )

    def test_empty_lane_list_rejected(self, dataset):
        config = baseline_config(memory_fraction=0.9, seed=0)
        with pytest.raises(ConfigError, match="must not be empty"):
            DevicePool.build(config, dataset, lanes=[])

    def test_cross_class_migration_refused(self, dataset):
        config = baseline_config(memory_fraction=0.9, seed=0)
        pool = DevicePool.build(config, dataset, lanes=[
            LaneSpec.parse("7B+1.5B@rtx4090"),
            LaneSpec.parse("1.5B+1.5B@rtx4090:int8"),
        ])
        problem = list(dataset)[0]
        session = pool[0].server.session(
            problem, build_algorithm("beam_search", 2)
        )
        from repro.core.scheduler import SessionHandle
        from repro.engine.clock import ClockBinding

        handle = SessionHandle(
            request_id="req-0000", arrival_s=0.0, seq=0, replica=0,
            session=session, binding=ClockBinding(session.clock),
            device=pool[0],
        )
        handle.binding.rebind(pool[0].clock)
        with pytest.raises(SchedulingError, match="lane classes"):
            pool.migrate(handle, pool[1])

    def test_same_class_lanes_still_migratable_pool(self, dataset):
        # Two lanes of the same pairing keep the homogeneous contract.
        config = baseline_config(memory_fraction=0.9, seed=0)
        pool = DevicePool.build(config, dataset, lanes=[
            LaneSpec.parse("1.5B+1.5B@rtx4090"),
            LaneSpec.parse("1.5B+1.5B@rtx4070ti"),
        ])
        assert pool[0].lane_class == pool[1].lane_class

    def test_fleet_lanes_with_prepared_pool_rejected(self, dataset):
        config = baseline_config(memory_fraction=0.9, seed=0)
        pool = DevicePool.build(config, dataset)
        with pytest.raises(ConfigError, match="owns its lanes"):
            TTSFleet(pool=pool, lanes=[LaneSpec.parse("7B+1.5B@rtx4090")])
