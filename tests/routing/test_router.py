"""Tests for the routing-policy registry and per-policy behavior."""

import pytest

from repro.core.config import baseline_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.errors import ConfigError
from repro.routing import (
    CascadeRouter,
    PredictedRouter,
    StaticRouter,
    build_router,
    list_routers,
    parse_lane_list,
    router_descriptions,
)
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset

HETERO = "7B+1.5B@rtx4090,1.5B+1.5B@rtx4090:int8"
BIG_CLASS = "qwen2.5-math-7b+skywork-o1-prm-1.5b"
SMALL_CLASS = "qwen2.5-math-1.5b-int8+skywork-o1-prm-1.5b-int8"


def run_fleet(router, size=8, rate=0.05, n=4, lanes=HETERO, seed=0):
    dataset = build_dataset("amc23", seed=seed, size=size)
    config = baseline_config(memory_fraction=0.9, seed=seed)
    fleet = TTSFleet(
        config, dataset,
        lanes=parse_lane_list(lanes),
        router=router,
        placement="least_loaded",
    )
    arrivals = generate_arrivals(size, rate, seed=seed)
    fleet.submit_stream(
        list(dataset), build_algorithm("beam_search", n), arrivals
    )
    return fleet.drain()


class TestRegistry:
    def test_list(self):
        assert list_routers() == ["cascade", "predicted", "static"]

    def test_descriptions_cover_all(self):
        descriptions = router_descriptions()
        assert set(descriptions) == set(list_routers())
        assert all(descriptions.values())

    def test_build(self):
        assert isinstance(build_router("static"), StaticRouter)
        assert isinstance(build_router("predicted"), PredictedRouter)
        assert isinstance(build_router("cascade"), CascadeRouter)

    def test_unknown_name_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'cascade'"):
            build_router("cascde")
        with pytest.raises(ConfigError, match="registered: cascade"):
            build_router("nonsense")

    def test_kwargs_forwarded(self):
        router = build_router("cascade", verify_threshold=0.9)
        assert router.verify_threshold == 0.9

    def test_bad_thresholds(self):
        with pytest.raises(ConfigError):
            StaticRouter(threshold=1.5)
        with pytest.raises(ConfigError):
            PredictedRouter(threshold=0.0)
        with pytest.raises(ConfigError):
            CascadeRouter(verify_threshold=0.0)


class TestFleetWiring:
    def test_router_property(self):
        dataset = build_dataset("amc23", seed=0, size=2)
        config = baseline_config(memory_fraction=0.9, seed=0)
        fleet = TTSFleet(config, dataset, router="static")
        assert fleet.router == "static"
        assert TTSFleet(config, dataset).router == "off"
        assert TTSFleet(config, dataset, router=None).router == "off"

    def test_router_instance_accepted(self):
        dataset = build_dataset("amc23", seed=0, size=2)
        config = baseline_config(memory_fraction=0.9, seed=0)
        fleet = TTSFleet(config, dataset, router=CascadeRouter())
        assert fleet.router == "cascade"

    def test_class_order_cheapest_first(self):
        dataset = build_dataset("amc23", seed=0, size=2)
        config = baseline_config(memory_fraction=0.9, seed=0)
        router = CascadeRouter()
        TTSFleet(
            config, dataset, lanes=parse_lane_list(HETERO), router=router,
        )
        assert router.class_order == (SMALL_CLASS, BIG_CLASS)

    def test_unknown_router_name_at_fleet(self):
        dataset = build_dataset("amc23", seed=0, size=2)
        config = baseline_config(memory_fraction=0.9, seed=0)
        with pytest.raises(ConfigError, match="unknown router"):
            TTSFleet(config, dataset, router="bogus")


class TestStaticRouter:
    def test_splits_by_difficulty_rank(self):
        report = run_fleet(StaticRouter(threshold=0.5))
        decisions = report.router_decisions()
        # Both classes see traffic, split at the rank threshold.
        assert decisions.get(BIG_CLASS, 0) > 0
        assert decisions.get(SMALL_CLASS, 0) > 0
        assert sum(decisions.values()) == len(report.records)

    def test_threshold_one_sends_everything_small(self):
        report = run_fleet(StaticRouter(threshold=1.0))
        assert report.router_decisions() == {SMALL_CLASS: 8}

    def test_threshold_zero_sends_everything_big(self):
        report = run_fleet(StaticRouter(threshold=0.0))
        assert report.router_decisions() == {BIG_CLASS: 8}

    def test_report_labels_router(self):
        report = run_fleet("static")
        assert report.router == "static"
        for record in report.records:
            assert record.routed_class in (BIG_CLASS, SMALL_CLASS)


class TestPredictedRouter:
    def test_profile_pass_routes_by_predicted_rounds(self):
        low = run_fleet(PredictedRouter(threshold=0.05)).router_decisions()
        high = run_fleet(PredictedRouter(threshold=1.0)).router_decisions()
        # A tiny round threshold calls everything hard; raising it to the
        # full round cap reclassifies the shorter searches as easy (many
        # amc23 searches legitimately run to the cap, so some stay big).
        assert low == {BIG_CLASS: 8}
        assert high.get(SMALL_CLASS, 0) > 0
        assert high.get(BIG_CLASS, 0) < 8

    def test_predictions_memoized(self):
        router = PredictedRouter(threshold=0.5)
        run_fleet(router)
        memo_size = len(router._memo)
        assert memo_size > 0
        # Same problems again: no new profile passes.
        run_fleet(router)
        assert len(router._memo) == memo_size


class TestCascadeRouter:
    def test_all_requests_start_small(self):
        report = run_fleet(CascadeRouter())
        assert report.router_decisions() == {SMALL_CLASS: 8}

    def test_low_confidence_escalates_to_big(self):
        report = run_fleet(CascadeRouter())
        escalated = [r for r in report.records if r.escalations]
        assert escalated, "expected at least one escalation on amc23"
        for record in escalated:
            assert record.routed_class == SMALL_CLASS
            assert record.lane_class == BIG_CLASS
            assert record.escalated_work_s > 0
        rollup = {s.lane_class: s for s in report.lane_classes()}
        assert rollup[BIG_CLASS].escalated_in == len(escalated)

    def test_threshold_zero_epsilon_never_escalates(self):
        report = run_fleet(CascadeRouter(verify_threshold=1e-9))
        assert report.metrics.escalations == 0
        assert all(r.lane_class == SMALL_CLASS for r in report.records)

    def test_homogeneous_pool_has_nowhere_to_escalate(self):
        report = run_fleet(
            CascadeRouter(),
            lanes="1.5B+1.5B@rtx4090:int8,1.5B+1.5B@rtx4090:int8",
        )
        assert report.metrics.escalations == 0
        assert report.metrics.completed == len(report.records)
