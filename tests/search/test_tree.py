"""Tests for reasoning paths and the segment-id convention."""

import pytest

from repro.search.tree import ReasoningPath, prompt_segment_id, step_segment_id
from repro.workloads.datasets import build_dataset


@pytest.fixture
def problem():
    return list(build_dataset("aime24", seed=0, size=1))[0]


class TestSegmentIds:
    def test_prompt_stable(self, problem):
        assert prompt_segment_id(problem) == prompt_segment_id(problem)

    def test_prefix_sharing_by_construction(self, problem):
        """Parent and child share segment ids for common history."""
        parent = (3, 1)
        child = (3, 1, 0)
        assert step_segment_id(problem, parent, 0) == step_segment_id(problem, child, 0)
        assert step_segment_id(problem, parent, 1) == step_segment_id(problem, child, 1)

    def test_siblings_diverge_at_own_step(self, problem):
        a = step_segment_id(problem, (3, 0), 1)
        b = step_segment_id(problem, (3, 1), 1)
        assert a != b

    def test_lineage_too_short_raises(self, problem):
        with pytest.raises(ValueError):
            step_segment_id(problem, (0,), 1)


class TestReasoningPath:
    def test_record_and_totals(self):
        path = ReasoningPath(lineage=(0,))
        path.record_step(100, 0.5)
        path.record_step(50, -0.5)
        assert path.total_tokens == 150
        assert path.steps_done == 2
        assert path.mean_soundness == 0.0

    def test_scores_follow_steps(self):
        path = ReasoningPath(lineage=(0,))
        path.record_step(10, 0.0)
        path.record_score(0.7)
        assert path.last_score == 0.7
        with pytest.raises(ValueError):
            path.record_score(0.5)  # no unscored step

    def test_score_bounds(self):
        path = ReasoningPath(lineage=(0,))
        path.record_step(10, 0.0)
        with pytest.raises(ValueError):
            path.record_score(1.5)

    def test_child_inherits_history(self):
        path = ReasoningPath(lineage=(1,))
        path.record_step(10, 0.2)
        path.record_score(0.6)
        child = path.make_child(2)
        assert child.lineage == (1, 2)
        assert child.step_tokens == [10]
        assert child.scores == [0.6]

    def test_child_history_is_copied(self):
        path = ReasoningPath(lineage=(1,))
        path.record_step(10, 0.2)
        child = path.make_child(0)
        child.record_step(5, 0.1)
        assert path.steps_done == 1

    def test_terminal_cannot_branch(self):
        path = ReasoningPath(lineage=(0,), terminal=True)
        with pytest.raises(ValueError):
            path.make_child(0)

    def test_segment_ids_cover_history(self, problem):
        path = ReasoningPath(lineage=(2, 1))
        path.record_step(10, 0.0)
        path.record_step(20, 0.0)
        segments = path.segment_ids(problem)
        assert len(segments) == 3  # prompt + 2 steps
        assert segments[0] == prompt_segment_id(problem)

    def test_sort_key_orders_by_score(self):
        a = ReasoningPath(lineage=(0,))
        a.record_step(1, 0.0)
        a.record_score(0.9)
        b = ReasoningPath(lineage=(1,))
        b.record_step(1, 0.0)
        b.record_score(0.2)
        assert a.sort_key() < b.sort_key()

    def test_final_score_default(self):
        assert ReasoningPath(lineage=(0,)).final_score == 0.0

    def test_empty_mean_soundness(self):
        assert ReasoningPath(lineage=(0,)).mean_soundness == 0.0

    def test_zero_tokens_rejected(self):
        with pytest.raises(ValueError):
            ReasoningPath(lineage=(0,)).record_step(0, 0.0)
