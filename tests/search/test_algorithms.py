"""Tests for the five TTS search algorithm variants."""

import pytest

from repro.errors import SearchError
from repro.search.base import SearchAlgorithm
from repro.search.beam_search import BeamSearch
from repro.search.best_of_n import BestOfN
from repro.search.dvts import DVTS
from repro.search.dynamic_branching import DynamicBranching, proportional_allocation
from repro.search.registry import build_algorithm, list_algorithms
from repro.search.tree import ReasoningPath
from repro.search.varying_granularity import VaryingGranularity
from repro.utils.rng import KeyedRng


def make_paths(scores):
    paths = []
    for i, score in enumerate(scores):
        path = ReasoningPath(lineage=(i,))
        path.record_step(10, 0.0)
        path.record_score(score)
        paths.append(path)
    return paths


RNG = KeyedRng(0)


class TestBestOfN:
    def test_never_prunes(self):
        algo = BestOfN(n=8)
        decision = algo.select(make_paths([0.1] * 8), 0, RNG)
        assert len(decision.expansions) == 8
        assert decision.total_children == 8

    def test_no_step_verification(self):
        assert not BestOfN(n=4).verifies_steps

    def test_branching_factor_one(self):
        assert BestOfN(n=4).branching_factor == 1


class TestBeamSearch:
    def test_keeps_global_top_k(self):
        algo = BeamSearch(n=8, branching_factor=4)
        paths = make_paths([0.1, 0.9, 0.5, 0.8, 0.2, 0.3, 0.7, 0.4])
        decision = algo.select(paths, 0, RNG)
        kept_scores = {e.path.last_score for e in decision.expansions}
        assert kept_scores == {0.9, 0.8}

    def test_restores_full_width(self):
        algo = BeamSearch(n=8, branching_factor=4)
        decision = algo.select(make_paths([0.5] * 8), 0, RNG)
        assert decision.total_children == 8

    def test_few_survivors_branch_within_cap(self):
        algo = BeamSearch(n=16, branching_factor=4)
        decision = algo.select(make_paths([0.5]), 0, RNG)
        # One survivor still branches at most M ways.
        assert decision.total_children == 4

    def test_empty_active(self):
        assert BeamSearch(n=8).select([], 0, RNG).expansions == ()

    def test_deterministic_tie_break(self):
        algo = BeamSearch(n=4, branching_factor=4)
        paths = make_paths([0.5, 0.5, 0.5, 0.5])
        first = algo.select(paths, 0, RNG)
        second = algo.select(paths, 0, RNG)
        assert [e.path.lineage for e in first.expansions] == [
            e.path.lineage for e in second.expansions
        ]


class TestDVTS:
    def test_requires_divisible_budget(self):
        with pytest.raises(ValueError):
            DVTS(n=10, branching_factor=4)

    def test_one_survivor_per_subtree(self):
        algo = DVTS(n=8, branching_factor=4)  # 2 subtrees
        paths = make_paths([0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2])
        decision = algo.select(paths, 0, RNG)
        subtrees = {algo.subtree_of(e.path) for e in decision.expansions}
        assert subtrees == {0, 1}
        assert decision.total_children == 8

    def test_diversity_vs_beam(self):
        """DVTS survivors span subtrees even when one subtree dominates."""
        algo = DVTS(n=8, branching_factor=4)
        # Subtree 0 (paths 0, 2, 4, 6) has all the best scores.
        paths = make_paths([0.9, 0.1, 0.8, 0.15, 0.85, 0.12, 0.7, 0.05])
        decision = algo.select(paths, 0, RNG)
        assert len(decision.expansions) == 2  # one per subtree regardless

    def test_dead_subtree_not_revived(self):
        algo = DVTS(n=8, branching_factor=4)
        paths = [p for p in make_paths([0.5] * 8) if p.lineage[0] % 2 == 0]
        decision = algo.select(paths, 0, RNG)
        assert len(decision.expansions) == 1


class TestDynamicBranching:
    def test_proportional_allocation_sums(self):
        shares = proportional_allocation([0.5, 0.3, 0.2], 10)
        assert sum(shares) == 10
        assert all(s >= 1 for s in shares)
        assert shares[0] >= shares[1] >= shares[2]

    def test_allocation_zero_weights(self):
        assert proportional_allocation([0.0, 0.0], 4) == [2, 2]

    def test_allocation_total_too_small(self):
        with pytest.raises(ValueError):
            proportional_allocation([1.0, 1.0], 1)

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            proportional_allocation([-1.0], 2)

    def test_high_scores_branch_more(self):
        algo = DynamicBranching(n=16, branching_factor=4)
        paths = make_paths([0.9, 0.8, 0.1, 0.05])
        decision = algo.select(paths, 0, RNG)
        by_score = {e.path.last_score: e.n_children for e in decision.expansions}
        assert by_score[0.9] >= by_score[0.1]
        assert decision.total_children == 16


class TestVaryingGranularity:
    def test_step_caps_schedule(self):
        algo = VaryingGranularity(n=8, fine_cap=64, coarse_cap=2048, fine_rounds=3)
        assert algo.step_cap(0) == 64
        assert algo.step_cap(2) == 64
        assert algo.step_cap(3) == 2048

    def test_invalid_caps(self):
        with pytest.raises(ValueError):
            VaryingGranularity(n=8, fine_cap=100, coarse_cap=50)


class TestRegistry:
    def test_all_variants_listed(self):
        assert set(list_algorithms()) == {
            "best_of_n", "beam_search", "dvts", "dynamic_branching",
            "varying_granularity",
        }

    def test_build_by_name(self):
        algo = build_algorithm("beam_search", 16, branching_factor=2)
        assert isinstance(algo, BeamSearch)
        assert algo.branching_factor == 2

    def test_unknown_raises(self):
        with pytest.raises(SearchError):
            build_algorithm("mcts", 8)


class TestBaseValidation:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            BeamSearch(n=0)

    def test_keep_count_floor(self):
        assert BeamSearch(n=4, branching_factor=8).keep_count(10) == 1

    def test_abstract_cannot_instantiate(self):
        with pytest.raises(TypeError):
            SearchAlgorithm(n=4)  # type: ignore[abstract]
