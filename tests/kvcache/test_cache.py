"""Tests for the paged KV cache: residency, pinning, eviction, truncation."""

import pytest

from repro.errors import CapacityError
from repro.kvcache.cache import PagedKVCache


def make_cache(capacity_tokens: int = 160, block_tokens: int = 16) -> PagedKVCache:
    """Cache with byte-math arranged so capacity_tokens is exact."""
    return PagedKVCache(
        capacity_bytes=capacity_tokens * 4,
        kv_bytes_per_token=4,
        block_tokens=block_tokens,
    )


@pytest.fixture
def cache():
    c = make_cache()
    c.register_segment(1, None, 32)   # prompt
    c.register_segment(2, 1, 16)      # step 0 of path A
    c.register_segment(3, 1, 16)      # step 0 of path B
    c.register_segment(4, 2, 16)      # step 1 of path A
    return c


class TestMaterialize:
    def test_cold_materialize_recomputes_everything(self, cache):
        outcome = cache.materialize(4)
        assert outcome.hit_tokens == 0
        assert outcome.recomputed_tokens == 64
        assert cache.resident_tokens == 64

    def test_warm_materialize_hits(self, cache):
        cache.materialize(4)
        cache.unpin_path(4)
        outcome = cache.materialize(4)
        assert outcome.hit_tokens == 64
        assert outcome.recomputed_tokens == 0

    def test_sibling_shares_prefix(self, cache):
        cache.materialize(2)
        outcome = cache.materialize(3)
        assert outcome.hit_tokens == 32  # prompt shared
        assert outcome.recomputed_tokens == 16

    def test_pin_protects_from_eviction(self, cache):
        cache.materialize(4)  # 64 tokens pinned
        cache.register_segment(5, 3, 120)
        with pytest.raises(CapacityError):
            cache.materialize(5)  # needs 136+, only 96 unpinned left

    def test_unpinned_is_evicted_for_new_work(self, cache):
        cache.materialize(4, pin=False)
        cache.register_segment(5, 3, 104)
        outcome = cache.materialize(5)
        assert outcome.recomputed_tokens == 120  # 16 (seg 3) + 104 (seg 5)
        assert not cache.is_resident(4)

    def test_materialize_never_evicts_own_prefix(self, cache):
        """The hit prefix survives even when loading needs heavy eviction."""
        cache.materialize(4, pin=False)
        cache.register_segment(5, 3, 104)
        cache.materialize(5, pin=False)
        assert cache.is_resident(1)  # the prompt was a hit, not a victim

    def test_residency_invariant_parent_first(self, cache):
        cache.materialize(4, pin=False)
        # Evict the middle of the chain manually via a conflicting load.
        assert cache.resident_prefix_tokens(4) == 64

    def test_missing_tokens(self, cache):
        assert cache.missing_tokens(4) == 64
        cache.materialize(2, pin=False)
        assert cache.missing_tokens(4) == 16

    def test_stats_hit_rate(self, cache):
        cache.materialize(4)
        cache.unpin_path(4)
        cache.materialize(4)
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestPinning:
    def test_unpin_without_pin_raises(self, cache):
        cache.materialize(4, pin=False)
        with pytest.raises(CapacityError):
            cache.unpin_path(4)

    def test_double_pin_needs_double_unpin(self, cache):
        cache.materialize(4)          # pin 1
        cache.pin_path(4)             # pin 2
        cache.unpin_path(4)
        cache.register_segment(5, 3, 104)
        with pytest.raises(CapacityError):
            cache.materialize(5)      # still pinned once
        cache.unpin_path(4)
        cache.materialize(5)          # now evictable


class TestExtend:
    def test_extend_grows_tokens_and_blocks(self, cache):
        cache.materialize(2)
        blocks_before = cache.pool.allocated_blocks
        cache.extend_segment(2, 20)
        assert cache.segment(2).token_len == 36
        assert cache.pool.allocated_blocks > blocks_before

    def test_extend_within_block_is_free(self, cache):
        cache.materialize(2)  # 16 tokens = 1 block exactly
        cache.extend_segment(2, 0)
        blocks = cache.pool.allocated_blocks
        cache.register_segment(9, 2, 1)
        cache.materialize(9)
        cache.extend_segment(9, 10)  # 1+10 = 11 < 16: same block
        assert cache.pool.allocated_blocks == blocks + 1

    def test_extend_nonresident_raises(self, cache):
        with pytest.raises(CapacityError):
            cache.extend_segment(2, 5)

    def test_extend_evicts_unpinned(self, cache):
        cache.materialize(3, pin=False)   # 48 tokens, 3 unpinned after next pin
        cache.materialize(2)              # pins prompt + 2
        cache.extend_segment(2, 100)      # forces eviction of 3's tail
        assert not cache.is_resident(3)

    def test_extend_past_all_memory_raises(self, cache):
        cache.materialize(2)
        with pytest.raises(CapacityError):
            cache.extend_segment(2, 10_000)


class TestTruncate:
    def test_truncate_frees_blocks(self, cache):
        cache.materialize(2)
        cache.extend_segment(2, 48)  # 64 tokens, 4 blocks
        freed = cache.truncate_segment(2, 16)
        assert freed == 3
        assert cache.segment(2).token_len == 16

    def test_truncate_nonresident_updates_len_only(self, cache):
        cache.truncate_segment(2, 8)
        assert cache.segment(2).token_len == 8

    def test_truncate_cannot_grow(self, cache):
        with pytest.raises(ValueError):
            cache.truncate_segment(2, 999)


class TestEviction:
    def test_lru_order(self, cache):
        cache.materialize(2, pin=False)
        cache.materialize(3, pin=False)
        cache.materialize(2, pin=False)  # 2 is now more recent than 3
        cache.register_segment(5, 1, 104)
        cache.materialize(5, pin=False)  # needs one eviction: 3 goes first
        assert not cache.is_resident(3)
        assert cache.is_resident(2)

    def test_evict_path(self, cache):
        cache.materialize(4, pin=False)
        evicted = cache.evict_path(4)
        assert evicted == 3  # 4, 2, and prompt 1
        assert cache.resident_tokens == 0

    def test_evict_path_stops_at_shared(self, cache):
        cache.materialize(4, pin=False)
        cache.materialize(3, pin=False)
        cache.evict_path(4)
        assert cache.is_resident(1)  # prompt shared with path B
        assert cache.is_resident(3)

    def test_evict_all(self, cache):
        cache.materialize(4, pin=False)
        cache.materialize(3, pin=False)
        count = cache.evict_all()
        assert count == 4
        assert cache.resident_tokens == 0
        assert cache.pool.allocated_blocks == 0

    def test_evict_all_spares_pinned(self, cache):
        cache.materialize(4)  # pinned
        cache.materialize(3, pin=False)
        cache.evict_all()
        assert cache.is_resident(4)
        assert not cache.is_resident(3)

    def test_can_fit_path(self, cache):
        assert cache.can_fit_path(4)
        cache.materialize(4)
        cache.register_segment(5, 3, 200)
        assert not cache.can_fit_path(5)

    def test_can_fit_counts_evictable(self, cache):
        cache.materialize(4, pin=False)
        cache.register_segment(5, 3, 96)  # missing 112 tokens = 7 blocks
        assert cache.can_fit_path(5)      # 6 free + 2 evictable off-path
        cache.materialize(5)              # and it actually fits


class TestReset:
    def test_reset_clears_everything(self, cache):
        cache.materialize(4)
        cache.reset()
        assert cache.pool.allocated_blocks == 0
        assert cache.resident_tokens == 0
        with pytest.raises(KeyError):
            cache.segment(1)


class TestResidentSegments:
    def test_topological_order_and_residency(self, cache):
        assert cache.resident_segments() == []
        cache.materialize(4)
        cache.materialize(3, pin=False)
        segments = cache.resident_segments()
        ids = [s.segment_id for s in segments]
        assert set(ids) == {1, 2, 3, 4}
        # parents precede children, ties on ascending id
        assert ids.index(1) < ids.index(2) < ids.index(4)
        assert ids.index(1) < ids.index(3)
        assert sum(s.token_len for s in segments) == cache.resident_tokens

    def test_reflects_eviction(self, cache):
        cache.materialize(4, pin=False)
        cache.evict_path(4)
        assert cache.resident_segments() == []
