"""Tests for cache event accounting and traces."""

from repro.kvcache.cache import PagedKVCache
from repro.kvcache.events import CacheEvent, CacheEventKind, CacheStats


class TestCacheStats:
    def test_counters(self):
        stats = CacheStats()
        stats.record(CacheEvent(0.0, CacheEventKind.RECOMPUTE, 1, 100))
        stats.record(CacheEvent(1.0, CacheEventKind.HIT, 1, 50))
        stats.record(CacheEvent(2.0, CacheEventKind.EVICT, 1, 100))
        assert stats.recomputed_tokens == 100
        assert stats.hit_tokens == 50
        assert stats.evicted_tokens == 100
        assert stats.evicted_segments == 1

    def test_hit_rate(self):
        stats = CacheStats()
        stats.record(CacheEvent(0.0, CacheEventKind.RECOMPUTE, 1, 75))
        stats.record(CacheEvent(0.0, CacheEventKind.HIT, 1, 25))
        assert stats.hit_rate == 0.25

    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_trace_bounded(self):
        stats = CacheStats(trace_capacity=2)
        for i in range(5):
            stats.record(CacheEvent(float(i), CacheEventKind.ALLOCATE, i, 1))
        assert len(stats.trace) == 2

    def test_trace_disabled_by_default(self):
        stats = CacheStats()
        stats.record(CacheEvent(0.0, CacheEventKind.HIT, 1, 1))
        assert stats.trace == []


class TestCacheTraceIntegration:
    def test_cache_emits_ordered_events(self):
        cache = PagedKVCache(capacity_bytes=160 * 4, kv_bytes_per_token=4,
                             block_tokens=16, trace_capacity=100)
        cache.register_segment(1, None, 32)
        cache.register_segment(2, 1, 16)
        cache.materialize(2)
        cache.unpin_path(2)
        cache.materialize(2)
        kinds = [e.kind for e in cache.stats.trace]
        assert kinds[0] is CacheEventKind.RECOMPUTE
        assert CacheEventKind.HIT in kinds
        times = [e.time for e in cache.stats.trace]
        assert times == sorted(times)
