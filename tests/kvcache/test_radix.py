"""Tests for the radix prefix tree."""

import pytest

from repro.kvcache.radix import RadixTree


@pytest.fixture
def tree():
    """A small reasoning tree:

        1 (prompt, 10 tokens)
        |- 2 (5) -- 4 (3)
        |        \\- 5 (2)
        \\- 3 (7) -- 6 (1)
    """
    t = RadixTree()
    t.add_node(1, None, 10)
    t.add_node(2, 1, 5)
    t.add_node(3, 1, 7)
    t.add_node(4, 2, 3)
    t.add_node(5, 2, 2)
    t.add_node(6, 3, 1)
    return t


class TestRadixTree:
    def test_path(self, tree):
        assert tree.path(4) == [1, 2, 4]
        assert tree.path(1) == [1]

    def test_path_tokens(self, tree):
        assert tree.path_tokens(4) == 18
        assert tree.path_tokens(6) == 18

    def test_shared_prefix_nodes(self, tree):
        assert tree.shared_prefix_nodes(4, 5) == 2  # 1, 2
        assert tree.shared_prefix_nodes(4, 6) == 1  # 1
        assert tree.shared_prefix_nodes(4, 4) == 3

    def test_shared_prefix_tokens(self, tree):
        assert tree.shared_prefix_tokens(4, 5) == 15
        assert tree.shared_prefix_tokens(4, 6) == 10

    def test_lca(self, tree):
        assert tree.lowest_common_ancestor(4, 5) == 2
        assert tree.lowest_common_ancestor(4, 6) == 1

    def test_lca_different_roots(self):
        t = RadixTree()
        t.add_node(1, None, 1)
        t.add_node(2, None, 1)
        assert t.lowest_common_ancestor(1, 2) is None
        assert t.shared_prefix_nodes(1, 2) == 0

    def test_depth(self, tree):
        assert tree.get(1).depth == 0
        assert tree.get(4).depth == 2

    def test_leaves(self, tree):
        assert tree.leaves() == [4, 5, 6]

    def test_remove_leaf(self, tree):
        tree.remove_leaf(4)
        assert 4 not in tree
        assert 4 not in tree.get(2).children

    def test_remove_internal_raises(self, tree):
        with pytest.raises(ValueError):
            tree.remove_leaf(2)

    def test_idempotent_insert(self, tree):
        tree.add_node(4, 2, 3)  # same attributes: fine
        assert len(tree) == 6

    def test_conflicting_insert_raises(self, tree):
        with pytest.raises(ValueError):
            tree.add_node(4, 3, 3)
        with pytest.raises(ValueError):
            tree.add_node(4, 2, 99)

    def test_missing_parent_raises(self):
        t = RadixTree()
        with pytest.raises(KeyError):
            t.add_node(2, 1, 1)

    def test_set_token_len(self, tree):
        tree.set_token_len(4, 30)
        assert tree.path_tokens(4) == 45

    def test_negative_token_len_raises(self, tree):
        with pytest.raises(ValueError):
            tree.add_node(99, 1, -1)

    def test_contains(self, tree):
        assert 3 in tree
        assert 99 not in tree


class TestEnsureNode:
    def test_inserts_then_updates_length(self):
        tree = RadixTree()
        node = tree.ensure_node(1, None, 10)
        assert node.token_len == 10
        # a growing segment re-registers with a longer length
        again = tree.ensure_node(1, None, 25)
        assert again is node
        assert tree.get(1).token_len == 25

    def test_parent_mismatch_is_structural_corruption(self):
        tree = RadixTree()
        tree.ensure_node(1, None, 10)
        tree.ensure_node(2, 1, 5)
        with pytest.raises(ValueError, match="parent"):
            tree.ensure_node(2, None, 5)

    def test_children_and_depth_as_add_node(self):
        tree = RadixTree()
        tree.ensure_node(1, None, 10)
        tree.ensure_node(2, 1, 5)
        assert tree.get(2).depth == 1
        assert 2 in tree.get(1).children
