"""Tests for the KV block pool."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.kvcache.block import BlockPool, blocks_for_tokens


class TestBlocksForTokens:
    def test_exact_fit(self):
        assert blocks_for_tokens(32, 16) == 2

    def test_ceiling(self):
        assert blocks_for_tokens(17, 16) == 2

    def test_zero_tokens(self):
        assert blocks_for_tokens(0, 16) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            blocks_for_tokens(-1, 16)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_covers_tokens_minimally(self, tokens, block):
        blocks = blocks_for_tokens(tokens, block)
        assert blocks * block >= tokens
        assert (blocks - 1) * block < tokens or blocks == 0


class TestBlockPool:
    def test_allocate_free_cycle(self):
        pool = BlockPool(total_blocks=10)
        pool.allocate(4)
        assert pool.free_blocks == 6
        pool.free(4)
        assert pool.free_blocks == 10

    def test_over_allocate_raises(self):
        pool = BlockPool(total_blocks=3)
        with pytest.raises(CapacityError):
            pool.allocate(4)

    def test_over_free_raises(self):
        pool = BlockPool(total_blocks=3)
        pool.allocate(2)
        with pytest.raises(CapacityError):
            pool.free(3)

    def test_from_bytes(self):
        pool = BlockPool.from_bytes(
            capacity_bytes=16 * 100 * 10, kv_bytes_per_token=100, block_tokens=16
        )
        assert pool.total_blocks == 10
        assert pool.capacity_tokens == 160

    def test_can_allocate(self):
        pool = BlockPool(total_blocks=2)
        assert pool.can_allocate(2)
        assert not pool.can_allocate(3)
        assert not pool.can_allocate(-1)

    def test_negative_allocate_raises(self):
        with pytest.raises(ValueError):
            BlockPool(total_blocks=2).allocate(-1)

    @given(st.lists(st.integers(1, 5), max_size=20))
    def test_accounting_invariant(self, requests):
        pool = BlockPool(total_blocks=30)
        held = 0
        for req in requests:
            if pool.can_allocate(req):
                pool.allocate(req)
                held += req
            assert pool.allocated_blocks == held
            assert pool.free_blocks == 30 - held
