"""Tests for the device registry."""

import pytest

from repro.errors import ModelLookupError
from repro.hardware.device import (
    DeviceSpec,
    get_device,
    list_devices,
    register_device,
)

_GB = 1024**3


class TestDeviceSpec:
    def test_usable_bytes_excludes_reserved(self):
        spec = DeviceSpec("x", vram_bytes=10 * _GB, peak_flops=1e12,
                          mem_bandwidth=1e11, reserved_fraction=0.1)
        assert spec.usable_bytes == int(10 * _GB * 0.9)

    def test_ridge_intensity(self):
        spec = DeviceSpec("x", vram_bytes=_GB, peak_flops=2e12, mem_bandwidth=1e12)
        assert spec.ridge_intensity == 2.0

    def test_rejects_nonpositive_vram(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", vram_bytes=0, peak_flops=1.0, mem_bandwidth=1.0)

    def test_rejects_bad_reserved_fraction(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", vram_bytes=1, peak_flops=1.0, mem_bandwidth=1.0,
                       reserved_fraction=1.0)


class TestRegistry:
    def test_paper_devices_present(self):
        for name in ("rtx4090", "rtx4070ti", "rtx3070ti", "a100-80gb", "h100-sxm"):
            assert name in list_devices()

    def test_rtx4090_is_24gb(self):
        assert get_device("rtx4090").vram_bytes == 24 * _GB

    def test_edge_vram_ordering(self):
        assert (
            get_device("rtx3070ti").vram_bytes
            < get_device("rtx4070ti").vram_bytes
            < get_device("rtx4090").vram_bytes
        )

    def test_unknown_device_raises(self):
        with pytest.raises(ModelLookupError):
            get_device("rtx9090")

    def test_unknown_device_suggests_nearest(self):
        with pytest.raises(ModelLookupError) as excinfo:
            get_device("rtx409")
        assert "did you mean 'rtx4090'?" in str(excinfo.value)
        assert "known devices:" in str(excinfo.value)

    def test_register_idempotent(self):
        spec = get_device("rtx4090")
        assert register_device(spec) is spec

    def test_register_conflict_raises(self):
        conflicting = DeviceSpec("rtx4090", vram_bytes=1 * _GB,
                                 peak_flops=1.0, mem_bandwidth=1.0)
        with pytest.raises(ValueError):
            register_device(conflicting)
