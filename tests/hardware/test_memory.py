"""Tests for the GPU memory ledgers."""

import pytest

from repro.errors import CapacityError
from repro.hardware.device import DeviceSpec
from repro.hardware.memory import (
    KVLedger,
    KVSegment,
    MemoryLedger,
    SharedKVLedger,
)

_GB = 1024**3


@pytest.fixture
def ledger():
    device = DeviceSpec("t", vram_bytes=10 * _GB, peak_flops=1e12,
                        mem_bandwidth=1e11, reserved_fraction=0.0)
    return MemoryLedger(device)


class TestMemoryLedger:
    def test_reserve_and_free(self, ledger):
        ledger.reserve("gen", "weights", 4 * _GB)
        assert ledger.allocated_bytes == 4 * _GB
        assert ledger.free_bytes == 6 * _GB

    def test_over_allocation_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.reserve("gen", "kv", 11 * _GB)

    def test_re_reserve_replaces(self, ledger):
        ledger.reserve("gen", "kv", 4 * _GB)
        ledger.reserve("gen", "kv", 2 * _GB)
        assert ledger.reserved_for("gen", "kv") == 2 * _GB
        assert ledger.allocated_bytes == 2 * _GB

    def test_re_reserve_can_grow_within_budget(self, ledger):
        ledger.reserve("gen", "kv", 8 * _GB)
        ledger.reserve("gen", "kv", 10 * _GB)  # old amount returns first
        assert ledger.reserved_for("gen", "kv") == 10 * _GB

    def test_release(self, ledger):
        ledger.reserve("gen", "weights", _GB)
        ledger.release("gen", "weights")
        assert ledger.free_bytes == 10 * _GB

    def test_release_missing_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.release("gen", "kv")

    def test_invalid_kind_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.reserve("gen", "scratch", 1)

    def test_negative_bytes_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.reserve("gen", "kv", -1)

    def test_breakdown(self, ledger):
        ledger.reserve("gen", "weights", _GB)
        ledger.reserve("ver", "kv", 2 * _GB)
        breakdown = ledger.breakdown()
        assert breakdown["gen/weights"] == _GB
        assert breakdown["ver/kv"] == 2 * _GB
        assert breakdown["free"] == 7 * _GB

    def test_reserved_fraction_respected(self):
        device = DeviceSpec("t2", vram_bytes=10 * _GB, peak_flops=1e12,
                            mem_bandwidth=1e11, reserved_fraction=0.2)
        ledger = MemoryLedger(device)
        assert ledger.capacity_bytes == int(8 * _GB)
        with pytest.raises(CapacityError):
            ledger.reserve("gen", "kv", 9 * _GB)


class TestKVLedger:
    def test_growth_within_capacity_is_free(self):
        ledger = KVLedger(100)
        assert ledger.charge_growth("a", 40) == (0, [])
        assert ledger.charge_growth("b", 50) == (0, [])
        assert ledger.resident_bytes == 90
        assert ledger.free_bytes == 10
        assert ledger.swapped_out_bytes == 0

    def test_growth_evicts_lru_co_resident(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 30)
        # a grows past what fits next to b: b (LRU is a... a just grew) —
        # the victim is the least-recently-run *other* owner
        restored, evicted = ledger.charge_growth("a", 80)
        assert restored == 0
        assert evicted == [("b", 30)]
        assert ledger.resident_of("b") == 0
        assert ledger.swapped_of("b") == 30
        assert ledger.swapped_out_bytes == 30
        assert ledger.resident_bytes == 80

    def test_restore_brings_back_evicted_kv(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 30)
        ledger.charge_growth("a", 80)  # evicts b
        back, evicted = ledger.restore("b")
        assert back == 30
        assert evicted == [("a", 80)]  # a displaced in turn
        assert ledger.resident_of("b") == 30
        assert ledger.swapped_of("a") == 80
        assert ledger.swapped_in_bytes == 30

    def test_restore_without_eviction_is_noop(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        assert ledger.restore("a") == (0, [])
        assert ledger.restore("never-seen") == (0, [])

    def test_eviction_order_is_least_recently_run(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 30)
        ledger.charge_growth("b", 30)
        ledger.charge_growth("a", 30)  # refreshes a: b is now LRU
        _, evicted = ledger.charge_growth("c", 70)
        assert [owner for owner, _ in evicted] == ["b"]

    def test_lone_owner_may_fill_the_budget(self):
        ledger = KVLedger(100)
        assert ledger.charge_growth("a", 100) == (0, [])
        assert ledger.free_bytes == 0

    def test_admit_rejects_over_capacity(self):
        ledger = KVLedger(100)
        with pytest.raises(CapacityError):
            ledger.admit("a", 101)
        assert ledger.resident_bytes == 0

    def test_admit_evicts_to_fit(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 70)
        evicted = ledger.admit("b", 60)  # admit still returns evictions only
        assert evicted == [("a", 70)]
        assert ledger.resident_of("b") == 60

    def test_release_frees_everything(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 30)
        ledger.charge_growth("a", 80)  # b evicted
        assert ledger.release("b") == 0  # b had no device-resident bytes
        assert ledger.swapped_of("b") == 0  # host side gone too
        assert ledger.release("a") == 80
        assert ledger.resident_bytes == 0
        assert ledger.owners == []

    def test_peak_tracking(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 35)
        ledger.charge_growth("a", 10)
        assert ledger.peak_resident_bytes == 95

    def test_validation(self):
        with pytest.raises(ValueError):
            KVLedger(0)
        ledger = KVLedger(10)
        with pytest.raises(ValueError):
            ledger.charge_growth("a", -1)
        with pytest.raises(ValueError):
            ledger.admit("a", -1)


class TestChargeGrowthOnEvictedOwner:
    """Regression: growth on a (partially) evicted owner must not lose
    its swapped-out bytes — the PCIe read back is part of serving it."""

    def test_growth_routes_through_restore_accounting(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 30)
        ledger.charge_growth("a", 80)  # evicts b: 30 B on host
        assert ledger.swapped_of("b") == 30
        # b grows while evicted: the ledger reports the restore so the
        # caller can bill the PCIe read, and the books stay conserved.
        restored, evicted = ledger.charge_growth("b", 45)
        assert restored == 30
        assert ledger.swapped_in_bytes == 30
        assert ledger.swapped_of("b") == 0
        assert ledger.resident_of("b") == 45
        # conservation: nothing silently vanished from the totals — the
        # cumulative write-outs are b's original 30 plus a, which b's own
        # growth displaced in turn
        assert ledger.swapped_out_bytes == 110
        assert [owner for owner, _ in evicted] == ["a"]

    def test_growth_on_resident_owner_restores_nothing(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 40)
        restored, evicted = ledger.charge_growth("a", 70)
        assert restored == 0 and evicted == []
        assert ledger.swapped_in_bytes == 0


class TestSharedKVLedger:
    """Segment-granular accounting with cross-session prefix sharing."""

    @staticmethod
    def seg(node, parent, num_bytes):
        return KVSegment(node, parent, num_bytes)

    def lineage(self, *sizes, base=1):
        """A root->leaf chain of claims with the given byte sizes."""
        claims, parent = [], None
        for i, size in enumerate(sizes):
            node = base * 1000 + i
            claims.append(self.seg(node, parent, size))
            parent = node
        return claims

    def test_shared_segments_billed_once(self):
        ledger = SharedKVLedger(1000)
        chain = self.lineage(40, 30, 20)
        ledger.charge_growth_segments("a", chain)
        ledger.charge_growth_segments("b", chain)
        assert ledger.resident_bytes == 90  # not 180
        assert ledger.resident_of("a") == 90
        assert ledger.resident_of("b") == 90
        assert ledger.logical_resident_bytes == 180
        assert ledger.shared_bytes == 90
        assert ledger.dedup_ratio == pytest.approx(180 / 90)

    def test_divergent_suffixes_are_private(self):
        ledger = SharedKVLedger(1000)
        root = self.seg(1, None, 50)
        ledger.charge_growth_segments("a", [root, self.seg(2, 1, 30)])
        ledger.charge_growth_segments("b", [root, self.seg(3, 1, 20)])
        assert ledger.resident_bytes == 100
        assert ledger.shared_bytes == 50  # only the root
        assert ledger.segment_owners(1) == ["a", "b"]
        assert ledger.segment_owners(2) == ["a"]

    def test_eviction_spares_the_running_sessions_path(self):
        ledger = SharedKVLedger(100)
        shared = self.seg(1, None, 40)
        ledger.charge_growth_segments("a", [shared, self.seg(2, 1, 30)])
        # b's growth oversubscribes: only a's private leaf is evictable —
        # the shared root is on b's own path and never leaves.
        restored, evicted = ledger.charge_growth_segments(
            "b", [shared, self.seg(3, 1, 50)]
        )
        assert restored == 0
        assert evicted == [("seg:2", 30)]
        assert ledger.resident_bytes == 90
        assert ledger.resident_of("a") == 40  # root still resident for a
        assert ledger.swapped_of("a") == 30
        assert ledger.swapped_out_bytes == 30

    def test_restore_charges_unique_bytes_only(self):
        ledger = SharedKVLedger(100)
        shared = self.seg(1, None, 40)
        ledger.charge_growth_segments("a", [shared, self.seg(2, 1, 30)])
        ledger.charge_growth_segments("b", [shared, self.seg(3, 1, 50)])
        # a resumes: only its private 30 B leaf crosses PCIe — the shared
        # root stayed resident on b's behalf.
        restored, evicted = ledger.restore("a")
        assert restored == 30
        assert ledger.swapped_in_bytes == 30
        assert [label for label, _ in evicted] == ["seg:3"]
        assert ledger.resident_of("a") == 70

    def test_release_keeps_shared_segments_for_survivors(self):
        ledger = SharedKVLedger(1000)
        chain = self.lineage(40, 30)
        ledger.charge_growth_segments("a", chain)
        ledger.charge_growth_segments("b", chain + [self.seg(9, 1001, 25)])
        freed = ledger.release("a")
        assert freed == 0  # every byte is still needed by b
        assert ledger.resident_bytes == 95
        freed = ledger.release("b")
        assert freed == 95
        assert ledger.resident_bytes == 0

    def test_growth_on_evicted_owner_routes_restore(self):
        """Same regression as the base ledger, at segment granularity."""
        ledger = SharedKVLedger(100)
        ledger.charge_growth_segments("a", self.lineage(60, base=1))
        ledger.charge_growth_segments("b", self.lineage(70, base=2))  # evicts a
        assert ledger.swapped_of("a") == 60
        restored, _ = ledger.charge_growth_segments("a", self.lineage(65, base=1))
        assert restored == 60
        assert ledger.swapped_in_bytes == 60
        assert ledger.swapped_of("a") == 0

    def test_leaf_frontier_eviction_order(self):
        """A prefix never leaves the device before its resident suffix."""
        ledger = SharedKVLedger(100)
        ledger.charge_growth_segments("a", self.lineage(30, 30, base=1))
        _, evicted = ledger.charge_growth_segments("b", self.lineage(80, base=2))
        # a's leaf (deeper, same stamp) must go before its root.
        assert [label for label, _ in evicted] == ["seg:1001", "seg:1000"]

    def test_byte_level_fallback_and_admit(self):
        ledger = SharedKVLedger(100)
        ledger.charge_growth("a", 70)
        assert ledger.resident_of("a") == 70
        evicted = ledger.admit("b", 60)
        assert evicted and ledger.resident_of("b") == 60
        with pytest.raises(CapacityError):
            ledger.admit("c", 101)

    def test_owner_leaf_is_deepest_then_lowest_id(self):
        ledger = SharedKVLedger(1000)
        root = self.seg(5, None, 10)
        ledger.charge_growth_segments(
            "a", [root, self.seg(9, 5, 10), self.seg(7, 5, 10)]
        )
        assert ledger.owner_leaf("a") == 7  # depth 1 tie -> lowest id
        assert ledger.owner_leaf("nobody") is None

    def test_peaks_and_segment_growth(self):
        ledger = SharedKVLedger(1000)
        ledger.charge_growth_segments("a", self.lineage(40, base=1))
        ledger.charge_growth_segments("b", self.lineage(40, base=1))
        # the actively decoding tail lengthens: same node, more bytes
        ledger.charge_growth_segments("a", self.lineage(55, base=1))
        assert ledger.resident_bytes == 55  # longest claim wins
        assert ledger.peak_resident_bytes == 55
        assert ledger.peak_logical_bytes == 95
        assert ledger.peak_shared_bytes == 40
