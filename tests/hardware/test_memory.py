"""Tests for the GPU memory ledgers."""

import pytest

from repro.errors import CapacityError
from repro.hardware.device import DeviceSpec
from repro.hardware.memory import KVLedger, MemoryLedger

_GB = 1024**3


@pytest.fixture
def ledger():
    device = DeviceSpec("t", vram_bytes=10 * _GB, peak_flops=1e12,
                        mem_bandwidth=1e11, reserved_fraction=0.0)
    return MemoryLedger(device)


class TestMemoryLedger:
    def test_reserve_and_free(self, ledger):
        ledger.reserve("gen", "weights", 4 * _GB)
        assert ledger.allocated_bytes == 4 * _GB
        assert ledger.free_bytes == 6 * _GB

    def test_over_allocation_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.reserve("gen", "kv", 11 * _GB)

    def test_re_reserve_replaces(self, ledger):
        ledger.reserve("gen", "kv", 4 * _GB)
        ledger.reserve("gen", "kv", 2 * _GB)
        assert ledger.reserved_for("gen", "kv") == 2 * _GB
        assert ledger.allocated_bytes == 2 * _GB

    def test_re_reserve_can_grow_within_budget(self, ledger):
        ledger.reserve("gen", "kv", 8 * _GB)
        ledger.reserve("gen", "kv", 10 * _GB)  # old amount returns first
        assert ledger.reserved_for("gen", "kv") == 10 * _GB

    def test_release(self, ledger):
        ledger.reserve("gen", "weights", _GB)
        ledger.release("gen", "weights")
        assert ledger.free_bytes == 10 * _GB

    def test_release_missing_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.release("gen", "kv")

    def test_invalid_kind_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.reserve("gen", "scratch", 1)

    def test_negative_bytes_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.reserve("gen", "kv", -1)

    def test_breakdown(self, ledger):
        ledger.reserve("gen", "weights", _GB)
        ledger.reserve("ver", "kv", 2 * _GB)
        breakdown = ledger.breakdown()
        assert breakdown["gen/weights"] == _GB
        assert breakdown["ver/kv"] == 2 * _GB
        assert breakdown["free"] == 7 * _GB

    def test_reserved_fraction_respected(self):
        device = DeviceSpec("t2", vram_bytes=10 * _GB, peak_flops=1e12,
                            mem_bandwidth=1e11, reserved_fraction=0.2)
        ledger = MemoryLedger(device)
        assert ledger.capacity_bytes == int(8 * _GB)
        with pytest.raises(CapacityError):
            ledger.reserve("gen", "kv", 9 * _GB)


class TestKVLedger:
    def test_growth_within_capacity_is_free(self):
        ledger = KVLedger(100)
        assert ledger.charge_growth("a", 40) == []
        assert ledger.charge_growth("b", 50) == []
        assert ledger.resident_bytes == 90
        assert ledger.free_bytes == 10
        assert ledger.swapped_out_bytes == 0

    def test_growth_evicts_lru_co_resident(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 30)
        # a grows past what fits next to b: b (LRU is a... a just grew) —
        # the victim is the least-recently-run *other* owner
        evicted = ledger.charge_growth("a", 80)
        assert evicted == [("b", 30)]
        assert ledger.resident_of("b") == 0
        assert ledger.swapped_of("b") == 30
        assert ledger.swapped_out_bytes == 30
        assert ledger.resident_bytes == 80

    def test_restore_brings_back_evicted_kv(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 30)
        ledger.charge_growth("a", 80)  # evicts b
        back, evicted = ledger.restore("b")
        assert back == 30
        assert evicted == [("a", 80)]  # a displaced in turn
        assert ledger.resident_of("b") == 30
        assert ledger.swapped_of("a") == 80
        assert ledger.swapped_in_bytes == 30

    def test_restore_without_eviction_is_noop(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        assert ledger.restore("a") == (0, [])
        assert ledger.restore("never-seen") == (0, [])

    def test_eviction_order_is_least_recently_run(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 30)
        ledger.charge_growth("b", 30)
        ledger.charge_growth("a", 30)  # refreshes a: b is now LRU
        evicted = ledger.charge_growth("c", 70)
        assert [owner for owner, _ in evicted] == ["b"]

    def test_lone_owner_may_fill_the_budget(self):
        ledger = KVLedger(100)
        assert ledger.charge_growth("a", 100) == []
        assert ledger.free_bytes == 0

    def test_admit_rejects_over_capacity(self):
        ledger = KVLedger(100)
        with pytest.raises(CapacityError):
            ledger.admit("a", 101)
        assert ledger.resident_bytes == 0

    def test_admit_evicts_to_fit(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 70)
        evicted = ledger.admit("b", 60)
        assert evicted == [("a", 70)]
        assert ledger.resident_of("b") == 60

    def test_release_frees_everything(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 30)
        ledger.charge_growth("a", 80)  # b evicted
        assert ledger.release("b") == 0  # b had no device-resident bytes
        assert ledger.swapped_of("b") == 0  # host side gone too
        assert ledger.release("a") == 80
        assert ledger.resident_bytes == 0
        assert ledger.owners == []

    def test_peak_tracking(self):
        ledger = KVLedger(100)
        ledger.charge_growth("a", 60)
        ledger.charge_growth("b", 35)
        ledger.charge_growth("a", 10)
        assert ledger.peak_resident_bytes == 95

    def test_validation(self):
        with pytest.raises(ValueError):
            KVLedger(0)
        ledger = KVLedger(10)
        with pytest.raises(ValueError):
            ledger.charge_growth("a", -1)
        with pytest.raises(ValueError):
            ledger.admit("a", -1)
