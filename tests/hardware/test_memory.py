"""Tests for the GPU memory ledger."""

import pytest

from repro.errors import CapacityError
from repro.hardware.device import DeviceSpec
from repro.hardware.memory import MemoryLedger

_GB = 1024**3


@pytest.fixture
def ledger():
    device = DeviceSpec("t", vram_bytes=10 * _GB, peak_flops=1e12,
                        mem_bandwidth=1e11, reserved_fraction=0.0)
    return MemoryLedger(device)


class TestMemoryLedger:
    def test_reserve_and_free(self, ledger):
        ledger.reserve("gen", "weights", 4 * _GB)
        assert ledger.allocated_bytes == 4 * _GB
        assert ledger.free_bytes == 6 * _GB

    def test_over_allocation_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.reserve("gen", "kv", 11 * _GB)

    def test_re_reserve_replaces(self, ledger):
        ledger.reserve("gen", "kv", 4 * _GB)
        ledger.reserve("gen", "kv", 2 * _GB)
        assert ledger.reserved_for("gen", "kv") == 2 * _GB
        assert ledger.allocated_bytes == 2 * _GB

    def test_re_reserve_can_grow_within_budget(self, ledger):
        ledger.reserve("gen", "kv", 8 * _GB)
        ledger.reserve("gen", "kv", 10 * _GB)  # old amount returns first
        assert ledger.reserved_for("gen", "kv") == 10 * _GB

    def test_release(self, ledger):
        ledger.reserve("gen", "weights", _GB)
        ledger.release("gen", "weights")
        assert ledger.free_bytes == 10 * _GB

    def test_release_missing_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.release("gen", "kv")

    def test_invalid_kind_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.reserve("gen", "scratch", 1)

    def test_negative_bytes_raises(self, ledger):
        with pytest.raises(ValueError):
            ledger.reserve("gen", "kv", -1)

    def test_breakdown(self, ledger):
        ledger.reserve("gen", "weights", _GB)
        ledger.reserve("ver", "kv", 2 * _GB)
        breakdown = ledger.breakdown()
        assert breakdown["gen/weights"] == _GB
        assert breakdown["ver/kv"] == 2 * _GB
        assert breakdown["free"] == 7 * _GB

    def test_reserved_fraction_respected(self):
        device = DeviceSpec("t2", vram_bytes=10 * _GB, peak_flops=1e12,
                            mem_bandwidth=1e11, reserved_fraction=0.2)
        ledger = MemoryLedger(device)
        assert ledger.capacity_bytes == int(8 * _GB)
        with pytest.raises(CapacityError):
            ledger.reserve("gen", "kv", 9 * _GB)
