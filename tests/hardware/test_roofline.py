"""Tests for the roofline latency model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.device import DeviceSpec, get_device
from repro.hardware.roofline import Roofline

_GB = 1024**3

device = DeviceSpec("test-dev", vram_bytes=8 * _GB, peak_flops=1e12,
                    mem_bandwidth=1e11)


class TestRoofline:
    def test_compute_bound_point(self):
        # High arithmetic intensity: compute limits.
        point = Roofline(device, efficiency=1.0).point(flops=1e12, num_bytes=1e6)
        assert point.compute_bound
        assert point.latency == pytest.approx(1.0)

    def test_memory_bound_point(self):
        point = Roofline(device, efficiency=1.0).point(flops=1e6, num_bytes=1e11)
        assert not point.compute_bound
        assert point.latency == pytest.approx(1.0)

    def test_latency_is_max_of_both(self):
        r = Roofline(device, efficiency=1.0)
        point = r.point(flops=5e11, num_bytes=5e10)
        assert point.latency == max(point.compute_time, point.memory_time)

    def test_efficiency_scales_latency(self):
        full = Roofline(device, efficiency=1.0).latency(1e12, 1e6)
        derated = Roofline(device, efficiency=0.5).latency(1e12, 1e6)
        assert derated == pytest.approx(2 * full)

    def test_arithmetic_intensity(self):
        point = Roofline(device).point(flops=100.0, num_bytes=50.0)
        assert point.arithmetic_intensity == 2.0

    def test_zero_bytes_infinite_intensity(self):
        point = Roofline(device).point(flops=100.0, num_bytes=0.0)
        assert point.arithmetic_intensity == float("inf")

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            Roofline(device).point(-1.0, 0.0)

    def test_bad_efficiency_raises(self):
        with pytest.raises(ValueError):
            Roofline(device, efficiency=0.0)

    @given(
        st.floats(min_value=0, max_value=1e15),
        st.floats(min_value=0, max_value=1e12),
    )
    def test_latency_monotone_in_work(self, flops, num_bytes):
        r = Roofline(get_device("rtx4090"))
        base = r.latency(flops, num_bytes)
        assert r.latency(flops * 2, num_bytes) >= base
        assert r.latency(flops, num_bytes * 2) >= base

    def test_ridge_point_transition(self):
        """Below the ridge intensity memory binds; above it compute binds."""
        r = Roofline(device, efficiency=1.0)
        ridge = device.ridge_intensity
        below = r.point(flops=ridge * 0.5 * 1e6, num_bytes=1e6)
        above = r.point(flops=ridge * 2.0 * 1e6, num_bytes=1e6)
        assert not below.compute_bound
        assert above.compute_bound
