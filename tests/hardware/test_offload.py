"""Tests for the PCIe offload transfer model."""

import pytest

from repro.hardware.device import DeviceSpec
from repro.hardware.offload import OffloadLink

device = DeviceSpec("t", vram_bytes=1024**3, peak_flops=1e12,
                    mem_bandwidth=1e11, pcie_bandwidth=10e9)


class TestOffloadLink:
    def test_zero_bytes_is_free(self):
        assert OffloadLink(device).transfer_time(0) == 0.0

    def test_transfer_includes_fixed_latency(self):
        link = OffloadLink(device, fixed_latency=1e-3)
        assert link.transfer_time(1) >= 1e-3

    def test_bandwidth_term(self):
        link = OffloadLink(device, fixed_latency=0.0)
        assert link.transfer_time(10_000_000_000) == pytest.approx(1.0)

    def test_swap_is_two_transfers(self):
        link = OffloadLink(device, fixed_latency=0.0)
        swap = link.swap_time(5_000_000_000, 5_000_000_000)
        assert swap == pytest.approx(1.0)

    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError):
            OffloadLink(device).transfer_time(-1)

    def test_monotone_in_bytes(self):
        link = OffloadLink(device)
        assert link.transfer_time(2_000_000) > link.transfer_time(1_000_000)
