"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.dataset == "aime24"
        assert args.n == 16

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--device", "tpu-v9"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.n_values == [4, 8, 16]
        assert not args.no_cache

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.requests == 6
        assert args.arrivals == "poisson"
        assert args.max_in_flight is None


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "rtx4090" in out
        assert "beam_search" in out

    def test_straggler(self, capsys):
        assert main(["straggler", "--dataset", "amc23"]) == 0
        out = capsys.readouterr().out
        assert "idle" in out

    def test_report(self, capsys):
        assert main(["report", "--memory-fraction", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "allocator plan" in out

    def test_solve_small(self, capsys):
        code = main([
            "solve", "--dataset", "amc23", "-n", "8",
            "--memory-fraction", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput gain" in out
        assert "baseline" in out and "fasttts" in out

    def test_solve_negative_problem_rejected(self, capsys):
        code = main(["solve", "--dataset", "amc23", "--problem", "-1"])
        assert code == 2
        captured = capsys.readouterr()
        assert "non-negative" in captured.err
        assert captured.out == ""  # no silent end-of-dataset indexing

    def test_sweep_bad_args_rejected(self, capsys):
        assert main(["sweep", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["sweep", "--problems", "0"]) == 2
        assert "--problems" in capsys.readouterr().err

    def test_fleet_zero_requests_rejected(self, capsys):
        assert main(["fleet", "--requests", "0"]) == 2
        assert "--requests" in capsys.readouterr().err

    def test_fleet_bad_args_rejected(self, capsys):
        assert main(["fleet", "--rate", "0"]) == 2
        assert "--rate" in capsys.readouterr().err
        assert main(["fleet", "--rate", "-0.5"]) == 2
        assert "--rate" in capsys.readouterr().err
        assert main(["fleet", "--max-in-flight", "0"]) == 2
        assert "--max-in-flight" in capsys.readouterr().err
        assert main(["fleet", "-n", "0"]) == 2
        assert "-n" in capsys.readouterr().err

    def test_sweep_small(self, capsys, tmp_path):
        argv = [
            "sweep", "--dataset", "amc23", "--problems", "1",
            "--n-values", "4", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "gain x" in first
        assert "0 hits, 2 misses" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 hits, 0 misses" in second

    def test_fleet_small(self, capsys):
        code = main([
            "fleet", "--dataset", "amc23", "--requests", "2", "-n", "4",
            "--rate", "0.05", "--system", "baseline",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput req/s" in out
        assert "queue delay p95 s" in out

    def test_fleet_scheduler_policy(self, capsys):
        code = main([
            "fleet", "--dataset", "amc23", "--requests", "2", "-n", "4",
            "--rate", "0.05", "--system", "baseline",
            "--scheduler", "round_robin",
        ])
        assert code == 0
        assert "[round_robin]" in capsys.readouterr().out

    def test_fleet_scheduler_comparison(self, capsys):
        code = main([
            "fleet", "--dataset", "amc23", "--requests", "2", "-n", "4",
            "--rate", "0.2", "--system", "baseline", "--scheduler", "all",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for policy in ("fifo", "sjf", "round_robin", "first_finish"):
            assert policy in out
        assert "cancelled s" in out

    def test_fleet_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--scheduler", "priority"])

    def test_fleet_unknown_placement_rejected(self):
        # argparse choices: same exit-2 convention as the other flags
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fleet", "--placement", "spread"])
        assert excinfo.value.code == 2

    def test_fleet_empty_device_list_rejected(self, capsys):
        assert main(["fleet", "--devices", ""]) == 2
        assert "at least one device" in capsys.readouterr().err
        assert main(["fleet", "--devices", " , "]) == 2
        assert "at least one device" in capsys.readouterr().err

    def test_fleet_blank_device_entry_rejected(self, capsys):
        assert main(["fleet", "--devices", "rtx4090,,rtx4070ti"]) == 2
        assert "empty entry" in capsys.readouterr().err

    def test_fleet_unknown_device_in_list_suggests(self, capsys):
        assert main(["fleet", "--devices", "rtx4090,rtx407ti"]) == 2
        err = capsys.readouterr().err
        assert "unknown device 'rtx407ti'" in err
        assert "did you mean 'rtx4070ti'?" in err

    def test_fleet_multi_device(self, capsys):
        code = main([
            "fleet", "--dataset", "amc23", "--requests", "2", "-n", "4",
            "--rate", "0.05", "--memory-fraction", "0.9",
            "--devices", "rtx4090,rtx4070ti", "--placement", "least_loaded",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "placement least_loaded" in out
        assert "per-device utilization" in out
        assert "dev0:rtx4090" in out and "dev1:rtx4070ti" in out

    def test_fleet_prefix_affinity_placement(self, capsys):
        code = main([
            "fleet", "--dataset", "amc23", "--requests", "2", "-n", "4",
            "--rate", "0.05", "--memory-fraction", "0.9",
            "--devices", "rtx4090,rtx4090", "--placement", "prefix_affinity",
            "--kv-sharing", "prefix",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "placement prefix_affinity" in out
        assert "affinity hit ratio" in out
        assert "kv unique admitted MB" in out

    def test_fleet_duplicate_devices_get_distinct_lane_ids(self, capsys):
        # Duplicate --devices entries are deliberately legal: fault drills
        # span pools of identical cards. Each lane id is index-suffixed so
        # duplicates never collide.
        code = main([
            "fleet", "--dataset", "amc23", "--requests", "2", "-n", "4",
            "--rate", "0.05", "--memory-fraction", "0.9",
            "--devices", "rtx4090,rtx4090", "--placement", "least_loaded",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dev0:rtx4090" in out and "dev1:rtx4090" in out

    def test_fleet_lane_pool(self, capsys):
        code = main([
            "fleet", "--dataset", "amc23", "--requests", "2", "-n", "4",
            "--rate", "0.05", "--memory-fraction", "0.9",
            "--lane", "7B+1.5B@rtx4090,1.5B+1.5B@rtx4090:int8",
            "--router", "cascade", "--placement", "least_loaded",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "router cascade" in out
        assert "per-lane-class rollup" in out
        assert "router decisions" in out
        assert "escalations" in out

    def test_fleet_lane_and_devices_exclusive(self, capsys):
        assert main([
            "fleet", "--lane", "7B+1.5B@rtx4090", "--devices", "rtx4090",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_fleet_bad_lane_spec_rejected(self, capsys):
        assert main(["fleet", "--lane", "7B+1.5B"]) == 2
        assert "missing '@'" in capsys.readouterr().err
        assert main(["fleet", "--lane", "7B+1.5B@rtx4090:int88"]) == 2
        assert "did you mean 'int8'" in capsys.readouterr().err

    def test_fleet_unknown_router_suggests(self, capsys):
        assert main(["fleet", "--router", "cascde"]) == 2
        err = capsys.readouterr().err
        assert "unknown router 'cascde'" in err
        assert "did you mean 'cascade'?" in err

    def test_schedulers_listing(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for policy in ("fifo", "sjf", "round_robin", "first_finish"):
            assert policy in out
        for placement in (
            "first_fit", "least_loaded", "kv_balanced", "prefix_affinity"
        ):
            assert placement in out
        for router in ("static", "predicted", "cascade"):
            assert router in out

    def test_devices_listing(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "rtx4090" in out and "rtx4070ti" in out
        assert "vram GB" in out and "pcie GB/s" in out


class TestTraceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace", "run"])
        assert args.trace_command == "run"
        assert args.requests == 8
        assert args.late_policy == "serve_late"
        assert args.tenant is None

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_generate_then_replay(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main([
            "trace", "generate", "--out", str(path),
            "--tenant", "t0:rate=0.2,n=1,deadline=120,ttft=60",
            "--requests", "3", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "t0" in out and str(path) in out
        assert path.exists()

        assert main(["trace", "replay", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-tenant SLOs" in out
        assert "fleet SLO summary" in out
        assert "slo attainment" in out

    def test_run_matches_replay(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        argv_tail = ["--tenant", "t0:rate=0.3,n=1,deadline=60",
                     "--requests", "3", "--seed", "2"]
        assert main(["trace", "run", "--out", str(path), *argv_tail]) == 0
        run_out = capsys.readouterr().out.splitlines()
        assert main(["trace", "replay", "--trace", str(path)]) == 0
        replay_out = capsys.readouterr().out.splitlines()
        # Identical serving output modulo the leading "wrote <path>" line.
        assert run_out[1:] == replay_out

    def test_default_tenants(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main([
            "trace", "generate", "--out", str(path), "--requests", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "chat" in out and "batch" in out

    def test_drop_policy_reports_drops(self, capsys):
        code = main([
            "trace", "run", "--late-policy", "drop",
            "--tenant", "t0:rate=2.0,n=1,deadline=5,requests=6",
            "--seed", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "late-policy drop" in out
        assert "deadline expired" in out

    def test_negative_rate_rejected(self, capsys):
        assert main(["trace", "run", "--tenant", "t:rate=-1"]) == 2
        assert "rate > 0" in capsys.readouterr().err

    def test_unknown_arrival_suggests(self, capsys):
        assert main(["trace", "run", "--tenant", "t:arrival=posson"]) == 2
        assert "did you mean 'poisson'" in capsys.readouterr().err

    def test_nonpositive_deadline_rejected(self, capsys):
        assert main(["trace", "run", "--tenant", "t:deadline=0"]) == 2
        assert "deadline > 0" in capsys.readouterr().err

    def test_unknown_spec_key_suggests(self, capsys):
        assert main(["trace", "run", "--tenant", "t:ratee=1"]) == 2
        assert "did you mean 'rate'" in capsys.readouterr().err

    def test_zero_requests_rejected(self, capsys):
        assert main(["trace", "run", "--requests", "0"]) == 2
        assert "--requests" in capsys.readouterr().err

    def test_unreadable_trace_file_rejected(self, capsys, tmp_path):
        assert main([
            "trace", "replay", "--trace", str(tmp_path / "missing.jsonl"),
        ]) == 2
        assert "cannot read trace file" in capsys.readouterr().err

    def test_malformed_trace_file_rejected(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "other"}\n')
        assert main(["trace", "replay", "--trace", str(path)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_unknown_late_policy_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["trace", "run", "--late-policy", "defer"])
        assert excinfo.value.code == 2

    def test_max_in_flight_validated(self, capsys):
        assert main(["trace", "run", "--max-in-flight", "0"]) == 2
        assert "--max-in-flight" in capsys.readouterr().err

    def test_trace_run_with_lanes_and_router(self, capsys):
        code = main([
            "trace", "run", "--memory-fraction", "0.9",
            "--tenant", "t0:rate=0.2,n=4,deadline=300",
            "--requests", "2", "--seed", "0",
            "--lane", "7B+1.5B@rtx4090,1.5B+1.5B@rtx4090:int8",
            "--router", "static", "--placement", "least_loaded",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "router static" in out
        assert "per-lane-class rollup" in out

    def test_trace_lane_and_devices_exclusive(self, capsys):
        assert main([
            "trace", "run", "--lane", "7B+1.5B@rtx4090",
            "--devices", "rtx4090",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
