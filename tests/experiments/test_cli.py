"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.dataset == "aime24"
        assert args.n == 16

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--device", "tpu-v9"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "rtx4090" in out
        assert "beam_search" in out

    def test_straggler(self, capsys):
        assert main(["straggler", "--dataset", "amc23"]) == 0
        out = capsys.readouterr().out
        assert "idle" in out

    def test_report(self, capsys):
        assert main(["report", "--memory-fraction", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "allocator plan" in out

    def test_solve_small(self, capsys):
        code = main([
            "solve", "--dataset", "amc23", "-n", "8",
            "--memory-fraction", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput gain" in out
        assert "baseline" in out and "fasttts" in out
