"""Tests for the results exporter."""

import json

from repro.experiments.export import ResultsWriter, export_figure


class TestResultsWriter:
    def test_write_rows_jsonl(self, tmp_path):
        writer = ResultsWriter(tmp_path)
        path = writer.write_rows("fig12", [["a", 1, 2.5], ["b", 2, 3.5]],
                                 ["config", "n", "gain"])
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"config": "a", "n": 1, "gain": 2.5}

    def test_write_table(self, tmp_path):
        writer = ResultsWriter(tmp_path)
        path = writer.write_table("fig12", "| a | b |")
        assert path.read_text().startswith("| a | b |")

    def test_write_index(self, tmp_path):
        writer = ResultsWriter(tmp_path)
        path = writer.write_index({"fig12": {"status": "ok"}})
        assert json.loads(path.read_text())["fig12"]["status"] == "ok"

    def test_export_figure(self, tmp_path):
        writer = ResultsWriter(tmp_path)
        produced = export_figure(
            "fig10",
            {"rows": [[1.0, 2, 3, 0.5]], "table": "table text"},
            writer,
        )
        assert set(produced) == {"jsonl", "table"}
        record = json.loads((tmp_path / "fig10.jsonl").read_text())
        assert record["kv_budget_gb"] == 1.0

    def test_export_figure_numpy_and_dataclass(self, tmp_path):
        import numpy as np

        from repro.metrics.latency import LatencyBreakdown

        writer = ResultsWriter(tmp_path)
        rows = [[np.float64(1.5), LatencyBreakdown(1.0, 0.5, 0.5)]]
        writer.write_rows("mixed", rows, ["x", "lat"])
        record = json.loads((tmp_path / "mixed.jsonl").read_text())
        assert record["x"] == 1.5
        assert record["lat"]["total"] == 1.0

    def test_unknown_figure_gets_generic_header(self, tmp_path):
        writer = ResultsWriter(tmp_path)
        export_figure("custom", {"rows": [[1, 2]], "table": "t"}, writer)
        record = json.loads((tmp_path / "custom.jsonl").read_text())
        assert record == {"col0": 1, "col1": 2}
