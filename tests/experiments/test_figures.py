"""Smoke + shape tests for the per-figure experiment definitions.

These use tiny scales; the benchmark harness runs the fuller versions.
Shape assertions mirror what EXPERIMENTS.md records per figure.
"""

import pytest

from repro.experiments import figures as F


class TestCheapFigures:
    def test_fig3_step_lengths_heavy_tail(self):
        out = F.fig3_step_lengths(n_paths=32, max_steps=5)
        for avg, mx in zip(out["avg"], out["max"]):
            assert mx >= avg
        assert max(out["max"]) > 2.5 * max(out["avg"])

    def test_fig6_prefill_saturates_first(self):
        out = F.fig6_kv_throughput()
        assert out["prefill_80_gb"] < out["decode_80_gb"] / 3

    def test_fig10_decode_batch_monotone(self):
        out = F.fig10_allocation_sweep(n=64)
        b_decs = [row[2] for row in out["rows"]]
        assert b_decs == sorted(b_decs)
        assert "table" in out

    def test_fig5_sharing_gap_grows(self):
        out = F.fig5_prefix_sharing(n=16)
        beam = out["series"]["beam_search"]
        assert beam["without_cache"][-1] > beam["with_cache"][-1]
        # private copies grow linearly with iterations; shared sub-linearly
        growth_private = beam["without_cache"][-1] / beam["without_cache"][0]
        growth_shared = beam["with_cache"][-1] / beam["with_cache"][0]
        assert growth_private > growth_shared

    def test_fig4_generation_decays_verification_flat(self):
        out = F.fig4_phase_utilization(n=16)
        assert out["generation_util"] < out["verification_util"]
        assert out["generation_decay"] < 0.6

    @pytest.mark.filterwarnings("ignore:path to leaf:RuntimeWarning")
    def test_fig18_ordering_dominance(self):
        out = F.fig18_prefix_memory(n=16, capacities=(8, 16))
        for cap in (8, 16):
            assert out["costs"]["prefix_aware"][cap] <= out["costs"]["random"][cap]
            assert (
                out["costs"]["prefix_aware"][cap]
                <= out["costs"]["worst_case"][cap]
            )


@pytest.mark.slow
class TestServingFigures:
    def test_fig1b_fasttts_dominates(self):
        out = F.fig1b_frontier(n_values=(8,), problems=1)
        pair = out["pairs"][0]
        assert pair.fasttts.latency.total < pair.baseline.latency.total
        assert pair.fasttts.top1_accuracy == pair.baseline.top1_accuracy

    def test_fig11_gains_everywhere(self):
        out = F.fig11_search_variants(n_values=(8,), problems=1)
        for pairs in out["results"].values():
            for pair in pairs:
                assert pair.goodput_gain > 1.0

    def test_fig17_r_sweep(self):
        out = F.fig17_speculation(n=16, problems=1)
        assert out["fasttts_generation_util"] > out["baseline_generation_util"]
        assert out["goodputs"][("aime24", 0.85)] >= out["goodputs"][("aime24", 0.0)]
