"""Tests for the experiment runner and reference search."""

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.reference import pure_search
from repro.experiments.runner import (
    MEMORY_FRACTIONS,
    ExperimentSpec,
    PairResult,
    run_metrics,
    run_pair,
    sweep_n,
)
from repro.metrics.latency import LatencyBreakdown
from repro.metrics.report import RunMetrics
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset


class TestExperimentSpec:
    def test_paper_memory_fractions(self):
        assert MEMORY_FRACTIONS["1.5B+1.5B"] == 0.40
        assert MEMORY_FRACTIONS["1.5B+7B"] == 0.90
        spec = ExperimentSpec(model_config="1.5B+1.5B")
        assert spec.resolve_memory_fraction() == 0.40

    def test_memory_override(self):
        spec = ExperimentSpec(memory_fraction=0.7)
        assert spec.resolve_memory_fraction() == 0.7

    def test_config_builders(self):
        spec = ExperimentSpec(model_config="1.5B+1.5B", seed=4)
        base = spec.build_config(fast=False)
        fast = spec.build_config(fast=True)
        assert not base.speculation and fast.speculation
        assert base.seed == fast.seed == 4

    def test_dataset_reproducible(self):
        spec = ExperimentSpec(dataset_name="amc23", dataset_size=3, seed=2)
        assert spec.build_dataset().problems == spec.build_dataset().problems


class TestRunners:
    @pytest.fixture(scope="class")
    def pair(self):
        spec = ExperimentSpec(
            dataset_name="amc23", dataset_size=1, model_config="1.5B+1.5B",
            algorithm="beam_search", n=8, seed=0,
        )
        return run_pair(spec)

    def test_run_metrics_shape(self):
        spec = ExperimentSpec(dataset_name="amc23", dataset_size=2, n=8)
        metrics, results = run_metrics(spec, spec.build_config(fast=False))
        assert metrics.problem_count == 2
        assert len(results) == 2

    def test_pair_gains(self, pair):
        assert pair.goodput_gain > 1.0
        assert 0.0 < pair.latency_reduction < 1.0
        assert pair.verifier_latency_reduction > 0.0

    def test_pair_summary_row(self, pair):
        row = pair.summary_row()
        assert row[0] == "1.5B+1.5B"
        assert row[3] == 8

    def test_sweep_n(self):
        spec = ExperimentSpec(dataset_name="amc23", dataset_size=1, n=8)
        pairs = sweep_n(spec, [4, 8])
        assert [p.spec.n for p in pairs] == [4, 8]

    def test_sweep_builds_dataset_once(self, monkeypatch):
        calls = []
        real = runner_mod.build_dataset

        def counting(*args, **kwargs):
            calls.append((args, kwargs))
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "build_dataset", counting)
        spec = ExperimentSpec(dataset_name="amc23", dataset_size=1, n=4)
        sweep_n(spec, [4, 8])
        assert len(calls) == 1  # one dataset per sweep, not per run_pair call


def _metrics_with_goodput(goodput: float) -> RunMetrics:
    return RunMetrics(
        algorithm="beam_search",
        n=4,
        problem_count=1,
        goodput=goodput,
        latency=LatencyBreakdown(total=1.0, generation=0.5, verification=0.5),
        top1_accuracy=0.0,
    )


class TestZeroBaselineGain:
    def test_both_zero_is_a_wash(self):
        pair = PairResult(
            spec=ExperimentSpec(),
            baseline=_metrics_with_goodput(0.0),
            fasttts=_metrics_with_goodput(0.0),
        )
        assert pair.goodput_gain == 1.0
        assert pair.summary_row()[6] == 1.0

    def test_baseline_only_zero_renders_inf(self):
        pair = PairResult(
            spec=ExperimentSpec(),
            baseline=_metrics_with_goodput(0.0),
            fasttts=_metrics_with_goodput(42.0),
        )
        assert pair.goodput_gain == float("inf")
        assert pair.summary_row()[6] == "inf"  # never round(inf) into tables


class TestPureSearch:
    def test_trace_structure(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        problem = list(dataset)[0]
        trace = pure_search(problem, dataset, build_algorithm("beam_search", 8))
        assert trace.n_rounds >= 1
        assert trace.collected
        assert len(trace.rounds[0]) == 8
        for path in trace.collected:
            assert path.terminal
            assert path.answer is not None
            assert len(path.scores) == path.steps_done

    def test_best_of_n_scored_once(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        problem = list(dataset)[0]
        trace = pure_search(problem, dataset, build_algorithm("best_of_n", 4))
        for path in trace.collected:
            assert len(path.scores) == 1

    def test_deterministic(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        problem = list(dataset)[0]
        a = pure_search(problem, dataset, build_algorithm("dvts", 8), seed=3)
        b = pure_search(problem, dataset, build_algorithm("dvts", 8), seed=3)
        assert a.collected_answers() == b.collected_answers()
