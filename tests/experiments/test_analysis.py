"""Tests for the analysis subpackage (straggler math, reports)."""

import pytest

from repro.analysis.reports import deployment_report, operating_points
from repro.analysis.straggler import (
    expected_max_step_tokens,
    expected_step_tokens,
    idle_fraction,
    lognormal_cdf,
    sampled_max_step_tokens,
)
from repro.hardware.device import get_device
from repro.models.zoo import QWEN25_MATH_1P5B
from repro.workloads.traces import StepLengthModel

MODEL = StepLengthModel(median_tokens=150.0, sigma=0.85, max_tokens=1280)


class TestLognormalCdf:
    def test_median(self):
        assert lognormal_cdf(150.0, 150.0, 0.85) == pytest.approx(0.5)

    def test_zero_support(self):
        assert lognormal_cdf(0.0, 150.0, 0.85) == 0.0
        assert lognormal_cdf(-5.0, 150.0, 0.85) == 0.0

    def test_monotone(self):
        values = [lognormal_cdf(x, 150.0, 0.85) for x in (50, 150, 500, 2000)]
        assert values == sorted(values)

    def test_degenerate_sigma(self):
        assert lognormal_cdf(149.0, 150.0, 0.0) == 0.0
        assert lognormal_cdf(151.0, 150.0, 0.0) == 1.0


class TestExpectations:
    def test_mean_between_floor_and_cap(self):
        mean = expected_step_tokens(MODEL)
        assert MODEL.min_tokens < mean < MODEL.max_tokens

    def test_max_grows_with_batch(self):
        maxima = [expected_max_step_tokens(MODEL, k) for k in (1, 4, 16, 64)]
        assert maxima == sorted(maxima)
        assert maxima[-1] <= MODEL.max_tokens

    def test_batch_one_max_is_mean(self):
        assert expected_max_step_tokens(MODEL, 1) == pytest.approx(
            expected_step_tokens(MODEL), rel=1e-6
        )

    def test_integral_matches_sampling(self):
        """The tail integral agrees with Monte-Carlo within a few percent."""
        analytic = expected_max_step_tokens(MODEL, 16)
        sampled = sampled_max_step_tokens(MODEL, 16, samples=400)
        assert analytic == pytest.approx(sampled, rel=0.06)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            expected_max_step_tokens(MODEL, 0)


class TestIdleFraction:
    def test_single_beam_no_idle(self):
        assert idle_fraction(MODEL, 1) == 0.0

    def test_grows_with_batch(self):
        fractions = [idle_fraction(MODEL, k) for k in (2, 8, 32, 128)]
        assert fractions == sorted(fractions)
        assert 0.0 < fractions[0] < fractions[-1] < 1.0

    def test_matches_paper_regime(self):
        """At edge batch sizes, most slot-time is idle (Sec. 3.2.1)."""
        assert idle_fraction(MODEL, 64) > 0.5


class TestReports:
    def test_operating_points_structure(self):
        points = operating_points(QWEN25_MATH_1P5B, get_device("rtx4090"))
        stages = {(p.stage, p.batch_size) for p in points}
        assert ("prefill", 1) in stages and ("decode", 64) in stages
        for point in points:
            assert point.latency_s > 0 and point.tokens_per_s > 0

    def test_decode_memory_bound_prefill_compute_bound(self):
        points = operating_points(QWEN25_MATH_1P5B, get_device("rtx4090"))
        for point in points:
            if point.stage == "decode" and point.batch_size <= 8:
                assert not point.compute_bound
            if point.stage == "prefill":
                assert point.compute_bound

    def test_deployment_report_feasible(self):
        text = deployment_report("1.5B+1.5B", "rtx4090", 0.4)
        assert "KV budget" in text
        assert "allocator plan" in text

    def test_deployment_report_infeasible(self):
        text = deployment_report("7B+1.5B", "rtx3070ti", 0.9)
        assert "INFEASIBLE" in text
