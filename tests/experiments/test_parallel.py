"""Tests for the parallel orchestrator and the on-disk result cache."""

import json

import pytest

from repro.experiments.parallel import (
    CACHE_SCHEMA_VERSION,
    ParallelOrchestrator,
    ResultCache,
    cache_key,
    default_cache_dir,
    run_pairs,
    use_orchestrator,
)
from repro.experiments.runner import (
    ExperimentSpec,
    active_orchestrator,
    run_metrics,
    run_pair,
    run_pair_sequential,
    run_problem,
    run_problem_sequential,
    sweep_n,
)

SPEC = ExperimentSpec(
    dataset_name="amc23", dataset_size=1, model_config="1.5B+1.5B",
    algorithm="beam_search", n=4, seed=0,
)


class TestCacheKey:
    def test_stable(self):
        config = SPEC.build_config(fast=False)
        assert cache_key(SPEC, config) == cache_key(SPEC, config)

    def test_spec_content_changes_key(self):
        config = SPEC.build_config(fast=False)
        other = ExperimentSpec(
            dataset_name="amc23", dataset_size=1, model_config="1.5B+1.5B",
            algorithm="beam_search", n=4, seed=1,
        )
        assert cache_key(SPEC, config) != cache_key(other, other.build_config(fast=False))

    def test_config_content_changes_key(self):
        base = SPEC.build_config(fast=False)
        fast = SPEC.build_config(fast=True)
        assert cache_key(SPEC, base) != cache_key(SPEC, fast)

    def test_kind_separates_namespaces(self):
        config = SPEC.build_config(fast=False)
        assert cache_key(SPEC, config, kind="run") != cache_key(
            SPEC, config, kind="problem", problem_index=0
        )

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        key = cache_key(SPEC, config)
        assert cache.load_metrics(key) is None
        assert cache.misses == 1

        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            metrics, results = orch.run_metrics(SPEC, config)
        assert results  # fresh run carries per-problem results
        assert cache.load_metrics(key) is not None
        assert cache.hits == 1

    def test_round_trip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=True)
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            fresh, _ = orch.run_metrics(SPEC, config)
            replay, replay_results = orch.run_metrics(SPEC, config)
        assert replay == fresh  # bit-identical floats through JSON
        assert replay_results == []  # aggregate-only on a hit

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        key = cache_key(SPEC, config)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text("{not json")
        assert cache.load_metrics(key) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        key = cache_key(SPEC, config)
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION + 1, "kind": "run"})
        )
        assert cache.load_metrics(key) is None

    def test_entries_record_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            orch.run_metrics(SPEC, config)
        payload = json.loads(cache.path_for(cache_key(SPEC, config)).read_text())
        assert payload["spec"]["dataset_name"] == "amc23"
        assert payload["config"]["speculation"] is False

    def test_problem_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            fresh = orch.run_problem(SPEC, config)
            replay = orch.run_problem(SPEC, config)
        assert replay == fresh
        assert cache.hits == 1

    def test_foreign_dataset_bypasses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        foreign = ExperimentSpec(
            dataset_name="aime24", dataset_size=1, n=4
        ).build_dataset()
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            orch.run_metrics(SPEC, config, dataset=foreign)
        assert cache.load_metrics(cache_key(SPEC, config)) is None

    def test_same_shape_different_seed_bypasses_cache(self, tmp_path):
        # Same dataset name and size but another seed: only the problem ids
        # betray the difference — the guard must still refuse to cache.
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        reseeded = ExperimentSpec(
            dataset_name="amc23", dataset_size=1, n=4, seed=7
        ).build_dataset()
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            orch.run_metrics(SPEC, config, dataset=reseeded)
        assert cache.load_metrics(cache_key(SPEC, config)) is None

    def test_orchestrated_pair_honours_foreign_dataset(self, tmp_path):
        # A run_pair on a hand-picked dataset must solve *that* dataset even
        # when orchestrated — matching the sequential path, uncached.
        reseeded = ExperimentSpec(
            dataset_name="amc23", dataset_size=1, n=4, seed=7
        ).build_dataset()
        direct = run_pair_sequential(SPEC, dataset=reseeded)
        cache = ResultCache(tmp_path)
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            with use_orchestrator(orch):
                routed = run_pair(SPEC, dataset=reseeded)
        assert routed.baseline == direct.baseline
        assert routed.fasttts == direct.fasttts
        assert cache.hits == 0 and cache.misses == 0


class TestParallelEquivalence:
    def test_process_parallel_matches_sequential(self):
        sequential = run_pair_sequential(SPEC)
        with ParallelOrchestrator(jobs=2, cache=None) as orch:
            parallel = orch.run_pair(SPEC)
        assert parallel.baseline == sequential.baseline
        assert parallel.fasttts == sequential.fasttts

    def test_sweep_matches_sequential(self, tmp_path):
        sequential = sweep_n(SPEC, [4, 8])
        with ParallelOrchestrator(jobs=2, cache=ResultCache(tmp_path)) as orch:
            sharded = orch.sweep_n(SPEC, [4, 8])
            replay = orch.sweep_n(SPEC, [4, 8])
        for seq, par, rep in zip(sequential, sharded, replay):
            assert par.baseline == seq.baseline and par.fasttts == seq.fasttts
            assert rep.baseline == seq.baseline and rep.fasttts == seq.fasttts

    def test_run_pairs_convenience(self):
        results = run_pairs([SPEC], jobs=1)
        assert len(results) == 1
        assert results[0].spec == SPEC


class TestOrchestratorRouting:
    def test_use_orchestrator_installs_and_restores(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert active_orchestrator() is None
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            with use_orchestrator(orch):
                assert active_orchestrator() is orch
                first = run_pair(SPEC)
                again = run_pair(SPEC)
        assert active_orchestrator() is None
        assert again.baseline == first.baseline
        assert cache.hits >= 2

    def test_run_metrics_routes_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            with use_orchestrator(orch):
                run_metrics(SPEC, config)
                _, results = run_metrics(SPEC, config)
        assert results == []
        assert cache.hits == 1

    def test_run_problem_routes_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SPEC.build_config(fast=False)
        direct = run_problem_sequential(SPEC, config)
        with ParallelOrchestrator(jobs=1, cache=cache) as orch:
            with use_orchestrator(orch):
                assert run_problem(SPEC, config) == direct
                assert run_problem(SPEC, config) == direct
        assert cache.hits == 1

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelOrchestrator(jobs=0)

    def test_problem_index_out_of_range(self):
        with pytest.raises(IndexError):
            run_problem_sequential(SPEC, SPEC.build_config(fast=False), problem_index=5)
