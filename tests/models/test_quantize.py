"""Tests for the quantization cost transform."""

import pytest

from repro.models.quantize import DTYPE_BYTES, quantized
from repro.models.zoo import QWEN25_MATH_1P5B


class TestQuantized:
    def test_int8_halves_weights_and_kv(self):
        q = quantized(QWEN25_MATH_1P5B, "int8")
        assert q.weight_bytes == QWEN25_MATH_1P5B.weight_bytes // 2
        assert q.kv_bytes_per_token == QWEN25_MATH_1P5B.kv_bytes_per_token // 2

    def test_name_tagged(self):
        assert quantized(QWEN25_MATH_1P5B, "fp8").name.endswith("-fp8")

    def test_same_dtype_is_identity(self):
        assert quantized(QWEN25_MATH_1P5B, "fp16") is QWEN25_MATH_1P5B

    def test_unknown_dtype(self):
        with pytest.raises(ValueError):
            quantized(QWEN25_MATH_1P5B, "int4")

    def test_dtype_table(self):
        assert DTYPE_BYTES["fp16"] == 2
        assert DTYPE_BYTES["int8"] == 1

    def test_architecture_preserved(self):
        q = quantized(QWEN25_MATH_1P5B, "int8")
        assert q.n_layers == QWEN25_MATH_1P5B.n_layers
        assert q.param_count == QWEN25_MATH_1P5B.param_count

    def test_same_width_different_dtype_still_renames(self):
        # fp16 -> bf16 keeps the byte width but must still produce a new
        # spec: lane classes are keyed on model names, so a dtype change
        # that silently returns the input would lie about the deployment.
        q = quantized(QWEN25_MATH_1P5B, "bf16")
        assert q is not QWEN25_MATH_1P5B
        assert q.name == f"{QWEN25_MATH_1P5B.name}-bf16"
        assert q.dtype == "bf16"
        assert q.dtype_bytes == QWEN25_MATH_1P5B.dtype_bytes

    @pytest.mark.parametrize("dtype,width", sorted(DTYPE_BYTES.items()))
    def test_dtype_round_trip(self, dtype, width):
        q = quantized(QWEN25_MATH_1P5B, dtype)
        assert q.dtype == dtype
        assert q.dtype_bytes == width
        # Quantizing back to the base dtype restores the cost model and
        # keeps the name rooted at the base (one truthful dtype tag, no
        # stacked suffixes).
        back = quantized(q, QWEN25_MATH_1P5B.dtype)
        assert back.dtype == QWEN25_MATH_1P5B.dtype
        assert back.dtype_bytes == QWEN25_MATH_1P5B.dtype_bytes
        assert back.weight_bytes == QWEN25_MATH_1P5B.weight_bytes
        expected = (
            QWEN25_MATH_1P5B.name
            if back is QWEN25_MATH_1P5B
            else f"{QWEN25_MATH_1P5B.name}-{QWEN25_MATH_1P5B.dtype}"
        )
        assert back.name == expected

    def test_kv_footprint_scales_with_width(self):
        for dtype, width in DTYPE_BYTES.items():
            q = quantized(QWEN25_MATH_1P5B, dtype)
            expected = (
                QWEN25_MATH_1P5B.kv_bytes_per_token
                * width
                // QWEN25_MATH_1P5B.dtype_bytes
            )
            assert q.kv_bytes_per_token == expected

    def test_unknown_dtype_error_names_known(self):
        with pytest.raises(ValueError) as excinfo:
            quantized(QWEN25_MATH_1P5B, "int4")
        message = str(excinfo.value)
        assert "int4" in message
        for dtype in DTYPE_BYTES:
            assert dtype in message

    def test_requantize_same_dtype_idempotent(self):
        q = quantized(QWEN25_MATH_1P5B, "int8")
        assert quantized(q, "int8") is q

    def test_requantize_strips_old_suffix(self):
        q = quantized(quantized(QWEN25_MATH_1P5B, "bf16"), "int8")
        assert q.name == f"{QWEN25_MATH_1P5B.name}-int8"
        assert "bf16" not in q.name
