"""Tests for the quantization cost transform."""

import pytest

from repro.models.quantize import DTYPE_BYTES, quantized
from repro.models.zoo import QWEN25_MATH_1P5B


class TestQuantized:
    def test_int8_halves_weights_and_kv(self):
        q = quantized(QWEN25_MATH_1P5B, "int8")
        assert q.weight_bytes == QWEN25_MATH_1P5B.weight_bytes // 2
        assert q.kv_bytes_per_token == QWEN25_MATH_1P5B.kv_bytes_per_token // 2

    def test_name_tagged(self):
        assert quantized(QWEN25_MATH_1P5B, "fp8").name.endswith("-fp8")

    def test_same_dtype_is_identity(self):
        assert quantized(QWEN25_MATH_1P5B, "fp16") is QWEN25_MATH_1P5B

    def test_unknown_dtype(self):
        with pytest.raises(ValueError):
            quantized(QWEN25_MATH_1P5B, "int4")

    def test_dtype_table(self):
        assert DTYPE_BYTES["fp16"] == 2
        assert DTYPE_BYTES["int8"] == 1

    def test_architecture_preserved(self):
        q = quantized(QWEN25_MATH_1P5B, "int8")
        assert q.n_layers == QWEN25_MATH_1P5B.n_layers
        assert q.param_count == QWEN25_MATH_1P5B.param_count
