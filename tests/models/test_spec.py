"""Tests for model specs and the zoo."""

import pytest

from repro.errors import ModelLookupError
from repro.models.spec import ModelRole, ModelSpec
from repro.models.zoo import (
    MATH_SHEPHERD_7B,
    QWEN25_MATH_1P5B,
    QWEN25_MATH_7B,
    SKYWORK_PRM_1P5B,
    get_model,
    list_models,
    model_pair,
)


class TestModelSpec:
    def test_weight_bytes_fp16(self):
        assert QWEN25_MATH_1P5B.weight_bytes == 1_540_000_000 * 2

    def test_kv_bytes_per_token_qwen_1p5b(self):
        # 2 (K+V) * 28 layers * 2 KV heads * 128 head dim * 2 bytes
        assert QWEN25_MATH_1P5B.kv_bytes_per_token == 28_672

    def test_kv_bytes_per_token_mistral(self):
        # 2 * 32 * 8 * 128 * 2
        assert MATH_SHEPHERD_7B.kv_bytes_per_token == 131_072

    def test_gqa_shrinks_kv(self):
        """Qwen's 2 KV heads give a far smaller footprint than Mistral's 8."""
        assert (
            QWEN25_MATH_1P5B.kv_bytes_per_token
            < MATH_SHEPHERD_7B.kv_bytes_per_token
        )

    def test_kv_bytes_batch(self):
        assert QWEN25_MATH_1P5B.kv_bytes(2, 10) == 20 * 28_672

    def test_max_resident_tokens(self):
        assert QWEN25_MATH_1P5B.max_resident_tokens(28_672 * 5 + 1) == 5

    def test_invalid_gqa_raises(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="bad", role=ModelRole.GENERATOR, param_count=10,
                n_layers=1, hidden_size=8, n_heads=3, n_kv_heads=2,
                head_dim=4, intermediate_size=8, vocab_size=10,
            )

    def test_kv_heads_cannot_exceed_heads(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="bad", role=ModelRole.GENERATOR, param_count=10,
                n_layers=1, hidden_size=8, n_heads=2, n_kv_heads=4,
                head_dim=4, intermediate_size=8, vocab_size=10,
            )

    def test_str_shows_params(self):
        assert "1.5B" in str(QWEN25_MATH_1P5B)


class TestZoo:
    def test_four_paper_models_registered(self):
        names = list_models()
        for model in (QWEN25_MATH_1P5B, QWEN25_MATH_7B,
                      MATH_SHEPHERD_7B, SKYWORK_PRM_1P5B):
            assert model.name in names

    def test_roles(self):
        assert QWEN25_MATH_7B.role is ModelRole.GENERATOR
        assert SKYWORK_PRM_1P5B.role is ModelRole.VERIFIER

    def test_unknown_model_raises(self):
        with pytest.raises(ModelLookupError):
            get_model("gpt-5")

    def test_model_pair_configs(self):
        gen, ver = model_pair("1.5B+7B")
        assert gen is QWEN25_MATH_1P5B
        assert ver is MATH_SHEPHERD_7B
        gen, ver = model_pair("7B+1.5B")
        assert gen is QWEN25_MATH_7B
        assert ver is SKYWORK_PRM_1P5B

    def test_unknown_pair_raises(self):
        with pytest.raises(ModelLookupError):
            model_pair("70B+70B")
