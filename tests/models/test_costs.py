"""Tests for the FLOPs/bytes cost functions and the phase asymmetry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.device import get_device
from repro.hardware.roofline import Roofline
from repro.models.costs import decode_step_cost, prefill_cost
from repro.models.zoo import QWEN25_MATH_1P5B as MODEL


class TestPrefillCost:
    def test_scales_with_tokens(self):
        small = prefill_cost(MODEL, 1, 100)
        large = prefill_cost(MODEL, 1, 200)
        assert large.flops > small.flops
        assert large.bytes > small.bytes

    def test_batch_shares_weight_traffic(self):
        single = prefill_cost(MODEL, 1, 100)
        batched = prefill_cost(MODEL, 4, 100)
        # 4x the tokens but only one weight read: bytes grow sub-linearly.
        assert batched.bytes < 4 * single.bytes
        assert batched.flops == pytest.approx(4 * single.flops)

    def test_cached_prefix_reduces_nothing_but_adds_reads(self):
        plain = prefill_cost(MODEL, 1, 100)
        cached = prefill_cost(MODEL, 1, 100, cached_prefix_len=400)
        # Cached prefix is read by attention, so bytes and flops grow.
        assert cached.bytes > plain.bytes
        assert cached.flops > plain.flops

    def test_rejects_zero_seq(self):
        with pytest.raises(ValueError):
            prefill_cost(MODEL, 1, 0)

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            prefill_cost(MODEL, 0, 10)


class TestDecodeCost:
    def test_weight_traffic_dominates_small_batch(self):
        cost = decode_step_cost(MODEL, 1, 100)
        assert cost.bytes >= MODEL.weight_bytes

    def test_flops_scale_with_batch(self):
        one = decode_step_cost(MODEL, 1, 100)
        eight = decode_step_cost(MODEL, 8, 100)
        assert eight.flops == pytest.approx(8 * one.flops)

    def test_rejects_negative_cache(self):
        with pytest.raises(ValueError):
            decode_step_cost(MODEL, 1, -1.0)


class TestPhaseAsymmetry:
    """The physics behind the whole paper (Fig. 6, Sec. 3.2.3)."""

    def test_decode_memory_bound_prefill_compute_bound(self):
        roofline = Roofline(get_device("rtx4090"))
        decode = decode_step_cost(MODEL, 32, 1000)
        prefill = prefill_cost(MODEL, 8, 512)
        assert not roofline.point(decode.flops, decode.bytes).compute_bound
        assert roofline.point(prefill.flops, prefill.bytes).compute_bound

    def test_straggler_waste(self):
        """A near-empty decode batch costs almost as much per step as a full
        one — the reason idle slots are pure waste (Sec. 3.2.1)."""
        roofline = Roofline(get_device("rtx4090"))
        lone = decode_step_cost(MODEL, 1, 1000)
        full = decode_step_cost(MODEL, 64, 1000)
        lone_t = roofline.latency(lone.flops, lone.bytes)
        full_t = roofline.latency(full.flops, full.bytes)
        assert lone_t > 0.5 * full_t

    @given(st.integers(1, 256), st.integers(1, 4096))
    def test_costs_always_positive(self, batch, cache):
        cost = decode_step_cost(MODEL, batch, float(cache))
        assert cost.flops > 0 and cost.bytes > 0

    def test_stage_cost_addition(self):
        a = decode_step_cost(MODEL, 1, 10)
        total = a + a
        assert total.flops == 2 * a.flops
        assert total.bytes == 2 * a.bytes
