"""Property-based tests: paged KV cache invariants under random workloads.

A stateful hypothesis machine drives the cache through random register /
materialize / extend / unpin / evict sequences and checks the structural
invariants after every step:

* block accounting is exact (pool allocation == sum of held blocks);
* a resident segment's parent is resident (KV suffixes are never orphaned);
* pinned segments are never evicted;
* the incremental evictable-blocks counter matches a full recount.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import CapacityError
from repro.kvcache.cache import PagedKVCache


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # ~25 blocks of 16 tokens, kv_bytes_per_token=2
        self.cache = PagedKVCache(capacity_bytes=25 * 16 * 2, kv_bytes_per_token=2,
                                  block_tokens=16)
        self.cache.register_segment(0, None, 16)
        self.segments = {0: None}  # id -> parent
        self.pins: dict[int, int] = {}
        self.next_id = 1

    @rule(parent_rank=st.integers(0, 10_000), tokens=st.integers(1, 64))
    def register(self, parent_rank, tokens):
        parent = sorted(self.segments)[parent_rank % len(self.segments)]
        seg = self.next_id
        self.next_id += 1
        self.cache.register_segment(seg, parent, tokens)
        self.segments[seg] = parent

    @rule(rank=st.integers(0, 10_000), pin=st.booleans())
    def materialize(self, rank, pin):
        seg = sorted(self.segments)[rank % len(self.segments)]
        try:
            self.cache.materialize(seg, pin=pin)
        except CapacityError:
            return
        if pin:
            self.pins[seg] = self.pins.get(seg, 0) + 1

    @rule(rank=st.integers(0, 10_000), tokens=st.integers(1, 32))
    def extend(self, rank, tokens):
        seg = sorted(self.segments)[rank % len(self.segments)]
        if not self.cache.is_resident(seg):
            return
        if self.cache.tree.get(seg).children:
            return  # only tails grow
        try:
            self.cache.extend_segment(seg, tokens)
        except CapacityError:
            pass

    @precondition(lambda self: self.pins)
    @rule(rank=st.integers(0, 10_000))
    def unpin(self, rank):
        pinned = sorted(self.pins)
        seg = pinned[rank % len(pinned)]
        self.cache.unpin_path(seg)
        self.pins[seg] -= 1
        if self.pins[seg] == 0:
            del self.pins[seg]

    @rule(rank=st.integers(0, 10_000), tokens=st.integers(0, 16))
    def truncate(self, rank, tokens):
        seg = sorted(self.segments)[rank % len(self.segments)]
        state = self.cache.segment(seg)
        if self.cache.tree.get(seg).children:
            return
        if tokens <= state.token_len:
            self.cache.truncate_segment(seg, tokens)

    @rule()
    def evict_everything(self):
        self.cache.evict_all()

    @invariant()
    def block_accounting_exact(self):
        held = sum(
            self.cache.segment(s).blocks_held
            for s in self.segments
            if self.cache.segment(s).resident
        )
        assert self.cache.pool.allocated_blocks == held

    @invariant()
    def resident_parent_invariant(self):
        for seg, parent in self.segments.items():
            if parent is None:
                continue
            if self.cache.is_resident(seg):
                assert self.cache.is_resident(parent), (
                    f"segment {seg} resident without parent {parent}"
                )

    @invariant()
    def pinned_stay_resident(self):
        for seg in self.pins:
            for node in self.cache.tree.path(seg):
                assert self.cache.is_resident(node)

    @invariant()
    def evictable_counter_matches_recount(self):
        recount = sum(
            self.cache.segment(s).blocks_held
            for s in self.segments
            if self.cache.segment(s).resident
            and self.cache.segment(s).pin_count == 0
        )
        assert self.cache.evictable_blocks == recount

    @invariant()
    def resident_tokens_matches_recount(self):
        recount = sum(
            self.cache.segment(s).token_len
            for s in self.segments
            if self.cache.segment(s).resident
        )
        assert self.cache.resident_tokens == recount


CacheMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestCacheMachine = CacheMachine.TestCase


class TestCacheEdges:
    @pytest.mark.parametrize("block_tokens", [1, 7, 16, 64])
    def test_block_granularities(self, block_tokens):
        cache = PagedKVCache(capacity_bytes=1000 * 2, kv_bytes_per_token=2,
                             block_tokens=block_tokens)
        cache.register_segment(1, None, 33)
        outcome = cache.materialize(1)
        assert outcome.recomputed_tokens == 33
        assert cache.pool.allocated_blocks == -(-33 // block_tokens)
