"""Property-based tests on the generation round executor.

Random job mixes (lengths, head starts, scores) drive the round under
plain and speculative configurations; conservation invariants must hold
regardless: every job finishes exactly its planned tokens, finish times
are consistent with the straggler, and speculation never perturbs any of
it.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.generation_round import ChildStepPlan, GenerationRound
from repro.engine.clock import SimClock
from repro.engine.jobs import GenJob
from repro.engine.telemetry import PhaseTimer, UtilizationTracker
from repro.engine.worker import GeneratorWorker
from repro.hardware.device import get_device
from repro.hardware.roofline import Roofline
from repro.kvcache.cache import PagedKVCache
from repro.models.zoo import QWEN25_MATH_1P5B as MODEL

PROMPT = 77


def make_worker(capacity_tokens=200_000):
    cache = PagedKVCache(capacity_tokens * MODEL.kv_bytes_per_token,
                         MODEL.kv_bytes_per_token)
    cache.register_segment(PROMPT, None, 48)
    return GeneratorWorker(
        MODEL, Roofline(get_device("rtx4090")), cache, SimClock(),
        PhaseTimer(), UtilizationTracker(),
    )


job_specs = st.lists(
    st.tuples(
        st.integers(1, 300),                      # step tokens
        st.floats(0.0, 1.0),                      # head-start fraction
        st.one_of(st.none(), st.floats(0.0, 1.0)),  # prev score
    ),
    min_size=1,
    max_size=12,
)


def build_jobs(worker, specs):
    jobs = []
    for i, (tokens, head_fraction, score) in enumerate(specs):
        head = int(tokens * head_fraction)
        segment = 9000 + i
        if head > 0:
            worker.cache.register_segment(segment, PROMPT, head)
        jobs.append(
            GenJob(
                lineage=(i,), path_segments=(PROMPT,), path_segment_tokens=(48,),
                new_segment=segment, step_tokens=tokens, head_start=head,
                prev_score=score,
            )
        )
    return jobs


def planner(parent_lineage, child_index):
    return ChildStepPlan(
        child_lineage=parent_lineage + (child_index,),
        segment_id=50_000 + 100 * parent_lineage[0] + child_index,
        parent_leaf_segment=9000 + parent_lineage[0],
        n_tokens=64,
    )


class TestGenerationRoundProperties:
    @given(job_specs, st.integers(1, 8), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_conservation(self, specs, slot_budget, speculate):
        worker = make_worker()
        round_ = GenerationRound(
            worker,
            slot_budget=slot_budget,
            speculation=speculate,
            branching_factor=4,
            child_planner=planner if speculate else None,
        )
        jobs = build_jobs(worker, specs)
        result = round_.run(list(jobs))

        # every job produced exactly its remaining tokens
        assert set(result.outcomes) == {j.lineage for j in jobs}
        for job in jobs:
            assert (
                result.outcomes[job.lineage].tokens_generated
                == job.remaining_tokens
            )
        assert result.stats.decoded_tokens == sum(
            j.remaining_tokens for j in jobs
        )
        # finish times never exceed the round end
        end = worker.clock.now
        for outcome in result.outcomes.values():
            assert outcome.finish_time <= end + 1e-9
        # head starts only exist under speculation and are positive
        for head in result.head_starts.values():
            assert speculate
            assert head.tokens > 0

    @given(job_specs, st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_speculation_is_timing_only(self, specs, slot_budget):
        plain_worker = make_worker()
        plain = GenerationRound(plain_worker, slot_budget=slot_budget).run(
            build_jobs(plain_worker, specs)
        )
        spec_worker = make_worker()
        spec = GenerationRound(
            spec_worker, slot_budget=slot_budget, speculation=True,
            branching_factor=4, child_planner=planner,
        ).run(build_jobs(spec_worker, specs))
        for lineage, outcome in plain.outcomes.items():
            assert spec.outcomes[lineage].tokens_generated == outcome.tokens_generated

    @given(job_specs)
    @settings(max_examples=30, deadline=None)
    def test_slot_budget_one_serializes(self, specs):
        """With one slot, round time ~ sum of all remaining tokens' cost."""
        worker = make_worker()
        jobs = build_jobs(worker, specs)
        result = GenerationRound(worker, slot_budget=1).run(list(jobs))
        ordered = [result.outcomes[j.lineage].finish_time for j in jobs
                   if j.remaining_tokens > 0]
        assert ordered == sorted(ordered)  # strict FCFS completion order
