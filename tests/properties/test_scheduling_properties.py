"""Property-based tests on scheduling and allocation invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.allocator import RooflineAllocator, WorkloadProfile
from repro.core.prefix_sched import eviction_cost, greedy_order, random_order
from repro.core.spec_select import SelectSpec, speculative_potential
from repro.hardware.device import get_device
from repro.hardware.roofline import Roofline
from repro.kvcache.radix import RadixTree
from repro.models.zoo import model_pair
from repro.search.dynamic_branching import proportional_allocation
from repro.utils.rng import KeyedRng

_GB = 1024**3


def tree_from_lineages(lineages):
    """Build a radix tree from a set of random lineages."""
    tree = RadixTree()
    tree.add_node(0, None, 4)
    ids = {(): 0}
    next_id = [1]
    leaves = []
    for lineage in lineages:
        parent = ()
        for element in lineage:
            key = parent + (element,)
            if key not in ids:
                ids[key] = next_id[0]
                next_id[0] += 1
                tree.add_node(ids[key], ids[parent], 4)
            parent = key
        leaves.append(ids[parent])
    return tree, leaves


lineage_lists = st.lists(
    st.lists(st.integers(0, 3), min_size=1, max_size=4).map(tuple),
    min_size=2,
    max_size=24,
    unique=True,
)


class TestGreedyScheduleProperties:
    # Tiny capacities vs deep paths intentionally hit the oversized-trie
    # regime, where eviction_cost is a documented lower bound; the
    # dominance/bound claims below hold for the model either way.
    @pytest.mark.filterwarnings("ignore:path to leaf:RuntimeWarning")
    @given(lineage_lists, st.integers(2, 30))
    @settings(max_examples=60, deadline=None)
    def test_greedy_never_loses_to_random(self, lineages, capacity):
        """The paper's local-optimality claim, checked empirically."""
        tree, leaves = tree_from_lineages(lineages)
        rng = KeyedRng(0)
        greedy = eviction_cost(
            greedy_order(leaves, tree, lambda x: x), tree, lambda x: x, capacity
        )
        rand = eviction_cost(
            random_order(leaves, rng), tree, lambda x: x, capacity
        )
        assert greedy <= rand

    @pytest.mark.filterwarnings("ignore:path to leaf:RuntimeWarning")
    @given(lineage_lists, st.integers(2, 30))
    @settings(max_examples=60, deadline=None)
    def test_cost_lower_bound(self, lineages, capacity):
        """Cost >= compulsory (every unique node enters memory once...)."""
        tree, leaves = tree_from_lineages(lineages)
        unique = len({n for leaf in leaves for n in tree.path(leaf)})
        cost = eviction_cost(
            greedy_order(leaves, tree, lambda x: x), tree, lambda x: x, capacity
        )
        assert cost >= max(0, unique - capacity)

    @given(lineage_lists)
    @settings(max_examples=30, deadline=None)
    def test_order_is_permutation(self, lineages):
        tree, leaves = tree_from_lineages(lineages)
        order = greedy_order(leaves, tree, lambda x: x)
        assert sorted(order) == sorted(leaves)


class TestSelectSpecProperties:
    @given(st.lists(st.floats(0, 1), min_size=1, max_size=30), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_total_branches_bounded_by_potentials(self, scores, branching):
        selector = SelectSpec(branching_factor=branching)
        for i, score in enumerate(scores):
            selector.offer((i,), score)
        claims = []
        while True:
            claim = selector.next_branch()
            if claim is None:
                break
            claims.append(claim)
        expected = sum(speculative_potential(s, branching) for s in scores)
        assert len(claims) == expected
        # child indices are contiguous per parent
        from collections import defaultdict
        by_parent = defaultdict(list)
        for parent, child in claims:
            by_parent[parent].append(child)
        for children in by_parent.values():
            assert children == list(range(len(children)))


class TestProportionalAllocationProperties:
    @given(
        st.lists(st.floats(0, 1), min_size=1, max_size=16),
        st.integers(16, 128),
    )
    @settings(max_examples=80, deadline=None)
    def test_sums_exactly_with_floor_one(self, weights, total):
        if total < len(weights):
            return
        shares = proportional_allocation(weights, total)
        assert sum(shares) == total
        assert all(s >= 1 for s in shares)


class TestAllocatorProperties:
    @given(st.integers(1, 512), st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=30, deadline=None)
    def test_plan_always_feasible(self, n, budget_gb):
        from repro.workloads.datasets import build_dataset

        generator, verifier = model_pair("1.5B+1.5B")
        allocator = RooflineAllocator(
            verifier, generator, Roofline(get_device("rtx4090"))
        )
        profile = WorkloadProfile.from_dataset(
            build_dataset("amc23", seed=0, size=1), n
        )
        plan = allocator.search(profile, budget_gb * _GB)
        assert plan.b_pre >= 1 and plan.b_dec >= 1
        assert plan.kv_pre_bytes + plan.kv_dec_bytes <= budget_gb * _GB
        # floors hold: one worst-case path fits on each side
        assert plan.kv_pre_bytes >= profile.max_path_tokens * verifier.kv_bytes_per_token
        assert plan.kv_dec_bytes >= profile.max_path_tokens * generator.kv_bytes_per_token
