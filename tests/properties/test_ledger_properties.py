"""Property-based invariants for the runtime KV ledgers.

After *any* sequence of ``charge_growth`` / ``restore`` / ``admit`` /
``release`` (plus segment-granular growth on the shared ledger):

* device residency never exceeds capacity (every single claim fits by
  construction, as fleet admission control guarantees);
* each owner's books are conserved — resident plus swapped bytes equal
  its last reported footprint, no bytes silently vanish;
* on the shared ledger, reported ``resident_bytes`` equals the sum of
  unique resident segment bytes and never exceeds the whole-session sum
  (sharing can only save, never inflate).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.pool import delta_transfer_bytes
from repro.hardware.memory import KVLedger, KVSegment, SharedKVLedger

CAPACITY = 100
OWNERS = ("a", "b", "c")

# One op: (kind, owner index, payload). Byte payloads stay within the
# capacity — a single session's plan always fits the device (admission
# control) — and segment chains sum to at most 3 * 30 = 90 bytes.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("grow"), st.integers(0, 2), st.integers(0, CAPACITY)),
        st.tuples(st.just("restore"), st.integers(0, 2), st.none()),
        st.tuples(st.just("admit"), st.integers(0, 2), st.integers(0, CAPACITY)),
        st.tuples(st.just("release"), st.integers(0, 2), st.none()),
        st.tuples(
            st.just("grow_segs"),
            st.integers(0, 2),
            st.lists(st.integers(1, 30), min_size=1, max_size=3),
        ),
    ),
    min_size=1,
    max_size=30,
)


def lineage_claims(owner_idx, sizes, shared_root):
    """A root->leaf chain; ``shared_root=True`` reuses one cross-owner
    root (the prompt analogue), the rest are per-owner private."""
    claims, parent = [], None
    for depth, size in enumerate(sizes):
        if depth == 0 and shared_root:
            node = 7  # same root for every owner: the shared prompt
        else:
            node = 1000 * (owner_idx + 1) + depth
        claims.append(KVSegment(node, parent, size))
        parent = node
    return claims


def apply_ops(ledger, op_list, shared_root=False):
    """Drive the ledger; returns each owner's expected logical footprint."""
    expected = {}
    for kind, owner_idx, payload in op_list:
        owner = OWNERS[owner_idx]
        if kind == "grow":
            ledger.charge_growth(owner, payload)
            expected[owner] = payload
        elif kind == "restore":
            ledger.restore(owner)
        elif kind == "admit":
            ledger.admit(owner, payload)
            expected[owner] = payload
        elif kind == "release":
            ledger.release(owner)
            expected.pop(owner, None)
        elif kind == "grow_segs":
            if not isinstance(ledger, SharedKVLedger):
                ledger.charge_growth(owner, sum(payload))
            else:
                ledger.charge_growth_segments(
                    owner, lineage_claims(owner_idx, payload, shared_root)
                )
            expected[owner] = sum(payload)
    return expected


def check_invariants(ledger, expected):
    assert 0 <= ledger.resident_bytes <= CAPACITY
    assert ledger.free_bytes >= 0
    for owner, footprint in expected.items():
        resident = ledger.resident_of(owner)
        swapped = ledger.swapped_of(owner)
        assert resident >= 0 and swapped >= 0
        assert resident + swapped == footprint, (
            f"{owner}: resident {resident} + swapped {swapped} != "
            f"reported footprint {footprint}"
        )
    assert ledger.peak_resident_bytes <= CAPACITY
    assert ledger.swapped_out_bytes >= 0
    assert ledger.swapped_in_bytes >= 0


class TestKVLedgerInvariants:
    @given(ops)
    @settings(max_examples=200, deadline=None)
    def test_conservation_and_capacity(self, op_list):
        ledger = KVLedger(CAPACITY)
        expected = apply_ops(ledger, op_list)
        check_invariants(ledger, expected)
        assert ledger.logical_resident_bytes == ledger.resident_bytes
        assert ledger.dedup_ratio == 1.0


class TestSharedKVLedgerInvariants:
    @given(ops, st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_conservation_capacity_and_unique_bytes(self, op_list, shared_root):
        ledger = SharedKVLedger(CAPACITY)
        expected = apply_ops(ledger, op_list, shared_root=shared_root)
        check_invariants(ledger, expected)
        # resident_bytes is exactly the unique resident segment bytes...
        unique = sum(
            seg.num_bytes for seg in ledger._segments.values() if seg.resident
        )
        assert ledger.resident_bytes == unique
        # ...and sharing can only save relative to whole-session billing
        logical = sum(ledger.resident_of(o) for o in expected)
        assert ledger.resident_bytes <= logical or not expected
        assert ledger.logical_resident_bytes == logical
        assert ledger.shared_bytes >= 0
        assert ledger.dedup_ratio >= 1.0

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_restore_after_any_history_makes_owner_resident(self, op_list):
        ledger = SharedKVLedger(CAPACITY)
        expected = apply_ops(ledger, op_list, shared_root=True)
        for owner in expected:
            ledger.restore(owner)
            assert ledger.swapped_of(owner) == 0
            assert ledger.resident_of(owner) == expected[owner]


def migrating_claims(sizes):
    """A root->leaf chain for the migrating session: the shared root (the
    prompt analogue, node 7) plus step nodes no ``apply_ops`` owner ever
    touches, so overlap with a populated destination comes only through
    the root or an explicit same-lineage peer."""
    claims, parent = [], None
    for depth, size in enumerate(sizes):
        node = 7 if depth == 0 else 5000 + depth
        claims.append(KVSegment(node, parent, size))
        parent = node
    return claims


class TestDeltaMigrationConservation:
    """ISSUE 10: delta-migration's PCIe books against two real ledgers.

    Conservation law: the bytes read in at the destination equal the
    migrating session's footprint minus the destination-resident shared
    bytes — shared segments cross no link — and the write-out is the
    source-resident subset of exactly those bytes.
    """

    @given(
        st.lists(st.integers(1, 30), min_size=1, max_size=3),
        ops,
        st.integers(0, 3),
    )
    @settings(max_examples=100, deadline=None)
    def test_read_in_is_footprint_minus_destination_overlap(
        self, sizes, dst_ops, peer_depth
    ):
        source = SharedKVLedger(CAPACITY)
        destination = SharedKVLedger(CAPACITY)
        claims = migrating_claims(sizes)
        source.charge_growth_segments("mig", claims)
        # Arbitrary co-resident history at the destination (may leave the
        # shared root resident), plus optionally a same-problem peer
        # holding a prefix of the migrating lineage.
        apply_ops(destination, dst_ops, shared_root=True)
        if peer_depth:
            destination.charge_growth_segments("peer", claims[:peer_depth])
        footprint = sum(c.num_bytes for c in claims)
        overlap = sum(
            min(c.num_bytes, destination.resident_segment_bytes(c.node_id))
            for c in claims
        )

        out_bytes, in_bytes = delta_transfer_bytes(source, destination, claims)

        assert in_bytes == footprint - overlap
        # ...which is exactly the ledger's unique-planned-bytes accessor.
        assert in_bytes == destination.unique_planned_bytes(footprint, claims)
        expected_out = sum(
            c.num_bytes
            - min(c.num_bytes, destination.resident_segment_bytes(c.node_id))
            for c in claims
            if source.resident_segment_bytes(c.node_id)
        )
        assert out_bytes == expected_out
        assert 0 <= out_bytes <= in_bytes <= footprint

        # The handoff itself: the destination ends up owning the full
        # footprint, the source none of it, capacity never exceeded.
        destination.admit_segments("mig", claims)
        source.release("mig")
        assert destination.resident_of("mig") == footprint
        assert source.resident_of("mig") == 0
        assert destination.resident_bytes <= CAPACITY

    def test_failed_eviction_mid_handoff_leaves_refcounts_untouched(
        self, monkeypatch
    ):
        """Migrate-transactionality regression (ISSUE 10 satellite).

        ``admit_segments`` makes room *before* registering any claim; if
        the destination's eviction blows up mid-handoff, no refcount may
        have moved on either ledger — the caller releases the source only
        after a successful admit.
        """
        destination = SharedKVLedger(CAPACITY)
        destination.charge_growth_segments(
            "resident", lineage_claims(1, [40, 40], shared_root=False)
        )
        claims = migrating_claims([30, 30, 30])
        source = SharedKVLedger(CAPACITY)
        source.charge_growth_segments("mig", claims)
        owners_before = {
            node: dict(destination._segments[node].owners)
            for node in destination._segments
        }
        resident_before = destination.resident_bytes

        def boom(need, keep):
            raise RuntimeError("eviction failed mid-handoff")

        monkeypatch.setattr(destination, "_evict_segments_for", boom)
        with pytest.raises(RuntimeError, match="mid-handoff"):
            destination.admit_segments("mig", claims)

        assert "mig" not in destination.owners
        assert destination.resident_bytes == resident_before
        assert {
            node: dict(destination._segments[node].owners)
            for node in destination._segments
        } == owners_before
        # The source still holds every byte: nothing leaked in transit.
        assert source.resident_of("mig") == sum(c.num_bytes for c in claims)

    def test_whole_footprint_capacity_check_raises_before_any_mutation(self):
        destination = SharedKVLedger(CAPACITY)
        destination.charge_growth_segments(
            "resident", lineage_claims(1, [10], shared_root=False)
        )
        claims = migrating_claims([60, 60])  # 120 B > 100 B budget
        with pytest.raises(Exception) as excinfo:
            destination.admit_segments("mig", claims)
        assert "budget" in str(excinfo.value)
        assert "mig" not in destination.owners
        assert destination.resident_of("resident") == 10
