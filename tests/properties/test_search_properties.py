"""Property-based tests on search algorithms and the generation model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.llm.generator import SimulatedGenerator
from repro.models.zoo import QWEN25_MATH_1P5B
from repro.search.registry import build_algorithm
from repro.search.tree import ReasoningPath
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset

DATASET = build_dataset("amc23", seed=9, size=2)
PROBLEM = list(DATASET)[0]
GENERATOR = SimulatedGenerator(QWEN25_MATH_1P5B, DATASET, KeyedRng(9))


def scored_paths(scores):
    paths = []
    for i, score in enumerate(scores):
        path = ReasoningPath(lineage=(i,))
        path.record_step(5, 0.0)
        path.record_score(score)
        paths.append(path)
    return paths


class TestSelectionProperties:
    @given(
        st.sampled_from(["beam_search", "dvts", "dynamic_branching",
                         "varying_granularity"]),
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=32),
    )
    @settings(max_examples=80, deadline=None)
    def test_selection_within_budget(self, name, scores):
        n = 16
        if name == "dvts" and len(scores) > n:
            scores = scores[:n]
        algo = build_algorithm(name, n)
        decision = algo.select(scored_paths(scores), 0, KeyedRng(0))
        assert decision.total_children <= max(n, len(scores))
        for expansion in decision.expansions:
            assert expansion.n_children >= 1
            assert not expansion.path.terminal

    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_beam_keeps_best(self, scores):
        algo = build_algorithm("beam_search", 8)
        paths = scored_paths(scores)
        decision = algo.select(paths, 0, KeyedRng(0))
        kept = {e.path.last_score for e in decision.expansions}
        cutoff = sorted(scores, reverse=True)[len(kept) - 1]
        assert all(s >= cutoff or s in kept for s in kept)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=32),
           st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_selection_deterministic(self, scores, round_idx):
        algo = build_algorithm("dynamic_branching", 16)
        a = algo.select(scored_paths(scores), round_idx, KeyedRng(1))
        b = algo.select(scored_paths(scores), round_idx, KeyedRng(1))
        assert [(e.path.lineage, e.n_children) for e in a.expansions] == [
            (e.path.lineage, e.n_children) for e in b.expansions
        ]


class TestGenerationProperties:
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=6).map(tuple),
        st.integers(0, 7),
    )
    @settings(max_examples=100, deadline=None)
    def test_plan_pure(self, lineage, step_idx):
        if step_idx + 1 > len(lineage):
            lineage = lineage + (0,) * (step_idx + 1 - len(lineage))
        a = GENERATOR.plan_step(PROBLEM, lineage, step_idx)
        b = GENERATOR.plan_step(PROBLEM, lineage, step_idx)
        assert a == b

    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=6).map(tuple),
        st.integers(1, 2048),
    )
    @settings(max_examples=100, deadline=None)
    def test_cap_respected_and_orthogonal(self, lineage, cap):
        capped = GENERATOR.plan_step(PROBLEM, lineage, 0, max_step_tokens=cap)
        free = GENERATOR.plan_step(PROBLEM, lineage, 0)
        assert capped.n_tokens <= max(cap, 1)
        assert capped.soundness == free.soundness
        assert capped.is_terminal == free.is_terminal
        assert capped.n_tokens <= free.n_tokens
