"""Tests for the verification round and LookAhead Verification."""

import pytest

from repro.core.verification_round import VerificationRound
from repro.engine.clock import SimClock
from repro.engine.jobs import VerifyJob
from repro.engine.telemetry import PhaseTimer, UtilizationTracker
from repro.engine.worker import VerifierWorker
from repro.hardware.device import get_device
from repro.hardware.roofline import Roofline
from repro.kvcache.cache import PagedKVCache
from repro.llm.oracle import QualityOracle
from repro.llm.verifier import SimulatedPRM
from repro.models.zoo import SKYWORK_PRM_1P5B
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset

PROMPT_SEG = 500


@pytest.fixture
def problem():
    return list(build_dataset("amc23", seed=2, size=1))[0]


def make_setup(capacity_tokens=50_000):
    cache = PagedKVCache(
        capacity_tokens * SKYWORK_PRM_1P5B.kv_bytes_per_token,
        SKYWORK_PRM_1P5B.kv_bytes_per_token,
    )
    cache.register_segment(PROMPT_SEG, None, 64)
    clock = SimClock()
    worker = VerifierWorker(
        SKYWORK_PRM_1P5B, Roofline(get_device("rtx4090")), cache, clock,
        PhaseTimer(), UtilizationTracker(),
    )
    rng = KeyedRng(2)
    prm = SimulatedPRM(SKYWORK_PRM_1P5B, QualityOracle(rng=rng.fork("oracle")), rng)
    return worker, prm


def make_job(i, step_idx=0, new_tokens=40, soundness=0.0, **lookahead):
    return VerifyJob(
        lineage=(i,),
        step_idx=step_idx,
        path_segments=(PROMPT_SEG,),
        path_segment_tokens=(64,),
        new_segment=600 + i,
        new_tokens=new_tokens,
        mean_soundness=soundness,
        **lookahead,
    )


class TestScoring:
    def test_all_jobs_scored(self, problem):
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=2)
        result = round_.run(problem, [make_job(i) for i in range(5)])
        assert set(result.scores) == {(i,) for i in range(5)}
        for score in result.scores.values():
            assert 0.0 <= score <= 1.0

    def test_scores_match_direct_prm(self, problem):
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=4)
        result = round_.run(problem, [make_job(0, soundness=0.3)])
        assert result.scores[(0,)] == prm.score_step(problem, (0,), 0, 0.3)

    def test_time_charged(self, problem):
        worker, prm = make_setup()
        VerificationRound(worker, prm, batch_size=2).run(
            problem, [make_job(i) for i in range(4)]
        )
        assert worker.clock.now > 0

    def test_batching_cheaper_than_serial(self, problem):
        worker_batched, prm = make_setup()
        VerificationRound(worker_batched, prm, batch_size=8).run(
            problem, [make_job(i) for i in range(8)]
        )
        worker_serial, prm2 = make_setup()
        VerificationRound(worker_serial, prm2, batch_size=1).run(
            problem, [make_job(i) for i in range(8)]
        )
        assert worker_batched.clock.now < worker_serial.clock.now

    def test_cache_retention_reduces_cost(self, problem):
        """Second round over grown paths prefillsonly the new step."""
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=4)
        round_.run(problem, [make_job(i) for i in range(4)])
        t_first = worker.clock.now
        jobs2 = [
            VerifyJob(
                lineage=(i,), step_idx=1,
                path_segments=(PROMPT_SEG, 600 + i),
                path_segment_tokens=(64, 40),
                new_segment=700 + i, new_tokens=40, mean_soundness=0.0,
            )
            for i in range(4)
        ]
        round_.run(problem, jobs2)
        t_second = worker.clock.now - t_first
        assert t_second < t_first  # prefix was resident

    def test_score_cache_skips_compute(self, problem):
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=4)
        cached_score = 0.42
        result = round_.run(
            problem, [make_job(0)], score_cache={((0,), 0): cached_score}
        )
        assert result.scores[(0,)] == cached_score
        assert worker.clock.now == 0.0

    def test_single_oversized_job_raises(self, problem):
        from repro.errors import CapacityError

        worker, prm = make_setup(capacity_tokens=100)
        round_ = VerificationRound(worker, prm, batch_size=2)
        with pytest.raises(CapacityError):
            round_.run(problem, [make_job(0, new_tokens=5000)])


class TestLookAhead:
    def lookahead_job(self, i=0):
        return make_job(
            i,
            lookahead_child=(i, 0),
            lookahead_segment=900 + i,
            lookahead_tokens=30,
            lookahead_soundness=0.1,
        )

    def test_lookahead_prescore_cached(self, problem):
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=4, lookahead=True)
        result = round_.run(problem, [self.lookahead_job()])
        assert ((0, 0), 1) in result.lookahead_scores

    def test_lookahead_score_matches_future(self, problem):
        """Pre-verified score equals the one a later round would compute."""
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=4, lookahead=True)
        result = round_.run(problem, [self.lookahead_job()])
        assert result.lookahead_scores[((0, 0), 1)] == prm.score_step(
            problem, (0, 0), 1, 0.1
        )

    def test_lookahead_disabled_ignores_fields(self, problem):
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=4, lookahead=False)
        result = round_.run(problem, [self.lookahead_job()])
        assert result.lookahead_scores == {}

    def test_lookahead_saves_next_round_time(self, problem):
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=4, lookahead=True)
        result = round_.run(problem, [self.lookahead_job()])
        t_after_first = worker.clock.now
        # next round: child (0, 0) at step 1 hits the score cache
        child_job = VerifyJob(
            lineage=(0, 0), step_idx=1,
            path_segments=(PROMPT_SEG, 600),
            path_segment_tokens=(64, 40),
            new_segment=900, new_tokens=30, mean_soundness=0.1,
        )
        round_.run(problem, [child_job], score_cache=dict(result.lookahead_scores))
        assert worker.clock.now == t_after_first

    def test_no_pins_leak(self, problem):
        worker, prm = make_setup()
        round_ = VerificationRound(worker, prm, batch_size=2, lookahead=True)
        round_.run(problem, [self.lookahead_job(i) for i in range(4)])
        cache = worker.cache
        for seg_id in (PROMPT_SEG, 600, 601, 900, 901):
            assert cache.segment(seg_id).pin_count == 0
