"""Tests for the multi-request fleet serving loop."""

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import FleetRequest, TTSFleet, generate_arrivals
from repro.metrics.fleet import FleetMetrics, FleetRequestRecord
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("amc23", seed=0, size=3)


def _drain(dataset, rate_rps, n=4, fast=False, **fleet_kwargs):
    factory = fasttts_config if fast else baseline_config
    config = factory(memory_fraction=0.4, seed=0)
    fleet = TTSFleet(config, dataset, **fleet_kwargs)
    algorithm = build_algorithm("beam_search", n)
    arrivals = generate_arrivals(len(dataset), rate_rps, distribution="uniform")
    fleet.submit_stream(list(dataset), algorithm, arrivals)
    return fleet.drain()


class TestGenerateArrivals:
    def test_uniform_spacing(self):
        assert generate_arrivals(3, 0.5, distribution="uniform") == (0.0, 2.0, 4.0)

    def test_poisson_deterministic_and_monotone(self):
        a = generate_arrivals(6, 0.1, seed=3)
        b = generate_arrivals(6, 0.1, seed=3)
        assert a == b
        assert all(t1 > t0 for t0, t1 in zip(a, a[1:]))
        assert a != generate_arrivals(6, 0.1, seed=4)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            generate_arrivals(3, 0.0)
        with pytest.raises(ValueError):
            generate_arrivals(3, 1.0, distribution="bursty")


class TestFleetServing:
    def test_fifo_records_are_consistent(self, dataset):
        report = _drain(dataset, rate_rps=0.05)
        assert len(report.records) == len(dataset)
        finish = 0.0
        for record in report.records:
            assert record.accepted
            assert record.start_s >= record.arrival_s
            assert record.start_s >= finish  # one device, FIFO
            finish = record.finish_s
            assert record.request_id in report.results

    def test_service_time_matches_solve_latency(self, dataset):
        report = _drain(dataset, rate_rps=0.001)  # no queueing at this rate
        for record in report.records:
            result = report.results[record.request_id]
            assert record.service_s == pytest.approx(result.latency.total)

    def test_queueing_delay_monotone_in_load(self, dataset):
        slow = _drain(dataset, rate_rps=0.001).metrics
        fast = _drain(dataset, rate_rps=0.05).metrics
        saturated = _drain(dataset, rate_rps=1.0).metrics
        assert slow.queue_delay_p95_s <= fast.queue_delay_p95_s <= saturated.queue_delay_p95_s
        assert slow.queue_delay_mean_s <= fast.queue_delay_mean_s
        assert saturated.queue_delay_mean_s > 0.0

    def test_deterministic(self, dataset):
        a = _drain(dataset, rate_rps=0.05)
        b = _drain(dataset, rate_rps=0.05)
        assert a.records == b.records

    def test_fasttts_fleet_runs(self, dataset):
        report = _drain(dataset, rate_rps=0.05, fast=True)
        assert report.metrics.completed == len(dataset)
        assert report.metrics.busy_fraction > 0.0


class TestAdmissionControl:
    def test_queue_depth_rejection(self, dataset):
        open_fleet = _drain(dataset, rate_rps=1.0).metrics
        capped = _drain(dataset, rate_rps=1.0, max_in_flight=1)
        assert open_fleet.rejected == 0
        assert capped.metrics.rejected >= 1
        reasons = [r.reject_reason for r in capped.records if not r.accepted]
        assert all("queue full" in reason for reason in reasons)

    def test_kv_budget_rejection(self, dataset):
        # 0.27 of a 4090 admits the 1.5B+1.5B weights (~5.7 GB) but leaves
        # less KV than one worst-case path needs — admission must reject.
        config = baseline_config(memory_fraction=0.27, seed=0)
        fleet = TTSFleet(config, dataset)
        fleet.submit(list(dataset)[0], build_algorithm("beam_search", 4), 0.0)
        report = fleet.drain()
        assert report.metrics.rejected == 1
        assert "KV budget" in report.records[0].reject_reason

    def test_max_in_flight_validated(self, dataset):
        with pytest.raises(ValueError):
            TTSFleet(baseline_config(memory_fraction=0.4), dataset, max_in_flight=0)


class TestFleetMetrics:
    def test_aggregate_requires_records(self):
        with pytest.raises(ValueError):
            FleetMetrics.aggregate([])

    def test_all_rejected_degenerates_cleanly(self):
        records = [
            FleetRequestRecord(
                request_id="req-0000", arrival_s=0.0, start_s=0.0, finish_s=0.0,
                accepted=False, reject_reason="queue full",
            )
        ]
        metrics = FleetMetrics.aggregate(records)
        assert metrics.completed == 0
        assert metrics.throughput_rps == 0.0
        assert metrics.busy_fraction == 0.0

    def test_record_validation(self):
        with pytest.raises(ValueError):
            FleetRequestRecord(
                request_id="r", arrival_s=5.0, start_s=4.0, finish_s=6.0
            )

    def test_request_validation(self, dataset):
        with pytest.raises(ValueError):
            FleetRequest(
                request_id="r", problem=list(dataset)[0],
                algorithm=build_algorithm("beam_search", 4), arrival_s=-1.0,
            )
