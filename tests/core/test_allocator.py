"""Tests for Asymmetric Multi-Model Memory Allocation."""

import pytest

from repro.core.allocator import (
    RooflineAllocator,
    WorkloadProfile,
    static_split_plan,
)
from repro.errors import CapacityError
from repro.hardware.device import get_device
from repro.hardware.offload import OffloadLink
from repro.hardware.roofline import Roofline
from repro.models.zoo import model_pair
from repro.workloads.datasets import build_dataset

_GB = 1024**3


@pytest.fixture
def setup():
    generator, verifier = model_pair("1.5B+1.5B")
    device = get_device("rtx4090")
    roofline = Roofline(device)
    allocator = RooflineAllocator(verifier, generator, roofline, OffloadLink(device))
    dataset = build_dataset("aime24", seed=0, size=1)
    profile = WorkloadProfile.from_dataset(dataset, 64)
    return generator, verifier, roofline, allocator, profile


class TestWorkloadProfile:
    def test_from_dataset(self):
        dataset = build_dataset("aime24", seed=0, size=1)
        profile = WorkloadProfile.from_dataset(dataset, 32)
        assert profile.n_requests == 32
        assert profile.max_path_tokens >= profile.decode_context

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(n_requests=0, verify_tokens=1, decode_tokens=1,
                            decode_context=1, max_path_tokens=1)
        with pytest.raises(ValueError):
            WorkloadProfile(n_requests=1, verify_tokens=1, decode_tokens=1,
                            decode_context=10, max_path_tokens=5)


class TestSearch:
    def test_plan_respects_budget(self, setup):
        _, _, _, allocator, profile = setup
        plan = allocator.search(profile, 4 * _GB)
        assert plan.kv_pre_bytes + plan.kv_dec_bytes <= 4 * _GB
        assert plan.b_pre >= 1 and plan.b_dec >= 1

    def test_uses_full_boundary(self, setup):
        """The optimum lies on the budget boundary (Sec. 4.3.1)."""
        _, _, _, allocator, profile = setup
        plan = allocator.search(profile, 4 * _GB)
        assert plan.kv_pre_bytes + plan.kv_dec_bytes == 4 * _GB

    def test_more_memory_never_slower(self, setup):
        _, _, _, allocator, profile = setup
        small = allocator.search(profile, 2 * _GB)
        large = allocator.search(profile, 8 * _GB)
        assert large.est_total_time <= small.est_total_time

    def test_decode_batch_grows_with_memory(self, setup):
        _, _, _, allocator, profile = setup
        small = allocator.search(profile, 2 * _GB)
        large = allocator.search(profile, 8 * _GB)
        assert large.b_dec >= small.b_dec

    def test_floor_enforced(self, setup):
        _, _, _, allocator, profile = setup
        with pytest.raises(CapacityError):
            allocator.search(profile, int(0.1 * _GB))

    def test_zero_budget_raises(self, setup):
        _, _, _, allocator, profile = setup
        with pytest.raises(CapacityError):
            allocator.search(profile, 0)

    def test_exhaustive_optimality(self, setup):
        """The linear search finds the global optimum over the boundary."""
        from repro.core.allocator import _estimate_total_time, _per_seq_bytes

        generator, verifier, roofline, allocator, profile = setup
        budget = 3 * _GB
        plan = allocator.search(profile, budget)
        pre_seq = _per_seq_bytes(verifier, profile.verify_tokens)
        dec_seq = _per_seq_bytes(generator, profile.decode_context)
        for b_pre in range(1, profile.n_requests + 1):
            kv_pre = b_pre * pre_seq
            b_dec = min((budget - kv_pre) // dec_seq, profile.n_requests)
            if b_dec < 1:
                break
            t = _estimate_total_time(verifier, generator, roofline, profile,
                                     b_pre, b_dec)
            assert plan.est_total_time <= t + 1e-12


class TestStaticSplit:
    def test_half_and_half(self, setup):
        generator, verifier, roofline, _, profile = setup
        plan = static_split_plan(verifier, generator, roofline, profile, 4 * _GB)
        assert abs(plan.kv_pre_bytes - plan.kv_dec_bytes) <= plan.kv_pre_bytes * 0.01

    def test_floors_shift_the_split(self, setup):
        generator, verifier, roofline, _, profile = setup
        tight = int(0.9 * _GB)
        plan = static_split_plan(verifier, generator, roofline, profile, tight)
        # each side still hosts one worst-case path
        floor = profile.max_path_tokens * generator.kv_bytes_per_token
        assert plan.kv_pre_bytes >= floor
        assert plan.kv_dec_bytes >= floor

    def test_impossible_budget_raises(self, setup):
        generator, verifier, roofline, _, profile = setup
        with pytest.raises(CapacityError):
            static_split_plan(verifier, generator, roofline, profile, int(0.2 * _GB))


class TestAsymmetryClaim:
    def test_allocator_beats_static_split(self, setup):
        """The paper's core claim: asymmetric beats 50/50 in estimated time."""
        generator, verifier, roofline, allocator, profile = setup
        budget = 2 * _GB
        static = static_split_plan(verifier, generator, roofline, profile, budget)
        optimal = allocator.search(profile, budget)
        assert optimal.est_total_time <= static.est_total_time

    def test_decode_gets_more_memory(self, setup):
        """Decode is memory-hungry; prefill saturates early (Fig. 6)."""
        _, _, _, allocator, profile = setup
        plan = allocator.search(profile, 4 * _GB)
        assert plan.kv_dec_bytes > plan.kv_pre_bytes


class TestOffload:
    def test_offload_relaxes_constraints(self, setup):
        _, _, _, allocator, profile = setup
        coupled = allocator.search(profile, int(0.8 * _GB))
        offload = allocator.search_offload(profile, int(0.8 * _GB))
        assert offload.b_dec >= coupled.b_dec
        assert offload.offload
        assert offload.est_offload_overhead > 0

    def test_offload_resident_footprint_is_max(self, setup):
        _, _, _, allocator, profile = setup
        plan = allocator.search_offload(profile, _GB)
        assert plan.kv_total_bytes == max(plan.kv_pre_bytes, plan.kv_dec_bytes)

    def test_best_plan_picks_faster(self, setup):
        _, _, _, allocator, profile = setup
        plan = allocator.best_plan(profile, 4 * _GB, allow_offload=True)
        coupled = allocator.search(profile, 4 * _GB)
        offload = allocator.search_offload(profile, 4 * _GB)
        assert plan.est_total_time == min(coupled.est_total_time,
                                          offload.est_total_time)

    def test_best_plan_without_offload(self, setup):
        _, _, _, allocator, profile = setup
        plan = allocator.best_plan(profile, 4 * _GB, allow_offload=False)
        assert not plan.offload

    def test_offload_floor(self, setup):
        _, _, _, allocator, profile = setup
        with pytest.raises(CapacityError):
            allocator.search_offload(profile, int(0.05 * _GB))

    def test_no_link_raises(self, setup):
        generator, verifier, roofline, _, profile = setup
        allocator = RooflineAllocator(verifier, generator, roofline, offload_link=None)
        with pytest.raises(CapacityError):
            allocator.search_offload(profile, _GB)


class TestSurplusReturn:
    def test_surplus_flows_to_verifier_when_decode_saturated(self, setup):
        """With ample memory the verifier keeps retention capacity."""
        _, _, _, allocator, profile = setup
        plan = allocator.search(profile, 14 * _GB)
        assert plan.b_dec == profile.n_requests
        # verifier holds well above its single-path floor
        floor = profile.max_path_tokens * 28_672
        assert plan.kv_pre_bytes > floor
