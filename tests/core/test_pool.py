"""Tests for DevicePool: placement, migration, and KV oversubscription.

The redesign's contract: a single-device pool with the fifo scheduler is a
strict superset of the old fleet (byte-identity is pinned by
``tests/goldens`` via test_scheduler.py); a heterogeneous pool beats
either device alone under load; and co-resident KV-heavy sessions now pay
swap time (or are refused admission) instead of contending for free.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.fleet import TTSFleet, generate_arrivals
from repro.core.pool import (
    DevicePool,
    build_placement,
    list_placements,
    placement_descriptions,
)
from repro.core.scheduler import SessionHandle
from repro.engine.clock import ClockBinding
from repro.errors import CapacityError, ConfigError, SchedulingError
from repro.search.registry import build_algorithm
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("amc23", seed=0, size=8)


def drain(dataset, devices, rate, size=None, n=4, mf=0.9, scheduler="fifo",
          placement="least_loaded", **kwargs):
    size = len(dataset) if size is None else size
    config = fasttts_config(
        memory_fraction=mf, seed=0, device_name=devices[0]
    )
    fleet = TTSFleet(
        config, dataset, scheduler=scheduler,
        devices=list(devices), placement=placement, **kwargs
    )
    problems = list(dataset)[:size]
    arrivals = generate_arrivals(size, rate, seed=0)
    fleet.submit_stream(problems, build_algorithm("beam_search", n), arrivals)
    return fleet.drain()


def make_handle(lane, problem, n=4):
    session = lane.server.session(problem, build_algorithm("beam_search", n))
    handle = SessionHandle(
        request_id="req-0000", arrival_s=0.0, seq=0, replica=0,
        session=session, binding=ClockBinding(session.clock), device=lane,
    )
    handle.binding.rebind(lane.clock)
    return handle


class TestFleetConstruction:
    def test_pool_and_config_are_exclusive(self, dataset):
        config = baseline_config(memory_fraction=0.4)
        pool = DevicePool.build(config, dataset)
        with pytest.raises(ConfigError):
            TTSFleet(config, dataset, pool=pool)
        with pytest.raises(ConfigError):
            TTSFleet(pool=pool, devices=["rtx4090"])
        with pytest.raises(ConfigError):
            TTSFleet()

    def test_compat_properties_point_at_first_lane(self, dataset):
        config = baseline_config(memory_fraction=0.9)
        pool = DevicePool.build(config, dataset, ["rtx4090", "rtx4070ti"])
        fleet = TTSFleet(pool=pool)
        assert fleet.server is pool[0].server
        assert fleet.clock is pool[0].clock
        assert fleet.placement.name == "first_fit"

    def test_single_device_pool_fifo_reproduces_golden(self):
        """Explicit pool= construction is the same strict superset."""
        golden = json.loads(
            (Path(__file__).parent.parent / "goldens"
             / "fleet_fifo_goldens.json").read_text()
        )["open-busy"]
        dataset = build_dataset("amc23", seed=0, size=5)
        pool = DevicePool.build(
            baseline_config(memory_fraction=0.4, seed=0), dataset
        )
        fleet = TTSFleet(pool=pool, scheduler="fifo")
        arrivals = generate_arrivals(5, 0.05, seed=0)
        fleet.submit_stream(
            list(dataset), build_algorithm("beam_search", 4), arrivals
        )
        report = fleet.drain()
        produced = [
            {
                "request_id": r.request_id,
                "arrival_s": r.arrival_s,
                "start_s": r.start_s,
                "finish_s": r.finish_s,
                "accepted": r.accepted,
                "reject_reason": r.reject_reason,
                "latency": r.latency.to_json_dict() if r.latency else None,
            }
            for r in report.records
        ]
        assert produced == golden["records"]
        assert {
            rid: res.to_json_dict() for rid, res in sorted(report.results.items())
        } == golden["results"]


class TestDevicePool:
    def test_build_single_device_defaults_to_config_device(self, dataset):
        pool = DevicePool.build(baseline_config(memory_fraction=0.4), dataset)
        assert len(pool) == 1
        assert pool[0].device_id == "dev0:rtx4090"
        assert pool[0].server.device.name == "rtx4090"

    def test_build_heterogeneous(self, dataset):
        pool = DevicePool.build(
            fasttts_config(memory_fraction=0.9), dataset,
            ["rtx4090", "rtx4070ti"],
        )
        assert [lane.spec.name for lane in pool] == ["rtx4090", "rtx4070ti"]
        # per-device KV ledgers track each lane's own budget
        assert pool[0].ledger.capacity_bytes == pool[0].server.kv_budget_bytes
        assert pool[0].ledger.capacity_bytes > pool[1].ledger.capacity_bytes

    def test_empty_pool_rejected(self, dataset):
        with pytest.raises(ConfigError):
            DevicePool([])
        with pytest.raises(ConfigError):
            DevicePool.build(baseline_config(memory_fraction=0.4), dataset, [])

    def test_mismatched_lanes_rejected(self, dataset):
        a = DevicePool.build(
            baseline_config(memory_fraction=0.4, seed=0), dataset
        )[0]
        b = DevicePool.build(
            baseline_config(memory_fraction=0.4, seed=1), dataset
        )[0]
        with pytest.raises(ConfigError):
            DevicePool([a, b])

    def test_device_by_id_suggests_near_miss(self, dataset):
        pool = DevicePool.build(baseline_config(memory_fraction=0.4), dataset)
        with pytest.raises(ConfigError, match="did you mean 'dev0:rtx4090'"):
            pool.device_by_id("dev0:rtx409")


class TestPlacementRegistry:
    def test_policies_registered(self):
        assert list_placements() == [
            "first_fit", "kv_balanced", "least_loaded", "prefix_affinity"
        ]

    def test_descriptions_cover_every_policy(self):
        assert set(placement_descriptions()) == set(list_placements())
        assert all(placement_descriptions().values())

    def test_unknown_policy_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'least_loaded'"):
            build_placement("least_loadd")


class TestPlacementPolicies:
    def test_first_fit_packs_device_zero(self, dataset):
        report = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.05,
                       placement="first_fit")
        assert all(r.device_id == "dev0:rtx4090" for r in report.records)
        idle = next(d for d in report.devices if d.device_id == "dev1:rtx4070ti")
        assert idle.requests == 0 and idle.busy_s == 0.0

    def test_least_loaded_spreads_requests(self, dataset):
        report = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.1,
                       placement="least_loaded")
        used = {r.device_id for r in report.records}
        assert used == {"dev0:rtx4090", "dev1:rtx4070ti"}
        assert sum(d.requests for d in report.devices) == len(report.records)

    def test_kv_balanced_spreads_requests(self, dataset):
        report = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.1,
                       placement="kv_balanced")
        assert {r.device_id for r in report.records} == {
            "dev0:rtx4090", "dev1:rtx4070ti"
        }

    def test_deterministic(self, dataset):
        a = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.1)
        b = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.1)
        assert a.records == b.records


class TestPrefixAffinityPlacement:
    """The placement-side prefix_affinity: route to the warm lane."""

    @staticmethod
    def prefix_pool():
        dataset = build_dataset("amc23", seed=0, size=2)
        pool = DevicePool.build(
            fasttts_config(memory_fraction=0.9, seed=0), dataset,
            ["rtx4090", "rtx4070ti"], kv_sharing="prefix",
        )
        return pool, list(dataset)

    @staticmethod
    def request(problem, n=4):
        from repro.core.fleet import FleetRequest

        return FleetRequest(
            request_id="req-0000", problem=problem,
            algorithm=build_algorithm("beam_search", n), arrival_s=0.0,
        )

    def test_routes_to_lane_holding_the_prefix(self):
        pool, problems = self.prefix_pool()
        # Warm the *higher-indexed* lane so the choice cannot be explained
        # by any index/load tie-break.
        warm = make_handle(pool[1], problems[0])
        for _ in range(4):
            warm.session.step()
        pool[1].ledger.charge_growth_segments(
            warm.session.session_id, warm.session.kv_segments()
        )
        policy = build_placement("prefix_affinity")
        chosen = policy.choose(self.request(problems[0]), list(pool), 0.0)
        assert chosen is pool[1]
        # a different problem shares nothing: falls back to least loaded
        other = policy.choose(self.request(problems[1]), list(pool), 0.0)
        assert other is pool[0]

    def test_pending_planned_claims_attract_before_any_kv_lands(self):
        """A same-prefix burst co-locates on planned claims alone."""
        from repro.core.session import planned_kv_segments

        pool, problems = self.prefix_pool()
        planned = planned_kv_segments(pool[1].server, problems[0])
        pool[1].note_planned_segments(planned)
        policy = build_placement("prefix_affinity")
        assert policy.choose(self.request(problems[0]), list(pool), 0.0) is pool[1]
        pool[1].forget_planned_segments(planned)
        assert policy.choose(self.request(problems[0]), list(pool), 0.0) is pool[0]

    def test_cold_pool_ties_fall_to_least_loaded(self, dataset):
        affinity = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.1,
                         placement="prefix_affinity")
        least = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.1,
                      placement="least_loaded")
        # distinct problems, whole-session ledgers: every affinity score is
        # zero, so the policy is least_loaded — byte-identical records
        assert affinity.records == least.records

    def test_non_sharing_lanes_score_zero(self, dataset):
        pool = DevicePool.build(
            fasttts_config(memory_fraction=0.9, seed=0), dataset,
            ["rtx4090", "rtx4070ti"],
        )
        from repro.core.session import planned_kv_segments

        lane = pool[0]
        assert not lane.ledger.segment_granular
        claims = planned_kv_segments(lane.server, list(dataset)[0])
        assert lane.prefix_affinity_bytes(claims) == 0
        assert lane.prefix_overlap_bytes(claims) == 0


class TestHeterogeneousPoolBeatsSingles:
    """Acceptance: the 2-device pool wins p95 sojourn at the same rate."""

    @pytest.mark.parametrize("placement", ["least_loaded", "kv_balanced"])
    def test_pool_p95_sojourn_below_either_device_alone(self, dataset, placement):
        rate = 0.1
        alone_4090 = drain(dataset, ["rtx4090"], rate).metrics
        alone_4070 = drain(dataset, ["rtx4070ti"], rate).metrics
        pool = drain(dataset, ["rtx4090", "rtx4070ti"], rate,
                     placement=placement).metrics
        assert pool.devices == 2
        assert pool.latency_p95_s < alone_4090.latency_p95_s
        assert pool.latency_p95_s < alone_4070.latency_p95_s

    def test_per_device_rollup_accounts_every_request(self, dataset):
        report = drain(dataset, ["rtx4090", "rtx4070ti"], rate=0.1)
        assert len(report.devices) == 2
        assert sum(d.requests for d in report.devices) == report.metrics.completed
        for d in report.devices:
            assert 0.0 <= d.busy_fraction <= 1.0
        assert "busy frac" in report.device_table()
        # pool-level busy fraction is normalized by lane count
        assert 0.0 < report.metrics.busy_fraction <= 1.0


class TestKvOversubscription:
    """Acceptance: concurrent KV-heavy sessions are no longer free."""

    def fleet(self, scheduler, **kwargs):
        # 0.3 of a 4090 leaves ~0.95 GB of KV; one n=16 beam_search on
        # amc23 peaks at ~0.89 GB, so two co-resident sessions thrash.
        dataset = build_dataset("amc23", seed=0, size=2)
        config = fasttts_config(memory_fraction=0.3, seed=0)
        fleet = TTSFleet(config, dataset, scheduler=scheduler, **kwargs)
        fleet.submit_stream(
            list(dataset), build_algorithm("beam_search", 16), (0.0, 1.0)
        )
        return fleet.drain()

    def test_interleaved_sessions_pay_swap_time(self):
        fifo = self.fleet("fifo")
        rr = self.fleet("round_robin")
        # run-to-completion never co-resides KV: no contention charge
        assert fifo.metrics.kv_swap_s == 0.0
        # interleaving oversubscribes the ledger: every switch restores
        # evicted KV and evicts the neighbour — charged on the clock
        assert rr.metrics.kv_swap_s > 0.0
        assert all(r.kv_swap_s > 0.0 for r in rr.records)
        # the charged time is real simulated time: total device work grows
        assert rr.metrics.makespan_s > fifo.metrics.makespan_s
        # and lands in the requests' latency breakdown as swap
        for result in rr.results.values():
            assert result.latency.swap > 0.0
        # the device still cannot be more than fully busy
        assert rr.metrics.busy_fraction <= 1.0 + 1e-9

    def test_light_sessions_still_free(self):
        dataset = build_dataset("amc23", seed=0, size=2)
        config = fasttts_config(memory_fraction=0.4, seed=0)
        fleet = TTSFleet(config, dataset, scheduler="round_robin")
        fleet.submit_stream(
            list(dataset), build_algorithm("beam_search", 4), (0.0, 1.0)
        )
        report = fleet.drain()
        # both sessions fit the ledger together: no contention, no charge
        assert report.metrics.kv_swap_s == 0.0

    def test_deny_mode_refuses_oversubscription(self):
        report = self.fleet("round_robin", oversubscription="deny")
        accepted = [r for r in report.records if r.accepted]
        rejected = [r for r in report.records if not r.accepted]
        assert len(accepted) == 1 and len(rejected) == 1
        assert "oversubscribe" in rejected[0].reject_reason
        assert report.metrics.kv_swap_s == 0.0

    def test_bad_oversubscription_mode_rejected(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        with pytest.raises(ConfigError):
            TTSFleet(
                baseline_config(memory_fraction=0.4), dataset,
                oversubscription="ignore",
            )


class TestMigration:
    def pool(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        pool = DevicePool.build(
            fasttts_config(memory_fraction=0.9, seed=0), dataset,
            ["rtx4090", "rtx4070ti"],
        )
        return pool, list(dataset)[0]

    def test_migrate_charges_pcie_and_hands_over(self):
        pool, problem = self.pool()
        src, dst = pool[0], pool[1]
        handle = make_handle(src, problem)
        session = handle.session
        for _ in range(5):
            session.step()
        handle.binding.sync(src.clock)
        src.ledger.charge_growth(session.session_id, session.resident_kv_bytes)
        moved = session.resident_kv_bytes
        assert moved > 0
        before = session.clock.now

        charged = pool.migrate(handle, dst)

        expected = src.link.transfer_time(moved) + dst.link.transfer_time(moved)
        assert charged == pytest.approx(expected)
        assert session.clock.now == pytest.approx(before + charged)
        # ledgers handed the footprint over
        assert src.ledger.resident_of(session.session_id) == 0
        assert dst.ledger.resident_of(session.session_id) == moved
        # destination cannot resume the session before the data lands
        assert dst.clock.now >= src.clock.now
        assert src.migrations_out == 1 and dst.migrations_in == 1
        assert handle.device is dst
        assert session.server is dst.server

    def test_migrated_session_finishes_on_destination_roofline(self):
        pool, problem = self.pool()
        handle = make_handle(pool[0], problem)
        for _ in range(5):
            handle.session.step()
        handle.binding.sync(pool[0].clock)
        pool.migrate(handle, pool[1])
        while handle.session.state.live:
            handle.session.step()
        migrated = handle.session.outcome.result

        # same problem solved wholly on the slower device: identical
        # search results (keyed draws), different timing
        solo = pool[1].server.solve(problem, build_algorithm("beam_search", 4))
        assert [b.answer for b in migrated.beams] == [b.answer for b in solo.beams]
        assert migrated.latency.total != solo.latency.total

    def test_migrate_unstarted_session_is_free(self):
        pool, problem = self.pool()
        handle = make_handle(pool[0], problem)
        charged = pool.migrate(handle, pool[1])
        assert charged == 0.0
        assert pool[1].clock.now == 0.0
        assert handle.device is pool[1]
        # still solvable end to end on the destination
        while handle.session.state.live:
            handle.session.step()
        assert handle.session.outcome.result.beams

    def test_migrate_same_device_is_noop(self):
        pool, problem = self.pool()
        handle = make_handle(pool[0], problem)
        assert pool.migrate(handle, pool[0]) == 0.0
        assert pool[0].migrations_out == 0

    def test_migrate_dead_session_rejected(self):
        pool, problem = self.pool()
        handle = make_handle(pool[0], problem)
        handle.session.cancel()
        with pytest.raises(SchedulingError):
            pool.migrate(handle, pool[1])

    def test_migrate_refused_when_kv_cannot_fit(self):
        dataset = build_dataset("amc23", seed=0, size=1)
        problem = list(dataset)[0]
        # dev1 at 0.75 memory fraction: weights fit but its KV budget is
        # smaller than a 24 GB lane's resident n=16 session footprint...
        config = fasttts_config(memory_fraction=0.9, seed=0)
        pool = DevicePool.build(config, dataset, ["rtx4090", "rtx3070ti"])
        handle = make_handle(pool[0], problem, n=16)
        session = handle.session
        while (
            session.state.live
            and session.resident_kv_bytes <= pool[1].ledger.capacity_bytes
        ):
            session.step()
        if not session.state.live:
            pytest.skip("session never outgrew the small lane's budget")
        handle.binding.sync(pool[0].clock)
        pool[0].ledger.charge_growth(
            session.session_id, session.resident_kv_bytes
        )
        src_clock_before = pool[0].clock.now
        dst_clock_before = pool[1].clock.now
        session_clock_before = session.clock.now
        resident_before = pool[0].ledger.resident_of(session.session_id)
        assert resident_before > 0
        with pytest.raises(CapacityError):
            pool.migrate(handle, pool[1])
        # a refused migration is fully transactional: neither lane clock
        # advanced, the session was not charged, and the source ledger
        # still owns every byte (nothing leaked to the destination).
        assert pool[0].clock.now == src_clock_before
        assert pool[1].clock.now == dst_clock_before
        assert session.clock.now == session_clock_before
        assert pool[0].ledger.resident_of(session.session_id) == resident_before
        assert pool[1].ledger.resident_of(session.session_id) == 0
        assert session.session_id in pool[0].ledger.owners
        assert session.session_id not in pool[1].ledger.owners
        assert handle.device is pool[0]

    def test_migrate_refused_keeps_shared_ledger_segment_claims(self):
        """The transactional contract holds on the segment-claim path.

        With ``kv_sharing="prefix"`` each lane's ledger tracks refcounted
        prefix segments rather than opaque byte totals; a refused
        migration must leave the source's segment claims untouched and
        claim nothing on the destination.
        """
        dataset = build_dataset("amc23", seed=0, size=1)
        problem = list(dataset)[0]
        config = fasttts_config(memory_fraction=0.9, seed=0)
        pool = DevicePool.build(
            config, dataset, ["rtx4090", "rtx3070ti"], kv_sharing="prefix"
        )
        handle = make_handle(pool[0], problem, n=16)
        session = handle.session
        while (
            session.state.live
            and session.resident_kv_bytes <= pool[1].ledger.capacity_bytes
        ):
            session.step()
            pool[0].ledger.charge_growth_segments(
                session.session_id, session.kv_segments()
            )
        if not session.state.live:
            pytest.skip("session never outgrew the small lane's budget")
        handle.binding.sync(pool[0].clock)
        src_clock_before = pool[0].clock.now
        dst_clock_before = pool[1].clock.now
        resident_before = pool[0].ledger.resident_of(session.session_id)
        leaf_before = pool[0].ledger.owner_leaf(session.session_id)
        assert resident_before > 0
        with pytest.raises(CapacityError):
            pool.migrate(handle, pool[1])
        assert pool[0].clock.now == src_clock_before
        assert pool[1].clock.now == dst_clock_before
        assert pool[0].ledger.resident_of(session.session_id) == resident_before
        assert pool[0].ledger.owner_leaf(session.session_id) == leaf_before
        assert session.session_id in pool[0].ledger.owners
        assert session.session_id not in pool[1].ledger.owners
        assert handle.device is pool[0]

    def prefix_pool(self, size=1):
        dataset = build_dataset("amc23", seed=0, size=size)
        pool = DevicePool.build(
            fasttts_config(memory_fraction=0.9, seed=0), dataset,
            ["rtx4090", "rtx4070ti"], kv_sharing="prefix",
        )
        return pool, list(dataset)

    @staticmethod
    def warm(lane, problem, rounds, n=4):
        """Run a canonical session ``rounds`` steps and register its KV."""
        handle = make_handle(lane, problem, n=n)
        for _ in range(rounds):
            handle.session.step()
        lane.ledger.charge_growth_segments(
            handle.session.session_id, handle.session.kv_segments()
        )
        return handle

    def test_delta_migration_free_when_destination_fully_resident(self):
        """Same-progress canonical peer at the destination: nothing moves.

        Canonical sessions of one problem regenerate identical segment
        lineages on every lane (content-keyed draws), so the migrating
        session's whole footprint is already resident at the destination
        and the delta path charges zero PCIe time.
        """
        pool, problems = self.prefix_pool()
        src, dst = pool[0], pool[1]
        self.warm(dst, problems[0], rounds=5)
        handle = self.warm(src, problems[0], rounds=5)
        handle.binding.sync(src.clock)
        session = handle.session
        moved = session.resident_kv_bytes
        assert moved > 0
        full_cost = src.link.transfer_time(moved) + dst.link.transfer_time(moved)

        charged = pool.migrate(handle, dst)

        assert charged == 0.0 < full_cost
        assert dst.ledger.resident_of(session.session_id) == moved
        assert src.ledger.resident_of(session.session_id) == 0
        # every byte of both directions was saved, and the lanes say so
        assert src.migration_bytes_saved == moved
        assert dst.migration_bytes_saved == moved
        assert handle.device is dst

    def test_delta_migration_charges_strictly_less_on_partial_overlap(self):
        """A shallower peer shares only a lineage prefix: the delta pays
        for the missing suffix, strictly less than the full footprint."""
        pool, problems = self.prefix_pool()
        src, dst = pool[0], pool[1]
        self.warm(dst, problems[0], rounds=2)
        handle = self.warm(src, problems[0], rounds=6)
        handle.binding.sync(src.clock)
        session = handle.session
        moved = session.resident_kv_bytes
        full_cost = src.link.transfer_time(moved) + dst.link.transfer_time(moved)

        charged = pool.migrate(handle, dst)

        # The rng-independent prompt roots are shared at minimum, so the
        # delta is strictly cheaper than shipping the whole footprint;
        # the deeper rounds are not there, so it is not free either.
        assert 0.0 < charged < full_cost
        assert dst.ledger.resident_of(session.session_id) == moved
        assert src.ledger.resident_of(session.session_id) == 0
        assert src.migration_bytes_saved > 0
        assert dst.migration_bytes_saved > 0

    def test_whole_session_ledgers_still_ship_the_full_footprint(self):
        """kv_sharing off: byte path unchanged, nothing reported saved."""
        pool, problem = self.pool()
        src, dst = pool[0], pool[1]
        handle = make_handle(src, problem)
        for _ in range(5):
            handle.session.step()
        handle.binding.sync(src.clock)
        src.ledger.charge_growth(
            handle.session.session_id, handle.session.resident_kv_bytes
        )
        moved = handle.session.resident_kv_bytes
        charged = pool.migrate(handle, dst)
        assert charged == pytest.approx(
            src.link.transfer_time(moved) + dst.link.transfer_time(moved)
        )
        assert src.migration_bytes_saved == 0
        assert dst.migration_bytes_saved == 0

    def test_migrate_error_messages_name_lanes(self):
        pool, problem = self.pool()
        handle = make_handle(pool[0], problem)
        handle.session.cancel()
        with pytest.raises(
            SchedulingError,
            match=r"source dev0:rtx4090, destination dev1:rtx4070ti",
        ):
            pool.migrate(handle, pool[1])
        orphan = make_handle(pool[0], problem)
        orphan.device = None
        with pytest.raises(
            SchedulingError, match=r"destination dev1:rtx4070ti"
        ):
            pool.migrate(orphan, pool[1])

    def test_migrate_to_dead_lane_refused(self):
        pool, problem = self.pool()
        handle = make_handle(pool[0], problem)
        handle.session.step()
        pool[1].fail_lane(5.0)
        with pytest.raises(
            SchedulingError, match=r"dead lane dev1:rtx4070ti"
        ):
            pool.migrate(handle, pool[1])
