"""Tests for the server's internal scheduling and segment-naming policies."""

import pytest

from repro.core.config import baseline_config, fasttts_config
from repro.core.server import TTSServer
from repro.search.beam_search import BeamSearch
from repro.search.tree import prompt_segment_id, step_segment_id
from repro.workloads.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("amc23", seed=6, size=1)


@pytest.fixture(scope="module")
def problem(dataset):
    return list(dataset)[0]


class TestSegmentNaming:
    def test_shared_mode_uses_prefix_ids(self, dataset, problem):
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        segments = server._path_segments(problem, (3, 1), 2)
        assert segments[0] == prompt_segment_id(problem)
        assert segments[1] == step_segment_id(problem, (3, 1), 0)
        # siblings share the ancestor segment
        sibling = server._path_segments(problem, (3, 2), 2)
        assert segments[1] == sibling[1]

    def test_private_mode_isolates_paths(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        a = server._path_segments(problem, (3, 1), 2)
        b = server._path_segments(problem, (3, 2), 2)
        # no sharing at all: even the prompt copy is per-path
        assert set(a).isdisjoint(set(b))

    def test_private_ids_stable(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        assert server._path_segments(problem, (0,), 1) == server._path_segments(
            problem, (0,), 1
        )


class TestSchedulingPolicy:
    class _FakeJob:
        def __init__(self, lineage):
            self.lineage = lineage

    def jobs(self):
        return [self._FakeJob((i % 3, i)) for i in range(9)]

    def test_prefix_aware_orders_by_lineage(self, dataset, problem):
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        ordered = server._schedule(problem, self.jobs(), 0, "gen")
        lineages = [j.lineage for j in ordered]
        assert lineages == sorted(lineages)

    def test_naive_order_is_shuffled_but_deterministic(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        first = [j.lineage for j in server._schedule(problem, self.jobs(), 0, "gen")]
        second = [j.lineage for j in server._schedule(problem, self.jobs(), 0, "gen")]
        assert first == second  # keyed: reproducible
        assert first != sorted(first)  # but not tree-grouped

    def test_naive_order_varies_by_round(self, dataset, problem):
        server = TTSServer(baseline_config(memory_fraction=0.4), dataset)
        round0 = [j.lineage for j in server._schedule(problem, self.jobs(), 0, "gen")]
        round1 = [j.lineage for j in server._schedule(problem, self.jobs(), 1, "gen")]
        assert round0 != round1


class TestLookaheadGate:
    def test_top_bin_required(self, dataset, problem):
        from repro.search.tree import ReasoningPath

        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        algo = BeamSearch(n=8, branching_factor=4)
        strong = ReasoningPath(lineage=(0,))
        strong.record_step(10, 0.0)
        strong.record_score(0.9)
        weak = ReasoningPath(lineage=(1,))
        weak.record_step(10, 0.0)
        weak.record_score(0.2)
        assert server._lookahead_worthy(strong, algo)
        assert not server._lookahead_worthy(weak, algo)


class TestPlanCache:
    def test_plans_memoized_within_solve(self, dataset, problem):
        server = TTSServer(fasttts_config(memory_fraction=0.4), dataset)
        server.solve(problem, BeamSearch(n=8))
        # after a solve the memo holds the steps that were planned
        assert server._plan_cache
        (lineage, step), plan = next(iter(server._plan_cache.items()))
        assert plan.n_tokens > 0
