"""Failure-injection tests: rounds under severe memory pressure.

The preemption and retry paths only trigger when the KV pool is nearly
full; these tests construct exactly those conditions and check that the
system degrades by *spending time*, never by corrupting results.
"""

import pytest

from repro.core.generation_round import ChildStepPlan, GenerationRound
from repro.core.verification_round import VerificationRound
from repro.engine.clock import SimClock
from repro.engine.jobs import GenJob, VerifyJob
from repro.engine.telemetry import PhaseTimer, UtilizationTracker
from repro.engine.worker import GeneratorWorker, VerifierWorker
from repro.hardware.device import get_device
from repro.hardware.roofline import Roofline
from repro.kvcache.cache import PagedKVCache
from repro.llm.oracle import QualityOracle
from repro.llm.verifier import SimulatedPRM
from repro.models.zoo import QWEN25_MATH_1P5B, SKYWORK_PRM_1P5B
from repro.utils.rng import KeyedRng
from repro.workloads.datasets import build_dataset

PROMPT = 900


def gen_worker(capacity_tokens):
    cache = PagedKVCache(capacity_tokens * QWEN25_MATH_1P5B.kv_bytes_per_token,
                         QWEN25_MATH_1P5B.kv_bytes_per_token, block_tokens=16)
    cache.register_segment(PROMPT, None, 64)
    return GeneratorWorker(
        QWEN25_MATH_1P5B, Roofline(get_device("rtx4090")), cache, SimClock(),
        PhaseTimer(), UtilizationTracker(),
    )


def job(i, tokens):
    return GenJob(
        lineage=(i,), path_segments=(PROMPT,), path_segment_tokens=(64,),
        new_segment=1000 + i, step_tokens=tokens,
    )


class TestGenerationUnderPressure:
    def test_waves_form_when_memory_binds(self):
        # capacity: prompt (64) + ~2 concurrent steps of 128 and headroom
        worker = gen_worker(capacity_tokens=400)
        round_ = GenerationRound(worker, slot_budget=8)
        result = round_.run([job(i, 128) for i in range(6)])
        assert len(result.outcomes) == 6
        # memory admitted only a subset concurrently -> multiple waves
        peak_busy = max(s.busy_slots for s in worker._util.spans)
        assert peak_busy < 6

    def test_mid_decode_preemption_recovers(self):
        """Concurrent growth overruns the pool: a victim is preempted,
        re-admitted, and still completes with full token counts."""
        worker = gen_worker(capacity_tokens=330)
        round_ = GenerationRound(worker, slot_budget=8)
        # can_fit at admission passes (steps claim little at first), but
        # combined growth exceeds the pool mid-decode.
        result = round_.run([job(0, 120), job(1, 120), job(2, 120)])
        assert {o.tokens_generated for o in result.outcomes.values()} == {120}

    def test_all_work_conserved_under_pressure(self):
        relaxed = GenerationRound(gen_worker(100_000), slot_budget=8).run(
            [job(i, 100 + i) for i in range(5)]
        )
        tight = GenerationRound(gen_worker(420), slot_budget=8).run(
            [job(i, 100 + i) for i in range(5)]
        )
        for lineage, outcome in relaxed.outcomes.items():
            assert tight.outcomes[lineage].tokens_generated >= outcome.tokens_generated
        # pressure costs time, not correctness
        assert tight.stats.round_time >= relaxed.stats.round_time

    def test_speculation_never_steals_standard_memory(self):
        worker = gen_worker(capacity_tokens=360)

        def planner(parent, child):
            return ChildStepPlan(
                child_lineage=parent + (child,),
                segment_id=5000 + 10 * parent[0] + child,
                parent_leaf_segment=1000 + parent[0],
                n_tokens=400,
            )

        round_ = GenerationRound(
            worker, slot_budget=4, speculation=True, branching_factor=4,
            child_planner=planner,
        )
        result = round_.run([job(0, 20), job(1, 150)])
        # both standard jobs complete in full despite greedy spec demand
        assert result.outcomes[(0,)].tokens_generated == 20
        assert result.outcomes[(1,)].tokens_generated == 150


class TestVerificationUnderPressure:
    def test_batch_flush_and_retry(self):
        """When a batch member cannot fit, the open batch flushes and the
        job retries alone — all scores still produced."""
        problem = list(build_dataset("amc23", seed=1, size=1))[0]
        cache = PagedKVCache(
            1400 * SKYWORK_PRM_1P5B.kv_bytes_per_token,
            SKYWORK_PRM_1P5B.kv_bytes_per_token,
        )
        cache.register_segment(PROMPT, None, 64)
        clock = SimClock()
        worker = VerifierWorker(
            SKYWORK_PRM_1P5B, Roofline(get_device("rtx4090")), cache, clock,
            PhaseTimer(),
        )
        rng = KeyedRng(1)
        prm = SimulatedPRM(SKYWORK_PRM_1P5B, QualityOracle(rng=rng.fork("o")), rng)
        jobs = [
            VerifyJob(
                lineage=(i,), step_idx=0, path_segments=(PROMPT,),
                path_segment_tokens=(64,), new_segment=2000 + i,
                new_tokens=600, mean_soundness=0.0,
            )
            for i in range(4)
        ]
        result = VerificationRound(worker, prm, batch_size=4).run(problem, jobs)
        assert set(result.scores) == {(i,) for i in range(4)}
